//! The planner: name resolution and access-path selection.
//!
//! Produces the physical [`Plan`] the executor runs. Access paths follow
//! standard OLTP heuristics: full-key equality → index point lookup
//! (unique indexes first), leading-column equalities on a composite
//! B-tree → prefix scan, range predicates on a single-column B-tree →
//! range scan, otherwise sequential scan; unused predicates become
//! residual filters.

use crate::catalog::{Catalog, TableId, TableMeta};
use crate::exec::plan::{Access, PExpr, Plan, PlanNode, ScanNode};
use crate::index::IndexKind;
use crate::sql::ast::{BinOp, Expr, Projection, SelectStmt, Stmt};
use crate::types::Schema;

/// Planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    NoSuchTable(String),
    NoSuchColumn(String),
    AmbiguousColumn(String),
    Unsupported(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            PlanError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            PlanError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            PlanError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One table binding in scope: (binding name, table, schema, column offset).
struct Binding<'a> {
    name: String,
    schema: &'a Schema,
    offset: usize,
}

struct Scope<'a> {
    bindings: Vec<Binding<'a>>,
}

impl<'a> Scope<'a> {
    fn resolve(&self, qualifier: Option<&str>, col: &str) -> Result<usize, PlanError> {
        let mut found = None;
        for b in &self.bindings {
            if let Some(q) = qualifier {
                if !b.name.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Some(i) = b.schema.column_index(col) {
                if found.is_some() {
                    return Err(PlanError::AmbiguousColumn(col.into()));
                }
                found = Some(b.offset + i);
            }
        }
        found.ok_or_else(|| PlanError::NoSuchColumn(col.into()))
    }

    fn width(&self) -> usize {
        self.bindings.iter().map(|b| b.schema.len()).sum()
    }
}

/// Plan a parsed statement against the catalog.
pub fn plan(catalog: &Catalog, stmt: &Stmt) -> Result<Plan, PlanError> {
    match stmt {
        Stmt::Begin => Ok(Plan::Begin),
        Stmt::Commit => Ok(Plan::Commit),
        Stmt::Rollback => Ok(Plan::Rollback),
        Stmt::CreateTable {
            name,
            columns,
            primary_key,
        } => Ok(Plan::CreateTable {
            name: name.clone(),
            columns: columns.clone(),
            primary_key: primary_key.clone(),
        }),
        Stmt::CreateIndex {
            name,
            table,
            columns,
            kind,
            unique,
        } => {
            let meta = base_table(catalog, table, "CREATE INDEX")?;
            let cols = columns
                .iter()
                .map(|c| {
                    meta.schema
                        .column_index(c)
                        .ok_or_else(|| PlanError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Plan::CreateIndex {
                name: name.clone(),
                table: meta.id,
                columns: cols,
                kind: *kind,
                unique: *unique,
            })
        }
        Stmt::Insert { table, rows } => {
            let meta = base_table(catalog, table, "INSERT")?;
            let empty = Scope { bindings: vec![] };
            let resolved = rows
                .iter()
                .map(|row| {
                    if row.len() != meta.schema.len() {
                        return Err(PlanError::Unsupported(format!(
                            "INSERT arity {} != table arity {}",
                            row.len(),
                            meta.schema.len()
                        )));
                    }
                    row.iter().map(|e| resolve(e, &empty)).collect()
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Plan::Insert {
                table: meta.id,
                rows: resolved,
            })
        }
        Stmt::Update {
            table,
            sets,
            where_clause,
        } => {
            let (scan, scope) = plan_scan(catalog, table, where_clause.as_ref())?;
            let sets = sets
                .iter()
                .map(|(col, e)| {
                    let idx = scope.resolve(None, col)?;
                    Ok((idx, resolve(e, &scope)?))
                })
                .collect::<Result<Vec<_>, PlanError>>()?;
            Ok(Plan::Update { scan, sets })
        }
        Stmt::Delete {
            table,
            where_clause,
        } => {
            let (scan, _) = plan_scan(catalog, table, where_clause.as_ref())?;
            Ok(Plan::Delete { scan })
        }
        Stmt::Select(sel) => plan_select(catalog, sel),
        Stmt::Explain { analyze, stmt } => Ok(Plan::Explain {
            analyze: *analyze,
            inner: Box::new(plan(catalog, stmt)?),
        }),
    }
}

/// Resolve an expression against a scope (aggregates not allowed here).
fn resolve(e: &Expr, scope: &Scope<'_>) -> Result<PExpr, PlanError> {
    match e {
        Expr::Column(q, c) => Ok(PExpr::Col(scope.resolve(q.as_deref(), c)?)),
        Expr::Literal(v) => Ok(PExpr::Lit(v.clone())),
        Expr::Param(p) => Ok(PExpr::Param(*p)),
        Expr::Binary(l, op, r) => Ok(PExpr::bin(resolve(l, scope)?, *op, resolve(r, scope)?)),
        Expr::Agg(f, _) => Err(PlanError::Unsupported(format!(
            "aggregate {} not allowed here",
            f.name()
        ))),
    }
}

/// Resolve a *base* (stored) table. Virtual introspection tables are
/// read-only and unjoinable, so every non-SELECT resolution goes through
/// here and reports `Unsupported` rather than `NoSuchTable` for them.
fn base_table<'a>(
    catalog: &'a Catalog,
    table: &str,
    verb: &str,
) -> Result<&'a TableMeta, PlanError> {
    if let Some(meta) = catalog.table_by_name(table) {
        return Ok(meta);
    }
    if catalog.virtual_table(table).is_some() {
        return Err(PlanError::Unsupported(format!(
            "{verb} on virtual table {table}"
        )));
    }
    Err(PlanError::NoSuchTable(table.to_string()))
}

/// Build a scan node for a single table with an optional predicate.
fn plan_scan<'a>(
    catalog: &'a Catalog,
    table: &str,
    pred: Option<&Expr>,
) -> Result<(ScanNode, Scope<'a>), PlanError> {
    let meta = base_table(catalog, table, "DML")?;
    let scope = Scope {
        bindings: vec![Binding {
            name: meta.name.clone(),
            schema: &meta.schema,
            offset: 0,
        }],
    };
    let conjuncts: Vec<PExpr> = match pred {
        Some(p) => p
            .conjuncts()
            .into_iter()
            .map(|c| resolve(c, &scope))
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let scan = choose_access(catalog, meta.id, conjuncts);
    Ok((scan, scope))
}

/// Pick the cheapest access path for a conjunctive predicate.
fn choose_access(catalog: &Catalog, table: TableId, conjuncts: Vec<PExpr>) -> ScanNode {
    // Equality conjuncts `col = <column-free expr>`.
    let mut eq: Vec<(usize, PExpr, usize)> = Vec::new(); // (col, expr, conjunct idx)
                                                         // Range conjuncts on a column.
    let mut ranges: Vec<(usize, BinOp, PExpr, usize)> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        if let PExpr::Bin(l, op, r) = c {
            let (col, other, op) = match (&**l, &**r) {
                (PExpr::Col(i), rhs) if !rhs.references_columns() => (*i, rhs.clone(), *op),
                (lhs, PExpr::Col(i)) if !lhs.references_columns() => (*i, lhs.clone(), flip(*op)),
                _ => continue,
            };
            match op {
                BinOp::Eq => eq.push((col, other, ci)),
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => ranges.push((col, op, other, ci)),
                _ => {}
            }
        }
    }

    let find_eq = |col: usize| eq.iter().find(|(c, ..)| *c == col);

    // 1. Full-key point lookups, unique indexes first.
    let mut indexes = catalog.table_indexes(table);
    indexes.sort_by_key(|m| (!m.unique, m.columns.len()));
    for meta in &indexes {
        let keys: Option<Vec<(&PExpr, usize)>> = meta
            .columns
            .iter()
            .map(|c| find_eq(*c).map(|(_, e, ci)| (e, *ci)))
            .collect();
        if let Some(keys) = keys {
            let used: Vec<usize> = keys.iter().map(|(_, ci)| *ci).collect();
            let key = keys.into_iter().map(|(e, _)| e.clone()).collect();
            let residual = residual_of(&conjuncts, &used);
            return ScanNode {
                table,
                access: Access::Point {
                    index: meta.id,
                    key,
                },
                residual,
            };
        }
    }
    // 2. Composite B-tree prefix.
    for meta in &indexes {
        if meta.kind != IndexKind::BTree || meta.columns.len() < 2 {
            continue;
        }
        let mut key = Vec::new();
        let mut used = Vec::new();
        for c in &meta.columns {
            match find_eq(*c) {
                Some((_, e, ci)) => {
                    key.push(e.clone());
                    used.push(*ci);
                }
                None => break,
            }
        }
        if !key.is_empty() {
            let residual = residual_of(&conjuncts, &used);
            return ScanNode {
                table,
                access: Access::Prefix {
                    index: meta.id,
                    key,
                },
                residual,
            };
        }
    }
    // 3. Single-column B-tree range.
    for meta in &indexes {
        if meta.kind != IndexKind::BTree || meta.columns.len() != 1 {
            continue;
        }
        let col = meta.columns[0];
        let mut lo = None;
        let mut hi = None;
        let mut used = Vec::new();
        for (c, op, e, ci) in &ranges {
            if *c != col {
                continue;
            }
            match op {
                BinOp::Ge | BinOp::Gt if lo.is_none() => {
                    lo = Some(e.clone());
                    used.push(*ci);
                    // Strict bounds keep the conjunct as residual too.
                    if *op == BinOp::Gt {
                        used.pop();
                    }
                }
                BinOp::Le | BinOp::Lt if hi.is_none() => {
                    hi = Some(e.clone());
                    used.push(*ci);
                    if *op == BinOp::Lt {
                        used.pop();
                    }
                }
                _ => {}
            }
        }
        if lo.is_some() || hi.is_some() {
            let residual = residual_of(&conjuncts, &used);
            return ScanNode {
                table,
                access: Access::Range {
                    index: meta.id,
                    lo,
                    hi,
                },
                residual,
            };
        }
    }
    // 4. Sequential scan.
    let residual = PExpr::conjoin(conjuncts);
    ScanNode {
        table,
        access: Access::Full,
        residual,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn residual_of(conjuncts: &[PExpr], used: &[usize]) -> Option<PExpr> {
    PExpr::conjoin(
        conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| !used.contains(i))
            .map(|(_, c)| c.clone())
            .collect(),
    )
}

fn plan_select(catalog: &Catalog, sel: &SelectStmt) -> Result<Plan, PlanError> {
    // Virtual introspection tables: always a full materialized scan with
    // the whole WHERE clause as residual; the downstream aggregation /
    // sort / limit / projection wrapping composes unchanged.
    if catalog.table_by_name(&sel.from.name).is_none() {
        if let Some((vname, vschema)) = catalog.virtual_table(&sel.from.name) {
            if sel.join.is_some() {
                return Err(PlanError::Unsupported(format!(
                    "JOIN involving virtual table {vname}"
                )));
            }
            let scope = Scope {
                bindings: vec![Binding {
                    name: sel.from.binding().to_string(),
                    schema: vschema,
                    offset: 0,
                }],
            };
            let conjuncts: Vec<PExpr> = match &sel.where_clause {
                Some(p) => p
                    .conjuncts()
                    .into_iter()
                    .map(|c| resolve(c, &scope))
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            let root = PlanNode::VirtualScan {
                name: vname.to_string(),
                residual: PExpr::conjoin(conjuncts),
            };
            return finish_select(root, &scope, sel);
        }
    }
    let left_meta = catalog
        .table_by_name(&sel.from.name)
        .ok_or_else(|| PlanError::NoSuchTable(sel.from.name.clone()))?;

    // Build the scope (and for joins, per-side scopes for predicate pushdown).
    let root: PlanNode;
    let scope: Scope<'_>;
    if let Some((right_ref, on)) = &sel.join {
        if catalog.virtual_table(&right_ref.name).is_some() {
            return Err(PlanError::Unsupported(format!(
                "JOIN involving virtual table {}",
                right_ref.name
            )));
        }
        let right_meta = catalog
            .table_by_name(&right_ref.name)
            .ok_or_else(|| PlanError::NoSuchTable(right_ref.name.clone()))?;
        let left_scope = Scope {
            bindings: vec![Binding {
                name: sel.from.binding().to_string(),
                schema: &left_meta.schema,
                offset: 0,
            }],
        };
        let right_scope = Scope {
            bindings: vec![Binding {
                name: right_ref.binding().to_string(),
                schema: &right_meta.schema,
                offset: 0,
            }],
        };
        scope = Scope {
            bindings: vec![
                Binding {
                    name: sel.from.binding().to_string(),
                    schema: &left_meta.schema,
                    offset: 0,
                },
                Binding {
                    name: right_ref.binding().to_string(),
                    schema: &right_meta.schema,
                    offset: left_meta.schema.len(),
                },
            ],
        };

        // Split WHERE conjuncts by side.
        let mut left_preds = Vec::new();
        let mut right_preds = Vec::new();
        let mut both_preds = Vec::new();
        if let Some(w) = &sel.where_clause {
            for c in w.conjuncts() {
                if let Ok(p) = resolve(c, &left_scope) {
                    left_preds.push(p);
                } else if let Ok(p) = resolve(c, &right_scope) {
                    right_preds.push(p);
                } else {
                    both_preds.push(resolve(c, &scope)?);
                }
            }
        }
        // The ON clause must be a two-sided equality.
        let Expr::Binary(l, BinOp::Eq, r) = on else {
            return Err(PlanError::Unsupported("JOIN ON must be an equality".into()));
        };
        let (lk, rk) = match (resolve(l, &left_scope), resolve(r, &right_scope)) {
            (Ok(lk), Ok(rk)) => (lk, rk),
            _ => match (resolve(r, &left_scope), resolve(l, &right_scope)) {
                (Ok(lk), Ok(rk)) => (lk, rk),
                _ => {
                    return Err(PlanError::Unsupported(
                        "JOIN ON must reference one column per side".into(),
                    ))
                }
            },
        };
        let left_scan = choose_access(catalog, left_meta.id, left_preds);
        let right_scan = choose_access(catalog, right_meta.id, right_preds);
        root = PlanNode::HashJoin {
            left: Box::new(PlanNode::Scan(left_scan)),
            right: Box::new(PlanNode::Scan(right_scan)),
            left_key: lk,
            right_key: shift_cols(rk, left_meta.schema.len(), false),
            residual: PExpr::conjoin(both_preds),
        };
        // The probe key was resolved against the right table alone but is
        // evaluated against right rows directly, so no shift is applied
        // (`shift=false` marker above keeps this explicit).
    } else {
        let (scan, s) = plan_scan(catalog, &sel.from.name, sel.where_clause.as_ref())?;
        scope = s;
        root = PlanNode::Scan(scan);
    }
    finish_select(root, &scope, sel)
}

/// Wrap a resolved scan/join root with the statement's aggregation,
/// ORDER BY, LIMIT, and projection operators.
fn finish_select(
    mut root: PlanNode,
    scope: &Scope<'_>,
    sel: &SelectStmt,
) -> Result<Plan, PlanError> {
    // Aggregation.
    let has_aggs = sel
        .projections
        .iter()
        .any(|p| matches!(p, Projection::Expr(Expr::Agg(..))));
    if has_aggs || !sel.group_by.is_empty() {
        let group_by = sel
            .group_by
            .iter()
            .map(|c| scope.resolve(None, c))
            .collect::<Result<Vec<_>, _>>()?;
        let mut aggs = Vec::new();
        let mut projection_map = Vec::new(); // output positions
        for p in &sel.projections {
            match p {
                Projection::Expr(Expr::Agg(f, arg)) => {
                    let col = match arg {
                        Some(c) => Some(scope.resolve(None, c)?),
                        None => None,
                    };
                    projection_map.push(group_by.len() + aggs.len());
                    aggs.push((*f, col));
                }
                Projection::Expr(Expr::Column(q, c)) => {
                    let col = scope.resolve(q.as_deref(), c)?;
                    let pos = group_by.iter().position(|g| *g == col).ok_or_else(|| {
                        PlanError::Unsupported(format!("column {c} must appear in GROUP BY"))
                    })?;
                    projection_map.push(pos);
                }
                _ => {
                    return Err(PlanError::Unsupported(
                        "projections with aggregates must be columns or aggregates".into(),
                    ))
                }
            }
        }
        root = PlanNode::Aggregate {
            input: Box::new(root),
            group_by: group_by.clone(),
            aggs,
        };
        if !sel.order_by.is_empty() {
            return Err(PlanError::Unsupported("ORDER BY with aggregation".into()));
        }
        if let Some(n) = sel.limit {
            root = PlanNode::Limit {
                input: Box::new(root),
                n,
            };
        }
        root = PlanNode::Project {
            input: Box::new(root),
            exprs: projection_map.into_iter().map(PExpr::Col).collect(),
        };
        return Ok(Plan::Query { root });
    }

    // Sort before projection (ORDER BY references base columns).
    if !sel.order_by.is_empty() {
        let by = sel
            .order_by
            .iter()
            .map(|(c, desc)| Ok((scope.resolve(None, c)?, *desc)))
            .collect::<Result<Vec<_>, PlanError>>()?;
        root = PlanNode::Sort {
            input: Box::new(root),
            by,
        };
    }
    if let Some(n) = sel.limit {
        root = PlanNode::Limit {
            input: Box::new(root),
            n,
        };
    }

    // Projection.
    let mut exprs = Vec::new();
    for p in &sel.projections {
        match p {
            Projection::Star => {
                for i in 0..scope.width() {
                    exprs.push(PExpr::Col(i));
                }
            }
            Projection::Expr(e) => exprs.push(resolve(e, scope)?),
        }
    }
    let identity =
        exprs.len() == scope.width() && exprs.iter().enumerate().all(|(i, e)| *e == PExpr::Col(i));
    if !identity {
        root = PlanNode::Project {
            input: Box::new(root),
            exprs,
        };
    }
    Ok(Plan::Query { root })
}

/// Identity helper kept for readability at the call site: the probe-side
/// key is evaluated against right-child rows, so no column shift applies.
fn shift_cols(e: PExpr, _offset: usize, shift: bool) -> PExpr {
    debug_assert!(!shift);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse;
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = c
            .create_table(
                "accounts",
                Schema::new(&[
                    ("id", DataType::Int),
                    ("branch", DataType::Int),
                    ("bal", DataType::Float),
                ]),
                vec![0],
            )
            .unwrap();
        c.create_index("accounts_pk", t, vec![0], IndexKind::Hash, true)
            .unwrap();
        c.create_index("accounts_branch", t, vec![1], IndexKind::BTree, false)
            .unwrap();
        let o = c
            .create_table(
                "orders",
                Schema::new(&[("oid", DataType::Int), ("acct", DataType::Int)]),
                vec![0],
            )
            .unwrap();
        c.create_index("orders_pk", o, vec![0], IndexKind::Hash, true)
            .unwrap();
        c
    }

    fn plan_sql(sql: &str) -> Plan {
        let c = catalog();
        plan(&c, &parse(sql).unwrap()).unwrap()
    }

    #[test]
    fn point_lookup_on_pk() {
        let p = plan_sql("SELECT bal FROM accounts WHERE id = $1");
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Project { input, .. } = root else {
            panic!("{root:?}")
        };
        let PlanNode::Scan(scan) = *input else {
            panic!()
        };
        assert!(matches!(scan.access, Access::Point { .. }));
        assert!(scan.residual.is_none());
    }

    #[test]
    fn secondary_btree_range() {
        let p = plan_sql("SELECT * FROM accounts WHERE branch >= 5 AND branch <= 9");
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Scan(scan) = root else {
            panic!("{root:?}")
        };
        match scan.access {
            Access::Range {
                lo: Some(_),
                hi: Some(_),
                ..
            } => {}
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn residual_filter_kept() {
        let p = plan_sql("SELECT * FROM accounts WHERE id = 3 AND bal > 100");
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Scan(scan) = root else { panic!() };
        assert!(matches!(scan.access, Access::Point { .. }));
        assert!(scan.residual.is_some(), "bal > 100 must remain as residual");
    }

    #[test]
    fn fallback_to_seq_scan() {
        let p = plan_sql("SELECT * FROM accounts WHERE bal > 0");
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Scan(scan) = root else { panic!() };
        assert_eq!(scan.access, Access::Full);
        assert!(scan.residual.is_some());
    }

    #[test]
    fn join_plan_with_pushdown() {
        let p = plan_sql(
            "SELECT a.bal FROM accounts a JOIN orders o ON a.id = o.acct WHERE a.branch = 1",
        );
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Project { input, .. } = root else {
            panic!()
        };
        let PlanNode::HashJoin { left, .. } = *input else {
            panic!()
        };
        let PlanNode::Scan(ls) = *left else { panic!() };
        assert!(
            !matches!(ls.access, Access::Full),
            "branch = 1 should use the branch index: {:?}",
            ls.access
        );
    }

    #[test]
    fn aggregate_plan_shape() {
        let p = plan_sql("SELECT branch, count(*), sum(bal) FROM accounts GROUP BY branch");
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Project { input, exprs } = root else {
            panic!()
        };
        assert_eq!(exprs, vec![PExpr::Col(0), PExpr::Col(1), PExpr::Col(2)]);
        let PlanNode::Aggregate { group_by, aggs, .. } = *input else {
            panic!()
        };
        assert_eq!(group_by, vec![1]);
        assert_eq!(aggs.len(), 2);
    }

    #[test]
    fn order_and_limit() {
        let p = plan_sql("SELECT id FROM accounts ORDER BY bal DESC LIMIT 3");
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Project { input, .. } = root else {
            panic!()
        };
        let PlanNode::Limit { input, n } = *input else {
            panic!()
        };
        assert_eq!(n, 3);
        assert!(matches!(*input, PlanNode::Sort { .. }));
    }

    #[test]
    fn errors_surface() {
        let c = catalog();
        assert!(matches!(
            plan(&c, &parse("SELECT * FROM nope").unwrap()),
            Err(PlanError::NoSuchTable(_))
        ));
        assert!(matches!(
            plan(&c, &parse("SELECT zzz FROM accounts").unwrap()),
            Err(PlanError::NoSuchColumn(_))
        ));
        assert!(matches!(
            plan(&c, &parse("SELECT bal, count(*) FROM accounts").unwrap()),
            Err(PlanError::Unsupported(_))
        ));
    }

    #[test]
    fn virtual_table_select_composes_with_sort_limit_projection() {
        let c = catalog();
        let p = plan(
            &c,
            &parse(
                "SELECT ou, drift_score FROM ts_stat_ou \
                 WHERE drift_score > 0.2 ORDER BY drift_score DESC LIMIT 5",
            )
            .unwrap(),
        )
        .unwrap();
        let Plan::Query { root } = p else { panic!() };
        let PlanNode::Project { input, exprs } = root else {
            panic!()
        };
        assert_eq!(exprs.len(), 2);
        let PlanNode::Limit { input, n: 5 } = *input else {
            panic!()
        };
        let PlanNode::Sort { input, .. } = *input else {
            panic!()
        };
        let PlanNode::VirtualScan { name, residual } = *input else {
            panic!()
        };
        assert_eq!(name, "ts_stat_ou");
        assert!(residual.is_some(), "WHERE clause becomes the residual");
    }

    #[test]
    fn virtual_table_aggregation_plans() {
        let c = catalog();
        let p = plan(
            &c,
            &parse("SELECT subsystem, count(*) FROM ts_stat_ou GROUP BY subsystem").unwrap(),
        )
        .unwrap();
        let Plan::Query { root } = p else { panic!() };
        let mut saw_virtual = false;
        let mut saw_agg = false;
        root.walk(&mut |n| match n {
            PlanNode::VirtualScan { .. } => saw_virtual = true,
            PlanNode::Aggregate { .. } => saw_agg = true,
            _ => {}
        });
        assert!(saw_virtual && saw_agg);
    }

    #[test]
    fn virtual_tables_reject_dml_joins_and_indexes() {
        let c = catalog();
        for sql in [
            "INSERT INTO ts_alerts VALUES (1, 0.0, 'r', 's', 't', 'OK', 'OK', 0.0, 0.0)",
            "UPDATE ts_stat_ou SET drift_score = 0.0",
            "DELETE FROM ts_alerts",
            "CREATE INDEX bad ON ts_stat_ou (ou)",
            "SELECT * FROM accounts a JOIN ts_stat_ou s ON a.id = s.samples",
            "SELECT * FROM ts_stat_ou s JOIN accounts a ON s.samples = a.id",
        ] {
            assert!(
                matches!(
                    plan(&c, &parse(sql).unwrap()),
                    Err(PlanError::Unsupported(_))
                ),
                "{sql} should be Unsupported"
            );
        }
        // Unknown columns on virtual tables still surface as such.
        assert!(matches!(
            plan(&c, &parse("SELECT zzz FROM ts_stat_ou").unwrap()),
            Err(PlanError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn insert_arity_checked() {
        let c = catalog();
        assert!(matches!(
            plan(&c, &parse("INSERT INTO accounts VALUES (1, 2)").unwrap()),
            Err(PlanError::Unsupported(_))
        ));
        assert!(plan(
            &c,
            &parse("INSERT INTO accounts VALUES (1, 2, 3.0)").unwrap()
        )
        .is_ok());
    }
}
