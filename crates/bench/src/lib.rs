//! # tscout-bench — the experiment harness
//!
//! One binary per figure in the paper's evaluation (§6), plus ablations.
//! This library holds the shared experiment plumbing: database
//! construction, TScout deployment, offline/online data collection,
//! per-subsystem dataset handling, and CSV emission.
//!
//! Every binary prints the same series the paper's figure plots and
//! writes a CSV under `results/`. Absolute numbers come from the
//! simulation's cost model; the *shape* (who wins, by what factor, where
//! crossovers fall) is the reproduction target — see EXPERIMENTS.md.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock, PoisonError};

use noisetap::engine::Database;
use tscout::{CollectionMode, Subsystem, TsConfig, ALL_SUBSYSTEMS};
use tscout_archive::{Archive, ArchiveOptions};
use tscout_kernel::{HardwareProfile, Kernel};
use tscout_models::dataset::OuData;
use tscout_models::eval::{avg_abs_error_per_template_us, OuModelSet};
use tscout_models::ModelKind;
use tscout_telemetry::{Profiler, Telemetry, DEFAULT_PROFILE_PERIOD_NS};
use tscout_workloads::driver::{
    assign_templates, collect_datasets, RunOptions, RunStats, Workload,
};
use tscout_workloads::{ChBenchmark, OfflineRunner, SmallBank, Tatp, Tpcc, Ycsb};

/// Experiment time scale: `TS_SCALE` multiplies all virtual durations
/// (e.g. `TS_SCALE=0.2` for a quick pass, `TS_SCALE=3` for more data).
pub fn time_scale() -> f64 {
    std::env::var("TS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The results directory (`TS_RESULTS`, default `results/`). Not created
/// until something is written into it.
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("TS_RESULTS").unwrap_or_else(|_| "results".into()))
}

/// Where figure CSVs land.
pub fn result_path(name: &str) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    dir.join(name)
}

/// The one artifact-writing path every per-fig dump goes through:
/// creates `dir` if missing, writes `name` there, tees the destination
/// to stdout (tagged `what`), and returns the path. Telemetry, profile,
/// timeseries, health, archive, and trace dumps all funnel here.
pub fn dump_artifact(dir: &std::path::Path, name: &str, what: &str, contents: &str) -> PathBuf {
    std::fs::create_dir_all(dir).ok();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("cannot write {what}: {e}"));
    println!("{what} -> {}", path.display());
    path
}

/// Process-wide telemetry accumulator. Every database the harness builds
/// is absorbed here before it drops, so one snapshot at the end of a
/// figure binary covers every run the experiment made.
pub fn global_telemetry() -> &'static Telemetry {
    static T: OnceLock<Telemetry> = OnceLock::new();
    T.get_or_init(Telemetry::default)
}

/// Process-wide profiler accumulator, mirroring [`global_telemetry`]:
/// every database's samples are absorbed here so the folded-stack and
/// attribution artifacts cover the whole experiment.
pub fn global_profiler() -> &'static Profiler {
    static P: OnceLock<Profiler> = OnceLock::new();
    P.get_or_init(Profiler::default)
}

/// Process-wide training-data archive, mirroring [`global_telemetry`]:
/// every run's tagged points can be persisted here so one figure binary
/// leaves one archive (under `results/archive_store/`) covering the whole
/// experiment. Its telemetry lands in the global registry.
pub fn global_archive() -> &'static Mutex<Archive> {
    static A: OnceLock<Mutex<Archive>> = OnceLock::new();
    A.get_or_init(|| {
        let dir = result_path("archive_store");
        Mutex::new(
            Archive::open(&dir, ArchiveOptions::default(), global_telemetry().clone())
                .expect("cannot open training-data archive"),
        )
    })
}

/// Tag a run's collected points against its query trace and persist them
/// to the process-wide archive (flush + compaction policy applied).
/// Returns how many samples were archived.
pub fn archive_run(stats: &RunStats) -> u64 {
    let tagged = assign_templates(&stats.points, &stats.trace);
    let mut a = global_archive()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let mut n = 0u64;
    for (p, template) in &tagged {
        if a.append(p.to_sample(*template)).is_ok() {
            n += 1;
        }
    }
    let _ = a.flush();
    let _ = a.maybe_compact();
    n
}

/// Profiling interrupt period: `TS_PROFILE_PERIOD_NS` overrides (<= 0
/// disables the profiler entirely).
pub fn profile_period_ns() -> f64 {
    std::env::var("TS_PROFILE_PERIOD_NS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_PROFILE_PERIOD_NS)
}

/// Fold a database's registry (counters, gauges, histograms, spans) and
/// profiler samples into the process-wide accumulators. Call before the
/// database drops.
pub fn absorb_db(db: &Database) {
    global_telemetry().absorb(&db.kernel.telemetry);
    global_profiler().absorb(&db.kernel.profiler);
}

/// Write the accumulated telemetry snapshot to
/// `results/telemetry_<fig>.json`.
pub fn dump_telemetry(fig: &str) -> PathBuf {
    dump_artifact(
        &results_dir(),
        &format!("telemetry_{fig}.json"),
        "telemetry snapshot",
        &global_telemetry().snapshot_json(),
    )
}

/// Write the registry-backed observability artifacts — telemetry
/// snapshot, folded stacks, windowed time-series + attribution, the
/// health/drift report, and the lineage-trace export — into an explicit
/// directory (created if missing). Split out from [`dump_observability`]
/// so the dump path is testable against an empty registry without
/// touching the process-wide archive or the `TS_RESULTS` environment
/// variable. Every file goes through [`dump_artifact`].
pub fn dump_observability_files(dir: &std::path::Path, fig: &str) -> PathBuf {
    let t = global_telemetry();
    let path = dump_artifact(
        dir,
        &format!("telemetry_{fig}.json"),
        "telemetry snapshot",
        &t.snapshot_json(),
    );
    dump_artifact(
        dir,
        &format!("profile_{fig}.folded"),
        "folded profile",
        &global_profiler().folded_text(),
    );
    dump_artifact(
        dir,
        &format!("timeseries_{fig}.json"),
        "timeseries snapshot",
        &format!(
            "{{\n\"timeseries\": {},\n\"attribution\": {}\n}}\n",
            t.timeseries_json(),
            global_profiler().attribution().to_json()
        ),
    );
    dump_artifact(
        dir,
        &format!("health_{fig}.json"),
        "health report",
        &t.health_json(),
    );
    dump_artifact(
        dir,
        &format!("trace_{fig}.json"),
        "lineage traces",
        &t.trace_json(),
    );
    path
}

/// Write every observability artifact for a figure binary: the telemetry
/// snapshot, the flamegraph-ready folded stacks
/// (`results/profile_<fig>.folded`), the windowed time-series plus
/// per-root overhead attribution (`results/timeseries_<fig>.json`), the
/// data-quality health report (`results/health_<fig>.json`), the lineage
/// traces (`results/trace_<fig>.json`), and the archive stats. Every
/// figure binary calls this last.
pub fn dump_observability(fig: &str) -> PathBuf {
    let path = dump_observability_files(&results_dir(), fig);
    dump_artifact(
        &results_dir(),
        &format!("archive_{fig}.json"),
        "archive stats",
        &archive_stats_json(),
    );
    path
}

/// JSON summary of the process-wide archive: shape (segments, blocks,
/// bytes, samples) plus the archive and model-lifecycle counters.
pub fn archive_stats_json() -> String {
    let st = {
        let mut a = global_archive()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = a.flush();
        a.stats()
    };
    let t = global_telemetry();
    format!(
        "{{\n  \"segments\": {}, \"sealed_segments\": {}, \"blocks\": {},\n  \
         \"samples_stored\": {}, \"samples_buffered\": {}, \"bytes\": {},\n  \
         \"bytes_written_total\": {}, \"segments_sealed_total\": {},\n  \
         \"segments_compacted_total\": {}, \"recovered_truncations_total\": {},\n  \
         \"model_generation\": {}, \"model_swaps_accepted\": {}, \"model_swaps_rejected\": {}\n}}\n",
        st.segments,
        st.sealed_segments,
        st.blocks,
        st.samples_stored,
        st.samples_buffered,
        st.bytes,
        t.counter_total("archive_bytes_written_total"),
        t.counter_total("archive_segments_sealed_total"),
        t.counter_total("archive_segments_compacted_total"),
        t.counter_total("archive_recovered_truncations_total"),
        t.gauge_value("model_generation", &[]),
        t.counter_total("model_swap_accepted_total"),
        t.counter_total("model_swap_rejected_total"),
    )
}

/// CSV writer that tees rows to stdout.
#[derive(Debug)]
pub struct Csv {
    file: std::io::BufWriter<std::fs::File>,
}

impl Csv {
    pub fn create(name: &str, header: &str) -> Csv {
        let path = result_path(name);
        let mut file = std::io::BufWriter::new(
            std::fs::File::create(&path).expect("cannot create results file"),
        );
        writeln!(file, "{header}").unwrap();
        println!("{header}");
        Csv { file }
    }

    pub fn row(&mut self, row: &str) {
        writeln!(self.file, "{row}").unwrap();
        println!("{row}");
    }
}

impl Drop for Csv {
    fn drop(&mut self) {
        let _ = self.file.flush();
    }
}

/// Build a fresh DBMS on the given hardware, with the sampling profiler
/// armed at the configured period.
pub fn new_db(hw: HardwareProfile, seed: u64) -> Database {
    let mut kernel = Kernel::with_seed(hw, seed);
    kernel.set_profile_period_ns(profile_period_ns());
    Database::new(kernel)
}

/// Deploy TScout in a collection mode with all subsystems enabled at the
/// given sampling rate.
pub fn attach_all(db: &mut Database, mode: CollectionMode, rate: u8) {
    let mut cfg = TsConfig::new(mode);
    cfg.enable_all_subsystems();
    db.attach_tscout(cfg).expect("tscout deploy failed");
    set_rates(db, rate);
}

/// Deploy TScout for *training-data collection* runs: kernel mode, 100%
/// sampling, and a large ring so accuracy experiments don't lose samples
/// to overwrites (overhead experiments use the realistic default ring).
pub fn attach_collect(db: &mut Database) {
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = 1 << 22;
    db.attach_tscout(cfg).expect("tscout deploy failed");
    set_rates(db, 100);
}

/// Set every subsystem's sampling rate.
pub fn set_rates(db: &mut Database, rate: u8) {
    if let Some(ts) = db.tscout_mut() {
        for s in ALL_SUBSYSTEMS {
            ts.set_sampling_rate(s, rate);
        }
    }
}

/// Instantiate an evaluation workload by name with a small default scale.
pub fn make_workload(name: &str) -> Box<dyn Workload> {
    match name {
        "ycsb" => Box::new(Ycsb::new(20_000)),
        "smallbank" => Box::new(SmallBank::new(10_000)),
        "tatp" => Box::new(Tatp::new(8_000)),
        "tpcc" => Box::new(Tpcc::new(tpcc_warehouses())),
        "chbenchmark" => Box::new(ChBenchmark::new(1)),
        other => panic!("unknown workload {other}"),
    }
}

/// Warehouses for the "large" TPC-C configuration (paper: 200; env
/// `TS_WAREHOUSES` overrides; default scaled down for laptop runs).
pub fn tpcc_warehouses() -> u64 {
    std::env::var("TS_WAREHOUSES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// Split datasets for evaluation: hold out ~`frac` of query templates
/// (template > 0) plus a random `frac` of background points (template 0,
/// which WAL/GC samples carry). Returns `(train, test)`.
pub fn split_for_eval(data: &[OuData], frac: f64, seed: u64) -> (Vec<OuData>, Vec<OuData>) {
    // Gather all template ids.
    let mut templates: Vec<u32> = data
        .iter()
        .flat_map(|d| d.points.iter().map(|p| p.template))
        .filter(|t| *t > 0)
        .collect();
    templates.sort_unstable();
    templates.dedup();
    let every = (1.0 / frac.max(1e-9)).round().max(1.0) as u64;
    let held: Vec<u32> = templates
        .iter()
        .copied()
        .filter(|t| (*t as u64).wrapping_add(seed).is_multiple_of(every))
        .collect();
    let mut train = Vec::new();
    let mut test = Vec::new();
    for d in data {
        let mut tr = OuData::new(&d.name);
        let mut te = OuData::new(&d.name);
        for (i, p) in d.points.iter().enumerate() {
            let hold = if p.template == 0 {
                (i as u64)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed)
                    .is_multiple_of(every)
            } else {
                held.contains(&p.template)
            };
            if hold {
                te.points.push(p.clone());
            } else {
                tr.points.push(p.clone());
            }
        }
        if !tr.is_empty() {
            train.push(tr);
        }
        if !te.is_empty() {
            test.push(te);
        }
    }
    (train, test)
}

/// Collect *offline* training data: the runner suite, single-threaded,
/// 100% sampling, on the given hardware.
pub fn offline_data(hw: HardwareProfile, seed: u64, duration_ns: f64) -> Vec<OuData> {
    let mut db = new_db(hw, seed);
    let mut runner = OfflineRunner::new();
    runner.setup(&mut db);
    attach_all(&mut db, CollectionMode::KernelContinuous, 100);
    let opts = RunOptions {
        terminals: 1,
        duration_ns: duration_ns * time_scale(),
        seed,
        ..Default::default()
    };
    let (stats, data) = collect_datasets(&mut db, &mut runner, &opts);
    archive_run(&stats);
    absorb_db(&db);
    data
}

/// Collect *online* training data from a deployed workload.
pub fn online_data(
    hw: HardwareProfile,
    seed: u64,
    workload: &mut dyn Workload,
    terminals: usize,
    duration_ns: f64,
    rate: u8,
) -> (RunStats, Vec<OuData>) {
    let mut db = new_db(hw, seed);
    workload.setup(&mut db);
    attach_all(&mut db, CollectionMode::KernelContinuous, rate);
    let opts = RunOptions {
        terminals,
        duration_ns: duration_ns * time_scale(),
        seed,
        ..Default::default()
    };
    let out = collect_datasets(&mut db, workload, &opts);
    archive_run(&out.0);
    absorb_db(&db);
    out
}

/// One measurement from the runtime-overhead sweep (Figs. 5 and 6).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub workload: String,
    pub method: &'static str,
    pub rate: u8,
    pub ktps: f64,
    pub samples_per_sec: f64,
}

/// The collection methods of §6.2.
pub const METHODS: [(&str, CollectionMode); 3] = [
    ("kernel_continuous", CollectionMode::KernelContinuous),
    ("user_toggle", CollectionMode::UserToggle),
    ("user_continuous", CollectionMode::UserContinuous),
];

/// Sweep query sampling rates for every workload × collection method —
/// the shared engine behind Figs. 5 (throughput) and 6 (data rate).
/// One database per (workload, method) is reused across rates.
pub fn overhead_sweep(
    workloads: &[&str],
    rates: &[u8],
    duration_ns: f64,
    terminals: usize,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for wl_name in workloads {
        for (m_name, mode) in METHODS {
            let mut db = new_db(HardwareProfile::server_2x20(), 0x515);
            let mut wl = make_workload(wl_name);
            wl.setup(&mut db);
            attach_all(&mut db, mode, 0);
            for (i, &rate) in rates.iter().enumerate() {
                set_rates(&mut db, rate);
                let stats = tscout_workloads::driver::run(
                    &mut db,
                    wl.as_mut(),
                    &RunOptions {
                        terminals,
                        duration_ns: duration_ns * time_scale(),
                        seed: 100 + i as u64,
                        ..Default::default()
                    },
                );
                out.push(SweepPoint {
                    workload: wl_name.to_string(),
                    method: m_name,
                    rate,
                    ktps: stats.ktps(),
                    samples_per_sec: stats.samples_processed as f64 / (stats.duration_ns / 1e9),
                });
            }
            absorb_db(&db);
        }
    }
    out
}

/// Map an OU name to its subsystem using the engine catalog.
pub fn subsystem_of(ou_name: &str) -> Option<Subsystem> {
    noisetap::ALL_ENGINE_OUS
        .iter()
        .find(|o| o.name() == ou_name)
        .map(|o| o.subsystem())
}

/// The four subsystems the paper's accuracy figures report.
pub const REPORTED_SUBSYSTEMS: [Subsystem; 4] = [
    Subsystem::ExecutionEngine,
    Subsystem::Networking,
    Subsystem::LogSerializer,
    Subsystem::DiskWriter,
];

/// Keep only the OUs of one subsystem.
pub fn filter_subsystem(data: &[OuData], sub: Subsystem) -> Vec<OuData> {
    data.iter()
        .filter(|d| subsystem_of(&d.name) == Some(sub))
        .cloned()
        .collect()
}

/// Merge datasets by OU name (offline + online augmentation).
pub fn merge_data(a: &[OuData], b: &[OuData]) -> Vec<OuData> {
    let mut by_name: std::collections::BTreeMap<String, OuData> = Default::default();
    for d in a.iter().chain(b) {
        by_name
            .entry(d.name.clone())
            .and_modify(|e| e.extend_from(d))
            .or_insert_with(|| d.clone());
    }
    by_name.into_values().collect()
}

/// Total points across datasets.
pub fn total_points(data: &[OuData]) -> usize {
    data.iter().map(tscout_models::OuData::len).sum()
}

/// Subsample every OU dataset to cap the total at roughly `n` points,
/// preserving per-OU proportions.
pub fn cap_points(data: &[OuData], n: usize, seed: u64) -> Vec<OuData> {
    let total = total_points(data).max(1);
    if total <= n {
        return data.to_vec();
    }
    data.iter()
        .map(|d| {
            let share = (d.len() * n).div_ceil(total);
            d.sample(share.max(1), seed)
        })
        .collect()
}

/// Train per-OU models on `train`, report avg abs error per template (µs)
/// over `test`, both restricted to one subsystem.
pub fn subsystem_error_us(train: &[OuData], test: &[OuData], sub: Subsystem, seed: u64) -> f64 {
    let tr = filter_subsystem(train, sub);
    let te = filter_subsystem(test, sub);
    let models = OuModelSet::train(ModelKind::Forest, seed, &tr);
    avg_abs_error_per_template_us(&models, &te)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_mapping_covers_reported_set() {
        assert_eq!(subsystem_of("seq_scan"), Some(Subsystem::ExecutionEngine));
        assert_eq!(subsystem_of("network_read"), Some(Subsystem::Networking));
        assert_eq!(
            subsystem_of("log_serialize"),
            Some(Subsystem::LogSerializer)
        );
        assert_eq!(subsystem_of("disk_write"), Some(Subsystem::DiskWriter));
        assert_eq!(subsystem_of("nonsense"), None);
    }

    #[test]
    fn observability_dump_works_on_an_empty_registry() {
        // A figure binary that collected nothing must still dump cleanly
        // (and create the output directory itself).
        let dir = std::env::temp_dir().join(format!("tsbench_dump_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dump_observability_files(&dir, "empty");
        assert!(path.exists());
        for f in [
            "telemetry_empty.json",
            "profile_empty.folded",
            "timeseries_empty.json",
            "health_empty.json",
            "trace_empty.json",
        ] {
            assert!(dir.join(f).exists(), "missing {f}");
        }
        let health = std::fs::read_to_string(dir.join("health_empty.json")).unwrap();
        assert!(health.contains("\"subsystems\""), "{health}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_and_cap() {
        let mut a = OuData::new("x");
        for i in 0..10 {
            a.points.push(tscout_models::dataset::LabeledPoint {
                features: vec![i as f64],
                target_ns: 1.0,
                template: 0,
            });
        }
        let merged = merge_data(&[a.clone()], &[a.clone()]);
        assert_eq!(total_points(&merged), 20);
        let capped = cap_points(&merged, 5, 1);
        assert!(total_points(&capped) <= 6);
    }
}
