//! Figure 8: adjustable per-subsystem sampling.
//!
//! "Impact of training data sampling on YCSB transaction throughput":
//! the run starts with 0% sampling, switches all four subsystems to 10%
//! one third in (throughput dips ~7%), then disables the execution
//! engine and networking subsystems (throughput recovers — the workload
//! is read-only, so the still-enabled WAL subsystems generate almost no
//! data).

use tscout::{CollectionMode, Subsystem};
use tscout_bench::{absorb_db, attach_all, dump_observability, new_db, set_rates, time_scale, Csv};
use tscout_kernel::HardwareProfile;
use tscout_workloads::driver::{run, RunOptions, RunStats};
use tscout_workloads::{Workload, Ycsb};

fn bucketize(csv: &mut Csv, stats: &RunStats, phase: &str, offset_s: f64, bucket_s: f64) {
    if stats.txn_ends_ns.is_empty() {
        return;
    }
    let t0 = stats
        .txn_ends_ns
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
    for &t in &stats.txn_ends_ns {
        *counts
            .entry(((t - t0) / (bucket_s * 1e9)) as u64)
            .or_default() += 1;
    }
    let last = counts.keys().copied().max().unwrap_or(0);
    for (b, n) in counts {
        if b == last {
            continue; // final partial bucket
        }
        let t_s = offset_s + (b as f64 + 0.5) * bucket_s;
        csv.row(&format!(
            "{t_s:.2},{phase},{:.1}",
            n as f64 / bucket_s / 1000.0
        ));
    }
}

fn main() {
    let phase_s = 1.2 * time_scale();
    let mut db = new_db(HardwareProfile::server_2x20(), 0xF18);
    let mut w = Ycsb::new(20_000);
    w.setup(&mut db);
    attach_all(&mut db, CollectionMode::KernelContinuous, 0);

    let mut csv = Csv::create("fig8_adjustable_sampling.csv", "time_s,phase,ktps");
    let opts = |seed| RunOptions {
        terminals: 4,
        duration_ns: phase_s * 1e9,
        seed,
        ..Default::default()
    };

    // Phase 1: collection off.
    let s1 = run(&mut db, &mut w, &opts(1));
    bucketize(&mut csv, &s1, "off", 0.0, 0.1 * time_scale());

    // Phase 2: 10% sampling for all four subsystems.
    set_rates(&mut db, 0);
    for s in [
        Subsystem::ExecutionEngine,
        Subsystem::Networking,
        Subsystem::LogSerializer,
        Subsystem::DiskWriter,
    ] {
        db.tscout_mut().unwrap().set_sampling_rate(s, 10);
    }
    let s2 = run(&mut db, &mut w, &opts(2));
    bucketize(&mut csv, &s2, "all_10pct", phase_s, 0.1 * time_scale());

    // Phase 3: EE + networking off; WAL subsystems stay at 10%.
    db.tscout_mut()
        .unwrap()
        .set_sampling_rate(Subsystem::ExecutionEngine, 0);
    db.tscout_mut()
        .unwrap()
        .set_sampling_rate(Subsystem::Networking, 0);
    let s3 = run(&mut db, &mut w, &opts(3));
    bucketize(
        &mut csv,
        &s3,
        "wal_only_10pct",
        2.0 * phase_s,
        0.1 * time_scale(),
    );

    println!(
        "# phase means ktps: off={:.1} all_10pct={:.1} wal_only={:.1}",
        s1.ktps(),
        s2.ktps(),
        s3.ktps()
    );
    println!("# paper shape: ~7% dip in phase 2, recovery in phase 3 (read-only workload)");
    absorb_db(&db);
    dump_observability("fig8");
}
