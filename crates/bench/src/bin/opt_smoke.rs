//! CI smoke for the load-time BPF optimizer.
//!
//! For every probe-layout combination, loads the collector triple
//! (begin / end / features) through two [`Loader`]s — optimizer off and
//! on — drives one full sample through each, then:
//!
//!  - asserts zero optimizer fallbacks (the pipeline re-verifies its
//!    own output and falls back on failure, so zero fallbacks means
//!    every optimized program re-verified);
//!  - independently re-verifies each optimized instruction stream as a
//!    belt-and-braces check;
//!  - asserts the published samples are bit-identical across modes;
//!  - reports per-program *executed* instruction reductions (static
//!    size may grow: unrolling trades bytes for branches) and fails if
//!    the total reduction falls under a 15% floor.
//!
//! Exits nonzero on any failure so ci.sh can gate on it.

use tscout::codegen::{encode_ctx, gen_begin, gen_end, gen_features, ProbeLayout, CTX_BYTES};
use tscout_bpf::maps::MapDef;
use tscout_bpf::vm::NullWorld;
use tscout_bpf::{verify, Loader};

fn main() {
    let mut failed = false;
    let mut total = [0u64; 2]; // executed insns: [unoptimized, optimized]
    for bits in 0u8..8 {
        let probes = ProbeLayout {
            cpu: bits & 1 != 0,
            disk: bits & 2 != 0,
            net: bits & 4 != 0,
        };
        let layout = format!(
            "cpu={} disk={} net={}",
            probes.cpu as u8, probes.disk as u8, probes.net as u8
        );
        let ctx = encode_ctx(1, 42, 0, 0, &[7, 8, 9]);
        let mut executed = [[0u64; 3]; 2];
        let mut rings: Vec<Vec<Vec<u8>>> = Vec::new();
        for (mode, optimize) in [(0usize, false), (1usize, true)] {
            let mut loader = Loader::new();
            loader.set_optimize(optimize);
            let depth = loader.maps.create(MapDef::hash("d", 8, 8, 256));
            let begin = loader
                .maps
                .create(MapDef::hash("b", 8, probes.snap_words() * 8, 1024));
            let done = loader
                .maps
                .create(MapDef::hash("dn", 8, probes.done_words() * 8, 256));
            let ring = loader.maps.create(MapDef::perf_event_array("r", 1024));
            let progs = [
                ("begin", gen_begin(&probes, depth, begin)),
                ("end", gen_end(&probes, depth, begin, done)),
                ("features", gen_features(&probes, done, ring)),
            ];
            let mut world = NullWorld {
                time_ns: 100,
                pid_tgid: 42,
            };
            for (i, (name, insns)) in progs.into_iter().enumerate() {
                let id = match loader.load(name, insns, CTX_BYTES) {
                    Ok(id) => id,
                    Err(e) => {
                        eprintln!("FAIL: [{layout}] {name} did not load: {e}");
                        failed = true;
                        continue;
                    }
                };
                if optimize {
                    let prog = loader.get(id).expect("just loaded");
                    // The optimizer already re-verified; do it again here
                    // so the smoke does not rely on the pipeline backstop.
                    if let Err(e) = verify(&prog.insns, &loader.maps, CTX_BYTES) {
                        eprintln!("FAIL: [{layout}] optimized {name} does not re-verify: {e}");
                        failed = true;
                    }
                }
                if i == 1 {
                    world.time_ns = 900;
                }
                match loader.run(id, &ctx, &mut world) {
                    Ok((0, stats)) => executed[mode][i] = stats.insns,
                    Ok((r0, _)) => {
                        eprintln!("FAIL: [{layout}] {name} returned {r0}, expected 0");
                        failed = true;
                    }
                    Err(e) => {
                        eprintln!("FAIL: [{layout}] {name} did not run: {e}");
                        failed = true;
                    }
                }
            }
            if optimize && loader.opt_fallbacks() != 0 {
                eprintln!(
                    "FAIL: [{layout}] optimizer fell back {} time(s)",
                    loader.opt_fallbacks()
                );
                failed = true;
            }
            rings.push(loader.maps.ring_drain(ring, 16));
        }
        if rings[0] != rings[1] {
            eprintln!("FAIL: [{layout}] samples differ between optimizer modes");
            failed = true;
        }
        for (i, name) in ["begin", "end", "features"].iter().enumerate() {
            let (before, after) = (executed[0][i], executed[1][i]);
            total[0] += before;
            total[1] += after;
            if after > before {
                eprintln!("FAIL: [{layout}] {name} executed more insns: {before} -> {after}");
                failed = true;
            }
            let pct = 100.0 * before.saturating_sub(after) as f64 / before.max(1) as f64;
            println!("[{layout}] {name}: {before} -> {after} executed insns ({pct:.1}% fewer)");
        }
    }
    let pct = 100.0 * total[0].saturating_sub(total[1]) as f64 / total[0].max(1) as f64;
    println!(
        "total: {} -> {} executed insns ({pct:.1}% fewer)",
        total[0], total[1]
    );
    // Collector programs with probes enabled carry real redundancy; a
    // total executed reduction under 15% means a pass regressed.
    if pct < 15.0 {
        eprintln!("FAIL: total executed reduction {pct:.1}% is below the 15% smoke floor");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("optimizer smoke passed");
}
