//! Figure 9: model convergence on TPC-C.
//!
//! How much online data do the models need? The DBMS migrates from the
//! laptop (offline models) to the server, collects online TPC-C data,
//! and retrains at increasing dataset sizes; the offline-only error is
//! the horizontal baseline.
//!
//! Paper shape: the log serializer converges around 40k points (up to
//! −98% error), the disk writer around 70k; networking needs little
//! data; the execution engine's offline models are already competitive
//! at one client (the runners sweep broadly, so there is little for
//! narrow online data to add).

use tscout_bench::{
    absorb_db, attach_collect, cap_points, dump_observability, merge_data, new_db, offline_data,
    subsystem_error_us, time_scale, total_points, Csv, REPORTED_SUBSYSTEMS,
};
use tscout_kernel::HardwareProfile;
use tscout_workloads::driver::{collect_datasets, RunOptions};
use tscout_workloads::{Tpcc, Workload};

fn main() {
    let offline = offline_data(HardwareProfile::laptop_6core(), 0xF9, 600e6);

    let collect = |seed: u64, dur: f64| {
        let mut db = new_db(HardwareProfile::server_2x20(), seed);
        let mut w = Tpcc::new(4);
        w.setup(&mut db);
        attach_collect(&mut db);
        let (_, data) = collect_datasets(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 1,
                duration_ns: dur * time_scale(),
                seed,
                ..Default::default()
            },
        );
        absorb_db(&db);
        data
    };
    let online = collect(0xF9A, 2_000e6);
    let test = collect(0xF9B, 400e6);
    let available = total_points(&online);
    println!("# online pool: {available} points");

    let mut csv = Csv::create(
        "fig9_convergence_tpcc.csv",
        "subsystem,online_points,offline_err_us,online_err_us",
    );
    let sizes = [2_000usize, 5_000, 10_000, 20_000, 40_000, 70_000, 100_000];
    for sub in REPORTED_SUBSYSTEMS {
        let off = subsystem_error_us(&offline, &test, sub, 5);
        for &n in &sizes {
            if n > available {
                continue;
            }
            let subset = cap_points(&online, n, n as u64);
            let augmented = merge_data(&offline, &subset);
            let on = subsystem_error_us(&augmented, &test, sub, 5);
            csv.row(&format!("{sub},{n},{off:.2},{on:.2}"));
        }
    }
    println!("# paper shape: WAL subsystems converge by ~40-70k points; networking flat");
    dump_observability("fig9");
}
