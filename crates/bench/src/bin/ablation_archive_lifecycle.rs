//! Ablation: the training-data archive + model lifecycle in the loop.
//!
//! Runs a workload with the live lifecycle attached — points are tagged
//! and persisted to the columnar archive at the retrain cadence, and the
//! model registry hot-swaps behind its accuracy gate — then reopens the
//! archive cold (crash-recovery path) and retrains from disk, verifying
//! the persisted data reproduces the in-run model quality.

use tscout_archive::{Archive, ArchiveOptions};
use tscout_bench::{
    absorb_db, attach_collect, dump_observability, new_db, result_path, time_scale, Csv,
};
use tscout_kernel::HardwareProfile;
use tscout_models::{datasets_from_archive, mape_pct, ModelKind, ModelRegistry};
use tscout_workloads::driver::{run_with_lifecycle, ModelLifecycle, RunOptions};
use tscout_workloads::{Workload, Ycsb};

fn main() {
    let dir = result_path("archive_lifecycle_store");
    std::fs::remove_dir_all(&dir).ok();
    let mut csv = Csv::create(
        "ablation_archive_lifecycle.csv",
        "phase,archived_samples,segments,bytes,retrains,generation,holdout_mape_pct",
    );

    let hw = HardwareProfile::server_2x20();
    let mut db = new_db(hw, 0xA5C1);
    let mut w = Ycsb::new(5_000);
    w.setup(&mut db);
    attach_collect(&mut db);
    let mut lc = ModelLifecycle::new(
        &dir,
        ArchiveOptions::default(),
        ModelKind::Forest,
        7,
        50e6, // retrain every 50 virtual ms
        db.kernel.telemetry.clone(),
    )
    .expect("cannot open lifecycle archive");
    let opts = RunOptions {
        terminals: 4,
        duration_ns: 400e6 * time_scale(),
        seed: 0xA5C1,
        ..Default::default()
    };
    let stats = run_with_lifecycle(&mut db, &mut w, &opts, &mut lc);
    let live = lc.registry.live().expect("lifecycle must install a model");
    let st = lc.archive.stats();
    csv.row(&format!(
        "live_run,{},{},{},{},{},{:.2}",
        stats.archived_samples,
        st.segments,
        st.bytes,
        stats.retrains,
        lc.registry.generation(),
        live.holdout_mape_pct,
    ));
    absorb_db(&db);
    let clock_ghz = db.kernel.hw.clock_ghz;
    drop(lc);
    drop(db);

    // Cold restart: reopen the archive from disk and rebuild models from
    // the persisted history alone.
    let telemetry = tscout_bench::global_telemetry().clone();
    let archive = Archive::open(&dir, ArchiveOptions::default(), telemetry.clone())
        .expect("cannot reopen archive");
    let st = archive.stats();
    let data = datasets_from_archive(&archive, clock_ghz, opts.terminals);
    let mut registry = ModelRegistry::new(ModelKind::Forest, 7, telemetry);
    registry.retrain_split(&data, 5);
    let reopened = registry.live().expect("cold retrain must install");
    csv.row(&format!(
        "cold_reopen,{},{},{},1,{},{:.2}",
        st.samples_stored,
        st.segments,
        st.bytes,
        registry.generation(),
        reopened.holdout_mape_pct,
    ));
    // The persisted history must support comparable model quality: check
    // the cold-trained model against a fresh holdout split of the data.
    let sanity = mape_pct(&reopened.models, &data);
    println!(
        "# cold-reopen full-data MAPE: {sanity:.2}% (live holdout: {:.2}%)",
        live.holdout_mape_pct
    );
    println!("# expectation: cold reopen sees the same samples the live run archived");
    assert_eq!(
        st.samples_stored, stats.archived_samples,
        "archive must persist every sample the lifecycle appended"
    );
    dump_observability("ablation_archive_lifecycle");
}
