//! Ablation: bounded overwrite ring vs. capacity (paper §3/§3.2).
//!
//! "The Collector's buffer is bounded so that TS will overwrite samples
//! if it is full" — the DBMS never blocks on the Processor. Sweeping the
//! ring capacity shows throughput is invariant (no back pressure) while
//! the drop rate falls with capacity.

use tscout::{CollectionMode, TsConfig};
use tscout_bench::{absorb_db, dump_observability, new_db, set_rates, time_scale, Csv};
use tscout_kernel::HardwareProfile;
use tscout_workloads::driver::{run, RunOptions};
use tscout_workloads::{Workload, Ycsb};

fn main() {
    let mut csv = Csv::create(
        "ablation_ringbuf.csv",
        "ring_capacity,ktps,samples_processed,samples_dropped",
    );
    for cap in [256usize, 1024, 4096, 16384, 65536] {
        let mut db = new_db(HardwareProfile::server_2x20(), 0xAB3);
        let mut w = Ycsb::new(20_000);
        w.setup(&mut db);
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_all_subsystems();
        cfg.ring_capacity = cap;
        db.attach_tscout(cfg).unwrap();
        set_rates(&mut db, 30);
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 8,
                duration_ns: 100e6 * time_scale(),
                seed: 4,
                ..Default::default()
            },
        );
        csv.row(&format!(
            "{cap},{:.1},{},{}",
            stats.ktps(),
            stats.samples_processed,
            stats.samples_dropped
        ));
        absorb_db(&db);
    }
    println!("# expectation: throughput flat across capacities (no back pressure); drops shrink");
    dump_observability("ablation_ringbuf");
}
