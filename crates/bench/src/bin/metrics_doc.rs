//! Keep the README metric table honest.
//!
//! Default mode rewrites the block between `<!-- METRICS -->` and
//! `<!-- /METRICS -->` in the repo-root README.md from
//! [`tscout_telemetry::METRIC_DOCS`]. `--check` mode (run by ci.sh)
//! fails if the README block is stale, and then runs a small in-process
//! smoke workload — collector attached, lineage tracer sampling, model
//! lifecycle retraining, flight recorder exercised, virtual tables
//! queried — and fails if the run registers any metric name that
//! `METRIC_DOCS` does not document, or if a documented trace /
//! flight-recorder metric never registers (a stale doc entry). Together
//! the directions mean the README can neither miss a live metric nor
//! carry one the code no longer emits.

use tscout_actions::{ActionConfig, ActionEngine};
use tscout_archive::ArchiveOptions;
use tscout_bench::{attach_collect, new_db};
use tscout_kernel::HardwareProfile;
use tscout_models::ModelKind;
use tscout_telemetry::{is_documented, metric_table_markdown, Alert, HealthState, METRIC_DOCS};
use tscout_workloads::driver::{run_with_lifecycle, ModelLifecycle, RunOptions};
use tscout_workloads::{Workload, Ycsb};

const README: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
const BEGIN: &str = "<!-- METRICS -->";
const END: &str = "<!-- /METRICS -->";

/// Replace the marker block's interior with `table`, returning the new
/// README contents. Panics with a clear message if the markers are
/// missing or out of order — that is a repo defect, not a user error.
fn splice(readme: &str, table: &str) -> String {
    let begin = readme
        .find(BEGIN)
        .unwrap_or_else(|| panic!("README.md is missing the {BEGIN} marker"))
        + BEGIN.len();
    let end = readme
        .find(END)
        .unwrap_or_else(|| panic!("README.md is missing the {END} marker"));
    assert!(begin <= end, "README.md metric markers are out of order");
    format!("{}\n{}{}", &readme[..begin], table, &readme[end..])
}

/// Run a small end-to-end smoke — workload + collector + model
/// lifecycle + virtual-table introspection — and return every metric
/// name the run registered.
fn smoke_metric_names() -> Vec<String> {
    let dir = std::env::temp_dir().join(format!("metrics_doc_smoke_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut db = new_db(HardwareProfile::server_2x20(), 0xD0C5);
    let mut w = Ycsb::new(1_000);
    w.setup(&mut db);
    attach_collect(&mut db);
    // Sample lineage traces so every trace metric registers.
    db.kernel.telemetry.trace_set_every(16);
    let mut lc = ModelLifecycle::new(
        &dir,
        ArchiveOptions::default(),
        ModelKind::Ridge,
        5,
        30e6,
        db.kernel.telemetry.clone(),
    )
    .expect("cannot open smoke archive");
    // A dry-run action engine: every `tscout_action_*` metric registers
    // (the engine pre-declares them at zero) without actuating anything.
    lc = lc.with_actions(ActionEngine::new(
        ActionConfig {
            dry_run: true,
            ..Default::default()
        },
        db.kernel.telemetry.clone(),
    ));
    run_with_lifecycle(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 120e6,
            seed: 0xD0C5,
            ..Default::default()
        },
        &mut lc,
    );
    // Touch the introspection path too, so its own counters register.
    let sid = db.create_session();
    for table in noisetap::stat::VIRTUAL_TABLES {
        db.execute(sid, &format!("SELECT count(*) FROM {table}"), &[])
            .unwrap();
    }
    // And the query-observability path: EXPLAIN ANALYZE registers its
    // counter (statement stats registered during the driven run above).
    db.execute(sid, "EXPLAIN ANALYZE SELECT count(*) FROM usertable", &[])
        .unwrap();
    // Exercise the flight recorder with a synthetic CRITICAL transition
    // so its bundle counter registers (the bundle lands in the temp dir).
    db.kernel
        .telemetry
        .arm_flight_recorder(dir.clone(), "metrics_doc_smoke");
    db.kernel.telemetry.flight_record(
        1e9,
        &[Alert {
            seq: 0,
            at_ns: 1e9,
            rule: "smoke".into(),
            subsystem: "data".into(),
            target: String::new(),
            from: HealthState::Ok,
            to: HealthState::Critical,
            value: 1.0,
            threshold: 0.5,
        }],
        "",
    );
    // Operator plane: serve this registry for real and make requests so
    // every `tscout_obsd_*` self-metric registers live (the server keeps
    // them in its own registry — the simulation's stays untouched).
    let srv = tscout_obsd::ObsdServer::start(
        tscout_obsd::ObsdConfig::default(),
        db.kernel.telemetry.clone(),
    )
    .expect("cannot start smoke obsd server");
    let addr = srv.addr().to_string();
    tscout_obsd::client::get(&addr, "/metrics").expect("smoke scrape");
    tscout_obsd::client::get(&addr, "/no/such/path").expect("smoke 404");
    let mut names = db.kernel.telemetry.with_registry(|r| r.metric_names());
    names.extend(srv.self_telemetry().with_registry(|r| r.metric_names()));
    srv.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    names
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let readme = std::fs::read_to_string(README).expect("cannot read README.md");
    let updated = splice(&readme, &metric_table_markdown());

    if !check {
        if updated == readme {
            println!("README.md metric table already up to date");
        } else {
            std::fs::write(README, &updated).expect("cannot write README.md");
            println!("README.md metric table rewritten");
        }
        return;
    }

    let mut failed = false;
    if updated != readme {
        eprintln!(
            "FAIL: README.md metric table is stale; \
             run `cargo run -p tscout-bench --bin metrics_doc` and commit the diff"
        );
        failed = true;
    }
    let names = smoke_metric_names();
    let undocumented: Vec<&String> = names.iter().filter(|n| !is_documented(n)).collect();
    for name in &undocumented {
        eprintln!("FAIL: metric `{name}` is registered at runtime but not in METRIC_DOCS");
        failed = true;
    }
    // Stale direction for the tracing plane, the load-time optimizer,
    // and the action engine: every documented trace / flight-recorder /
    // optimizer / action metric must actually register during the
    // traced smoke — a renamed or removed metric fails here.
    let stale: Vec<&str> = METRIC_DOCS
        .iter()
        .map(|(n, _, _)| *n)
        .filter(|n| {
            n.starts_with("tscout_trace")
                || n.starts_with("ts_flightrec")
                || n.starts_with("tscout_opt")
                || n.starts_with("tscout_action")
                || n.starts_with("tscout_obsd")
        })
        .filter(|n| !names.iter().any(|have| have == n))
        .collect();
    for name in &stale {
        eprintln!("FAIL: trace metric `{name}` is in METRIC_DOCS but never registered at runtime");
        failed = true;
    }
    println!(
        "checked {} runtime metric names against METRIC_DOCS ({} undocumented, {} stale trace)",
        names.len(),
        undocumented.len(),
        stale.len()
    );
    if failed {
        std::process::exit(1);
    }
    println!("README.md metric table is current");
}
