//! Ablation: the action engine closes the self-driving loop.
//!
//! Two identical databases run the same drifting range-scan workload
//! (the `ablation_drift` shift: scan width jumps ~200× mid-run) under a
//! model lifecycle. The *control* arm has no action engine: drift goes
//! CRITICAL and nothing ever clears it. The *engine* arm attaches the
//! action engine on the pump cadence: the drift-CRITICAL transition
//! triggers an out-of-band retrain, the accepted swap rebaselines the
//! drift references, and data health recovers — the closed loop the
//! paper's self-driving premise needs (observe → predict → act →
//! observe the action itself).
//!
//! Every fired action leaves a row in the `ts_actions` virtual table
//! and, once its observation window closes, an efficacy sample in the
//! archive's own `action_efficacy` OU family. The full action log is
//! exported to `results/actions_ablation_actions.json`.

use noisetap::engine::{Database, StatementId};
use noisetap::Value;
use rand::RngExt;
use tscout_actions::{ActionConfig, ActionEngine, EFFICACY_OU_NAME};
use tscout_archive::ArchiveOptions;
use tscout_bench::{
    absorb_db, attach_collect, dump_artifact, dump_observability, new_db, results_dir, Csv,
};
use tscout_kernel::HardwareProfile;
use tscout_models::ModelKind;
use tscout_workloads::driver::{run_with_lifecycle, ModelLifecycle, RunOptions, TxnCtx, Workload};

/// Range-scan workload whose scan width jumps from `narrow` to `wide`
/// rows after `shift_after` transactions.
struct ShiftScan {
    rows: i64,
    narrow: i64,
    wide: i64,
    shift_after: u64,
    done: u64,
    scan: Option<StatementId>,
}

impl ShiftScan {
    fn new(shift_after: u64) -> ShiftScan {
        ShiftScan {
            rows: 4_000,
            narrow: 8,
            wide: 1_600,
            shift_after,
            done: 0,
            scan: None,
        }
    }
}

impl Workload for ShiftScan {
    fn name(&self) -> &'static str {
        "shift_scan"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE shift_t (k INT PRIMARY KEY, v FLOAT)",
            &[],
        )
        .unwrap();
        let ins = db.prepare("INSERT INTO shift_t VALUES ($1, $2)").unwrap();
        for k in 0..self.rows {
            db.execute_prepared(sid, ins, &[Value::Int(k), Value::Float(k as f64)])
                .unwrap();
        }
        self.scan = Some(
            db.prepare("SELECT sum(v) FROM shift_t WHERE k >= $1 AND k <= $2")
                .unwrap(),
        );
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let width = if self.done < self.shift_after {
            self.narrow
        } else {
            self.wide
        };
        self.done += 1;
        let lo = ctx.rng.random_range(0..(self.rows - width));
        let stmt = self.scan.expect("setup() not called");
        ctx.begin();
        let ok = ctx
            .request(stmt, &[Value::Int(lo), Value::Int(lo + width)])
            .is_ok();
        if ok {
            ctx.commit().is_ok()
        } else {
            ctx.rollback();
            false
        }
    }
}

struct ArmResult {
    committed: u64,
    final_health: f64,
    retrains_actuated: u64,
    rebaselines: u64,
    actions_planned: u64,
    actions_observed: u64,
    efficacy_samples: usize,
    log_len: usize,
}

fn run_arm(tag: &str, engine: bool, seed: u64) -> (Database, ArmResult) {
    let dir = std::env::temp_dir().join(format!("ts_abl_actions_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut db = new_db(HardwareProfile::server_2x20(), seed);
    // Single-variable isolation, like `ablation_drift`: statement stats
    // off so only the engine differs between the arms.
    db.stmt_stats_enabled = false;
    let mut w = ShiftScan::new(1_200);
    w.setup(&mut db);
    attach_collect(&mut db);
    let mut lc = ModelLifecycle::new(
        &dir,
        ArchiveOptions::default(),
        ModelKind::Ridge,
        7,
        60e6,
        db.kernel.telemetry.clone(),
    )
    .expect("cannot open lifecycle archive");
    if engine {
        lc = lc.with_actions(ActionEngine::new(
            ActionConfig::default(),
            db.kernel.telemetry.clone(),
        ));
    }
    let stats = run_with_lifecycle(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 400e6,
            seed,
            ..Default::default()
        },
        &mut lc,
    );
    let t = &db.kernel.telemetry;
    let r = ArmResult {
        committed: stats.committed,
        final_health: t.gauge_value("ts_health_state", &[("subsystem", "data")]),
        retrains_actuated: t.counter_value(
            "tscout_action_actuated_total",
            &[("kind", "trigger_retrain")],
        ),
        rebaselines: t.counter_value("ts_drift_rebaselines_total", &[]),
        actions_planned: t.counter_total("tscout_action_planned_total"),
        actions_observed: t.counter_total("tscout_action_observed_total"),
        efficacy_samples: lc.archive.scan_ou(EFFICACY_OU_NAME).count(),
        log_len: t.actions_snapshot().len(),
    };
    std::fs::remove_dir_all(&dir).ok();
    (db, r)
}

fn main() {
    let mut csv = Csv::create(
        "ablation_actions.csv",
        "arm,committed,final_health,retrains_actuated,rebaselines,actions_planned,actions_observed,efficacy_samples",
    );

    let (control_db, control) = run_arm("control", false, 0xAC7);
    let (mut engine_db, engine) = run_arm("engine", true, 0xAC7);

    for (arm, r) in [("control", &control), ("engine", &engine)] {
        csv.row(&format!(
            "{arm},{},{},{},{},{},{},{}",
            r.committed,
            r.final_health,
            r.retrains_actuated,
            r.rebaselines,
            r.actions_planned,
            r.actions_observed,
            r.efficacy_samples,
        ));
    }

    // The closed-loop contract this ablation demonstrates.
    assert!(
        control.final_health >= 2.0,
        "control arm must end CRITICAL (health {})",
        control.final_health
    );
    assert_eq!(control.rebaselines, 0, "control arm must never rebaseline");
    assert!(
        engine.retrains_actuated >= 1,
        "engine arm never actuated a retrain"
    );
    assert!(
        engine.rebaselines >= 1,
        "accepted swap must rebaseline the drift references"
    );
    assert!(
        engine.final_health < 2.0,
        "engine arm must leave CRITICAL (health {})",
        engine.final_health
    );
    // Every closed action left an efficacy sample in its own OU family.
    assert!(engine.actions_planned >= 1, "engine planned nothing");
    assert!(
        engine.efficacy_samples as u64 >= engine.actions_observed,
        "closed actions ({}) outnumber archived efficacy samples ({})",
        engine.actions_observed,
        engine.efficacy_samples
    );
    println!(
        "# expectation: engine arm recovers (health {} -> {}), control stays CRITICAL ({})",
        2.0, engine.final_health, control.final_health
    );

    // Every fired action has a `ts_actions` row, readable through SQL.
    let sid = engine_db.create_session();
    let rows = engine_db
        .execute(sid, "SELECT count(*) FROM ts_actions", &[])
        .expect("ts_actions must be queryable")
        .rows;
    assert_eq!(
        rows[0][0].as_int().unwrap() as usize,
        engine.log_len,
        "ts_actions row count disagrees with the in-memory action log"
    );

    // Export the engine arm's full action log for the figure.
    dump_artifact(
        &results_dir(),
        "actions_ablation_actions.json",
        "action log",
        &engine_db.kernel.telemetry.actions_json(),
    );

    // Engine arm first: the global registry adopts the first non-idle
    // health state it sees, and the recovered state is the story here.
    absorb_db(&engine_db);
    absorb_db(&control_db);
    dump_observability("ablation_actions");
}
