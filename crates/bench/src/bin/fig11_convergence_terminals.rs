//! Figure 11: execution-engine model accuracy vs. client count.
//!
//! "As the number of clients increases, the offline models are less
//! accurate at predicting execution time [...] The biggest contributor
//! to this error is contention for resources under heavy load that the
//! offline runners do not capture." Offline runners are single-threaded;
//! online TPC-C data at N terminals embeds the contention.
//!
//! Paper shape: error reduction grows from ~30-47% at 2 terminals to
//! 98-99% at 20; offline absolute error reaches ~885 µs at 20 clients.

use tscout::Subsystem;
use tscout_bench::{
    absorb_db, attach_collect, cap_points, dump_observability, merge_data, new_db, offline_data,
    subsystem_error_us, time_scale, Csv,
};
use tscout_kernel::HardwareProfile;
use tscout_models::eval::error_reduction_pct;
use tscout_workloads::driver::{collect_datasets, RunOptions};
use tscout_workloads::{Tpcc, Workload};

fn main() {
    let hw = HardwareProfile::server_2x20();
    let offline = offline_data(hw.clone(), 0xF11, 600e6);
    let mut csv = Csv::create(
        "fig11_convergence_terminals.csv",
        "terminals,online_points,offline_err_us,online_err_us,error_reduction_pct",
    );
    for terminals in [2usize, 5, 10, 20] {
        let collect = |seed: u64, dur: f64| {
            let mut db = new_db(hw.clone(), seed);
            let mut w = Tpcc::new(4);
            w.setup(&mut db);
            attach_collect(&mut db);
            let (_, data) = collect_datasets(
                &mut db,
                &mut w,
                &RunOptions {
                    terminals,
                    duration_ns: dur * time_scale(),
                    seed,
                    ..Default::default()
                },
            );
            absorb_db(&db);
            data
        };
        let online = collect(0xF11A + terminals as u64, 400e6);
        let test = collect(0xF11B + terminals as u64, 150e6);
        let sub = Subsystem::ExecutionEngine;
        let off = subsystem_error_us(&offline, &test, sub, 5);
        for n in [10_000usize, 20_000, 30_000] {
            let subset = cap_points(&online, n, n as u64);
            let augmented = merge_data(&offline, &subset);
            let on = subsystem_error_us(&augmented, &test, sub, 5);
            csv.row(&format!(
                "{terminals},{n},{off:.2},{on:.2},{:.1}",
                error_reduction_pct(off, on)
            ));
        }
    }
    println!("# paper shape: offline error grows with terminals; reduction reaches >90% at 20");
    dump_observability("fig11");
}
