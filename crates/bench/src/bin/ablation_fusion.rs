//! Ablation: per-operator markers vs. fused pipelines (paper §5.2).
//!
//! Fused ("JIT") execution wraps a whole query in one marker pair and
//! emits vectorized per-OU features; the Processor de-aggregates by
//! apportioning metrics. Fewer marker events means lower overhead, at
//! the cost of attribution precision in the training data.

use noisetap::EngineMode;
use tscout::{CollectionMode, Subsystem};
use tscout_bench::{
    absorb_db, attach_collect, dump_observability, new_db, subsystem_error_us, time_scale, Csv,
};
use tscout_kernel::HardwareProfile;
use tscout_models::dataset::OuData;
use tscout_workloads::driver::{collect_datasets, RunOptions};
use tscout_workloads::{Tpcc, Workload};

fn measure(mode: EngineMode, seed: u64) -> (f64, u64, Vec<OuData>) {
    let mut db = new_db(HardwareProfile::server_2x20(), seed);
    db.mode = mode;
    let mut w = Tpcc::new(2);
    w.setup(&mut db);
    attach_collect(&mut db);
    let (stats, data) = collect_datasets(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 4,
            duration_ns: 250e6 * time_scale(),
            seed,
            ..Default::default()
        },
    );
    let events = db.tscout().unwrap().stats.marker_events;
    absorb_db(&db);
    (stats.ktps(), events, data)
}

fn main() {
    let _ = CollectionMode::KernelContinuous;
    let mut csv = Csv::create(
        "ablation_fusion.csv",
        "engine_mode,ktps,marker_events,ee_model_err_us",
    );
    for (name, mode, seed) in [
        ("per_operator", EngineMode::PerOperator, 1u64),
        ("fused_pipeline", EngineMode::Fused, 2),
    ] {
        let (ktps, events, train) = measure(mode, seed);
        // Test on per-operator ground truth (exact attribution).
        let (_, _, test) = measure(EngineMode::PerOperator, seed + 10);
        let err = subsystem_error_us(&train, &test, Subsystem::ExecutionEngine, 3);
        csv.row(&format!("{name},{ktps:.1},{events},{err:.2}"));
    }
    println!(
        "# expectation: fused mode fires fewer markers but its de-aggregated data models worse"
    );
    dump_observability("ablation_fusion");
}
