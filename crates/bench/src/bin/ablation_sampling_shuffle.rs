//! Ablation: shuffled vs. contiguous sampling bits (paper §5.3).
//!
//! "The random distribution of ones reduces the burstiness of
//! collection. Without shuffling, a transaction's query sequence may
//! fall entirely within the sampling window, thereby experiencing higher
//! latency than other transactions." Same mean overhead, worse tail.

use tscout::CollectionMode;
use tscout_bench::{absorb_db, attach_all, dump_observability, new_db, time_scale, Csv};
use tscout_kernel::HardwareProfile;
use tscout_workloads::driver::{run, RunOptions};
use tscout_workloads::{Workload, Ycsb};

fn measure(shuffle: bool) -> (f64, f64, f64) {
    let mut db = new_db(HardwareProfile::server_2x20(), 0xAB1);
    let mut w = Ycsb::new(20_000);
    w.setup(&mut db);
    attach_all(&mut db, CollectionMode::KernelContinuous, 0);
    {
        let ts = db.tscout_mut().unwrap();
        ts.sampler.shuffle = shuffle;
        for s in tscout::ALL_SUBSYSTEMS {
            ts.set_sampling_rate(s, 20);
        }
    }
    let stats = run(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 4,
            duration_ns: 150e6 * time_scale(),
            seed: 1,
            ..Default::default()
        },
    );
    absorb_db(&db);
    (
        stats.latency_percentile_ms(50.0) * 1000.0,
        stats.latency_percentile_ms(99.0) * 1000.0,
        stats.ktps(),
    )
}

fn main() {
    let mut csv = Csv::create(
        "ablation_sampling_shuffle.csv",
        "bit_layout,p50_us,p99_us,ktps",
    );
    for (name, shuffle) in [("shuffled", true), ("contiguous", false)] {
        let (p50, p99, ktps) = measure(shuffle);
        csv.row(&format!("{name},{p50:.1},{p99:.1},{ktps:.1}"));
    }
    println!(
        "# expectation: similar p50/throughput; contiguous bits inflate p99 (bursty sampling)"
    );
    dump_observability("ablation_sampling_shuffle");
}
