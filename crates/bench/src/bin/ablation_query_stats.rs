//! Ablation: query-level observability through the live pipeline.
//!
//! Runs YCSB with the model lifecycle attached so a behavior model
//! trains and hot-swaps in, then reads the query plane back *through
//! SQL*: `EXPLAIN ANALYZE` (the statement executes for real; the plan
//! tree renders per-node actual ns/rows/loops plus the live model's
//! predicted ns and error), and `ts_stat_statements` ordered by total
//! time. The binary asserts the accounting contract: the statement
//! registry is non-empty, every row is internally consistent
//! (`calls*min <= total <= calls*max`, OU self time bounded by
//! inclusive time), per-fingerprint calls add up to the recorded
//! counter when nothing was evicted, and the EXPLAIN ANALYZE footer
//! carries a model generation once a swap has happened.

use tscout_archive::ArchiveOptions;
use tscout_bench::{absorb_db, attach_collect, dump_observability, new_db, Csv};
use tscout_kernel::HardwareProfile;
use tscout_models::ModelKind;
use tscout_workloads::driver::{run_with_lifecycle, ModelLifecycle, RunOptions};
use tscout_workloads::{Workload, Ycsb};

fn main() {
    let dir = std::env::temp_dir().join(format!("query_stats_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut csv = Csv::create(
        "ablation_query_stats.csv",
        "fingerprint,calls,rows,total_ns,mean_ns,ou_ns_total,mape_pct",
    );

    let mut db = new_db(HardwareProfile::server_2x20(), 0x5EE1);
    let mut w = Ycsb::new(5_000);
    w.setup(&mut db);
    attach_collect(&mut db);
    let mut lc = ModelLifecycle::new(
        &dir,
        ArchiveOptions::default(),
        ModelKind::Ridge,
        5,
        50e6,
        db.kernel.telemetry.clone(),
    )
    .expect("cannot open lifecycle archive");
    // Fixed virtual duration (no TS_SCALE): the assertions below need at
    // least one accepted model swap for predicted columns to render.
    let stats = run_with_lifecycle(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 4,
            duration_ns: 300e6,
            seed: 0x5EE1,
            ..Default::default()
        },
        &mut lc,
    );
    assert!(stats.retrains >= 1, "lifecycle must retrain at least once");
    let recorded = db.kernel.telemetry.stmt_recorded();
    assert!(recorded > 0, "driven run must record statements");

    // EXPLAIN ANALYZE through plain SQL: executes for real, annotates
    // actuals, and cites the hot-swapped model's generation.
    let sid = db.create_session();
    let ea = db
        .execute(
            sid,
            "EXPLAIN ANALYZE SELECT * FROM usertable WHERE ycsb_key = 42",
            &[],
        )
        .unwrap()
        .rows;
    for r in &ea {
        println!("  {}", r[0].as_text().unwrap());
    }
    assert!(
        ea.iter()
            .any(|r| r[0].as_text().unwrap().contains("actual=")),
        "EXPLAIN ANALYZE must annotate actuals"
    );
    let footer = ea.last().unwrap()[0].as_text().unwrap().to_string();
    assert!(
        footer.contains("model generation"),
        "a retrained run must attribute predictions to a generation: {footer}"
    );

    // The statement registry, read back through SQL, ordered by cost.
    let rows = db
        .execute(
            sid,
            "SELECT fingerprint, calls, rows, total_ns, mean_ns, ou_ns_total, mape_pct \
             FROM ts_stat_statements ORDER BY total_ns DESC",
            &[],
        )
        .unwrap()
        .rows;
    assert!(!rows.is_empty(), "ts_stat_statements must be non-empty");
    let mut calls_sum = 0u64;
    for r in &rows {
        let fp = r[0].as_text().unwrap();
        let calls = r[1].as_int().unwrap() as u64;
        let total = r[3].as_float().unwrap();
        let mean = r[4].as_float().unwrap();
        let ou_total = r[5].as_float().unwrap();
        let eps = 1e-6 * total.max(1.0);
        assert!(calls >= 1, "{fp}: empty entry surfaced");
        assert!(
            (mean * calls as f64 - total).abs() <= eps,
            "{fp}: mean*calls != total"
        );
        assert!(
            ou_total <= total + eps,
            "{fp}: OU self time exceeds inclusive time"
        );
        calls_sum += calls;
        csv.row(&format!(
            "\"{fp}\",{calls},{},{total:.0},{mean:.0},{ou_total:.0},{:.2}",
            r[2].as_int().unwrap(),
            r[6].as_float().unwrap(),
        ));
    }
    let evicted = db
        .kernel
        .telemetry
        .counter_value("db_stmt_evicted_total", &[]);
    if evicted == 0 {
        // The EXPLAIN ANALYZE above recorded itself after the snapshot
        // we read — allow for statements recorded since the counter read.
        assert!(
            calls_sum >= recorded,
            "per-fingerprint calls ({calls_sum}) must cover recorded statements ({recorded})"
        );
    }
    println!(
        "# statements: fingerprints={} calls={calls_sum} recorded={} evicted={evicted} retrains={}",
        rows.len(),
        db.kernel.telemetry.stmt_recorded(),
        stats.retrains
    );
    println!(
        "# expectation: EXPLAIN ANALYZE annotates per-node actual vs predicted cost, and \
         ts_stat_statements reconciles with the recorded-statement counter"
    );

    absorb_db(&db);
    dump_observability("ablation_query_stats");
    std::fs::remove_dir_all(&dir).ok();
}
