//! Figure 7: adapting to environment changes (hardware migration).
//!
//! The DBMS trains offline models on its initial machine, migrates to
//! different hardware, collects online data for a short window, and
//! retrains. "Larger HW" = 6-core laptop → 2×20-core server;
//! "Smaller HW" = the reverse.
//!
//! Paper shape: the disk writer improves most (−98% / −86% error — the
//! storage device changed and no model feature describes it), the log
//! serializer up to −91%; networking and the execution engine see modest
//! changes, and EE on smaller hardware can even fail to improve (the
//! only hardware feature is clock speed, so L3 differences are
//! invisible, §6.4).

use tscout_bench::{
    absorb_db, attach_collect, dump_observability, merge_data, new_db, offline_data,
    subsystem_error_us, time_scale, Csv, REPORTED_SUBSYSTEMS,
};
use tscout_kernel::HardwareProfile;
use tscout_models::eval::error_reduction_pct;
use tscout_workloads::driver::{collect_datasets, RunOptions};
use tscout_workloads::{Tpcc, Workload};

fn tpcc_data(hw: HardwareProfile, seed: u64, dur: f64) -> Vec<tscout_models::OuData> {
    let mut db = new_db(hw, seed);
    let mut w = Tpcc::new(4);
    w.setup(&mut db);
    attach_collect(&mut db);
    let (_, data) = collect_datasets(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 1,
            duration_ns: dur * time_scale(),
            seed,
            ..Default::default()
        },
    );
    absorb_db(&db);
    data
}

fn main() {
    let mut csv = Csv::create(
        "fig7_env_change.csv",
        "scenario,subsystem,offline_err_us,online_err_us,error_reduction_pct",
    );
    let scenarios = [
        (
            "larger_hw",
            HardwareProfile::laptop_6core(),
            HardwareProfile::server_2x20(),
        ),
        (
            "smaller_hw",
            HardwareProfile::server_2x20(),
            HardwareProfile::laptop_6core(),
        ),
    ];
    for (name, initial_hw, new_hw) in scenarios {
        // Offline runners on the *initial* hardware only.
        let offline = offline_data(initial_hw.clone(), 0xF7, 600e6);
        // Post-migration: 1 minute of online TPC-C on the new hardware
        // (scaled to the simulation's durations).
        let online = tpcc_data(new_hw.clone(), 0xF7 + 1, 600e6);
        // Evaluate on a fresh trace from the new environment.
        let test = tpcc_data(new_hw.clone(), 0xF7 + 2, 300e6);
        let augmented = merge_data(&offline, &online);
        for sub in REPORTED_SUBSYSTEMS {
            let off = subsystem_error_us(&offline, &test, sub, 3);
            let on = subsystem_error_us(&augmented, &test, sub, 3);
            csv.row(&format!(
                "{name},{sub},{off:.2},{on:.2},{:.1}",
                error_reduction_pct(off, on)
            ));
        }
    }
    println!("# paper shape: disk_writer and log_serializer improve most after migration");
    dump_observability("fig7");
}
