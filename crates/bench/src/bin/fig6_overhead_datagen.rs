//! Figure 6: runtime overhead (training data generation).
//!
//! "Impact of query sampling on OLTP training data generation."
//!
//! Paper shape: Kernel-Continuous generates ~3× more samples/s than the
//! user-space methods (which bottleneck on their serialized emission
//! path at low single-digit sampling rates); kernel collection peaks
//! around a 20–30% rate and the Processor caps the ceiling.

use tscout_bench::{dump_observability, overhead_sweep, Csv};

fn main() {
    let rates = [0u8, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let points = overhead_sweep(&["ycsb", "smallbank", "tatp", "tpcc"], &rates, 120e6, 20);
    let mut csv = Csv::create(
        "fig6_overhead_datagen.csv",
        "workload,method,rate_pct,ksamples_per_sec",
    );
    for p in &points {
        csv.row(&format!(
            "{},{},{},{:.2}",
            p.workload,
            p.method,
            p.rate,
            p.samples_per_sec / 1000.0
        ));
    }
    println!("# paper shape: kernel_continuous ~3x the user methods; peak near 20-30% sampling");
    dump_observability("fig6");
}
