//! Figure 2: offline vs. online training data.
//!
//! "Accuracy measurements of behavior models trained with offline and
//! online data when predicting the execution time of TPC-C queries",
//! holding out 20% of query templates. Reported as the reduction in
//! average absolute error from adding online data.
//!
//! Paper: execution engine 9.5%, networking 53%, log serializer 93%,
//! disk writer 77% — the WAL subsystems gain most because group-commit
//! behavior depends on the workload's arrival pattern, which offline
//! runners cannot reproduce.

use tscout_bench::{
    absorb_db, attach_collect, dump_observability, merge_data, new_db, offline_data,
    split_for_eval, subsystem_error_us, time_scale, Csv, REPORTED_SUBSYSTEMS,
};
use tscout_kernel::HardwareProfile;
use tscout_models::eval::error_reduction_pct;
use tscout_workloads::driver::{collect_datasets, RunOptions};
use tscout_workloads::{Tpcc, Workload};

fn main() {
    let hw = HardwareProfile::server_2x20();
    let offline = offline_data(hw.clone(), 0xF2_0FF, 800e6);

    // Online TPC-C deployment (multi-terminal, so contention and group
    // commit reflect production behavior).
    let mut db = new_db(hw, 0xF20A);
    let mut w = Tpcc::new(4);
    w.setup(&mut db);
    attach_collect(&mut db);
    let (_, online) = collect_datasets(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 1,
            duration_ns: 800e6 * time_scale(),
            seed: 2,
            ..Default::default()
        },
    );
    absorb_db(&db);

    // Hold out 20% of templates from the online data; evaluate both model
    // sets on the held-out queries.
    let (online_train, test) = split_for_eval(&online, 0.2, 7);
    let with_online = merge_data(&offline, &online_train);

    let mut csv = Csv::create(
        "fig2_offline_vs_online.csv",
        "subsystem,offline_err_us,online_err_us,error_reduction_pct",
    );
    for sub in REPORTED_SUBSYSTEMS {
        let off = subsystem_error_us(&offline, &test, sub, 1);
        let on = subsystem_error_us(&with_online, &test, sub, 1);
        csv.row(&format!(
            "{sub},{off:.2},{on:.2},{:.1}",
            error_reduction_pct(off, on)
        ));
    }
    println!("# paper shape: log_serializer & disk_writer reductions >> execution_engine");
    dump_observability("fig2");
}
