//! Ablation: online drift detection fires on an injected workload shift.
//!
//! Two identical databases run the same range-scan workload; in the
//! *shifted* arm the scan width jumps ~200× partway through (a workload
//! shift that invalidates models trained on the narrow phase), while the
//! *control* arm stays narrow throughout. The per-OU drift detector must
//! flip the affected OUs out of OK and fire `ou_drift` alerts in the
//! shifted arm while the control arm stays silent — the false-positive /
//! false-negative contract of the health engine.
//!
//! Both the detector state and the alert log are read back *through SQL*
//! (`ts_stat_ou`, `ts_alerts`), exercising the introspection path
//! end-to-end. The shifted arm also runs with the lineage tracer on and
//! the flight recorder armed: the CRITICAL `ou_drift` transition must
//! leave a `flightrec_ablation_drift_*.json` evidence bundle carrying
//! the triggering alert and the trace ring.

use noisetap::engine::{Database, StatementId};
use noisetap::Value;
use rand::RngExt;
use tscout_bench::{absorb_db, attach_collect, dump_observability, new_db, results_dir, Csv};
use tscout_kernel::HardwareProfile;
use tscout_workloads::driver::{run, RunOptions, TxnCtx, Workload};

/// Range-scan workload whose scan width jumps from `narrow` to `wide`
/// rows after `shift_after` transactions (`u64::MAX` = never: control).
struct ShiftScan {
    rows: i64,
    narrow: i64,
    wide: i64,
    shift_after: u64,
    done: u64,
    scan: Option<StatementId>,
}

impl ShiftScan {
    fn new(shift_after: u64) -> ShiftScan {
        ShiftScan {
            rows: 4_000,
            narrow: 8,
            wide: 1_600,
            shift_after,
            done: 0,
            scan: None,
        }
    }
}

impl Workload for ShiftScan {
    fn name(&self) -> &'static str {
        "shift_scan"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE shift_t (k INT PRIMARY KEY, v FLOAT)",
            &[],
        )
        .unwrap();
        let ins = db.prepare("INSERT INTO shift_t VALUES ($1, $2)").unwrap();
        for k in 0..self.rows {
            db.execute_prepared(sid, ins, &[Value::Int(k), Value::Float(k as f64)])
                .unwrap();
        }
        self.scan = Some(
            db.prepare("SELECT sum(v) FROM shift_t WHERE k >= $1 AND k <= $2")
                .unwrap(),
        );
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let width = if self.done < self.shift_after {
            self.narrow
        } else {
            self.wide
        };
        self.done += 1;
        let lo = ctx.rng.random_range(0..(self.rows - width));
        let stmt = self.scan.expect("setup() not called");
        ctx.begin();
        let ok = ctx
            .request(stmt, &[Value::Int(lo), Value::Int(lo + width)])
            .is_ok();
        if ok {
            ctx.commit().is_ok()
        } else {
            ctx.rollback();
            false
        }
    }
}

struct ArmResult {
    committed: u64,
    alerts_fired: u64,
    drift_alerts: i64,
    unhealthy_ous: Vec<(String, f64, String)>,
    max_drift: f64,
}

fn run_arm(shift_after: u64, seed: u64) -> (Database, ArmResult) {
    let mut db = new_db(HardwareProfile::server_2x20(), seed);
    // Single-variable isolation: this ablation demonstrates the drift
    // detector's false-positive/false-negative contract, so statement
    // stats stay off — their pump-cadence accounting shifts Processor
    // drain timing, which perturbs which samples sit in the live drift
    // window at evaluation time. `ablation_query_stats` covers the
    // stats-on driven path.
    db.stmt_stats_enabled = false;
    let mut w = ShiftScan::new(shift_after);
    w.setup(&mut db);
    attach_collect(&mut db);
    // Trace 1-in-64 markers and arm the flight recorder: a CRITICAL
    // health transition mid-run dumps an evidence bundle with the
    // triggering alert, the trace ring, and the profiler state.
    db.kernel.telemetry.trace_set_every(64);
    db.kernel
        .telemetry
        .arm_flight_recorder(results_dir(), "ablation_drift");
    // Fixed virtual duration (no TS_SCALE): the detector freezes its
    // reference after a fixed sample count, so the phase lengths are part
    // of the experiment design, not a runtime knob.
    let stats = run(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 400e6,
            seed,
            ..Default::default()
        },
    );

    // Read the detector back through the SQL introspection tables.
    let sid = db.create_session();
    let ou_rows = db
        .execute(
            sid,
            "SELECT ou, drift_score, health FROM ts_stat_ou ORDER BY drift_score DESC",
            &[],
        )
        .unwrap()
        .rows;
    let unhealthy_ous: Vec<(String, f64, String)> = ou_rows
        .iter()
        .filter(|r| r[2].as_text() != Some("OK"))
        .map(|r| {
            (
                r[0].as_text().unwrap().to_string(),
                r[1].as_float().unwrap(),
                r[2].as_text().unwrap().to_string(),
            )
        })
        .collect();
    let max_drift = ou_rows.first().and_then(|r| r[1].as_float()).unwrap_or(0.0);
    let drift_alerts = db
        .execute(
            sid,
            "SELECT count(*) FROM ts_alerts WHERE rule = 'ou_drift'",
            &[],
        )
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    let alerts_fired = db.kernel.telemetry.counter_total("alerts_fired_total");
    (
        db,
        ArmResult {
            committed: stats.committed,
            alerts_fired,
            drift_alerts,
            unhealthy_ous,
            max_drift,
        },
    )
}

fn main() {
    let mut csv = Csv::create(
        "ablation_drift.csv",
        "arm,committed,alerts_fired,drift_alerts,unhealthy_ous,max_drift_score",
    );

    let (control_db, control) = run_arm(u64::MAX, 0xD21F);
    let (shifted_db, shifted) = run_arm(1_200, 0xD21F);

    for (arm, r) in [("control", &control), ("shifted", &shifted)] {
        csv.row(&format!(
            "{arm},{},{},{},{},{:.3}",
            r.committed,
            r.alerts_fired,
            r.drift_alerts,
            r.unhealthy_ous.len(),
            r.max_drift,
        ));
    }
    for (ou, score, health) in &shifted.unhealthy_ous {
        println!("# shifted arm: {ou} drift_score={score:.3} health={health}");
    }

    // The detector contract this ablation demonstrates.
    assert_eq!(
        control.alerts_fired, 0,
        "control arm must stay silent, fired {}",
        control.alerts_fired
    );
    assert!(
        shifted.alerts_fired >= 1 && shifted.drift_alerts >= 1,
        "shifted arm must fire ou_drift alerts (fired={}, drift={})",
        shifted.alerts_fired,
        shifted.drift_alerts
    );
    assert!(
        !shifted.unhealthy_ous.is_empty(),
        "shifted arm must leave at least one OU out of OK"
    );
    println!(
        "# expectation: injected shift trips the detector ({} alerts, {} OUs unhealthy); control is silent",
        shifted.alerts_fired,
        shifted.unhealthy_ous.len()
    );

    // The CRITICAL transition in the shifted arm must have dumped a
    // flight-recorder bundle with the triggering alert and the traces.
    let bundle = results_dir().join("flightrec_ablation_drift_1.json");
    let body = std::fs::read_to_string(&bundle)
        .unwrap_or_else(|e| panic!("CRITICAL transition left no bundle at {bundle:?}: {e}"));
    assert!(
        body.contains("\"ou_drift\""),
        "bundle must carry the triggering ou_drift alert"
    );
    assert!(
        body.contains("\"traces\"") && body.contains("\"outcome\": \""),
        "bundle must carry a non-empty lineage-trace ring"
    );
    println!(
        "# flight recorder: CRITICAL transition dumped {}",
        bundle.display()
    );

    // Absorb the shifted arm first: the global registry adopts the first
    // non-idle drift/health state it sees, and the shifted arm is the one
    // the health_<fig>.json artifact should describe.
    absorb_db(&shifted_db);
    absorb_db(&control_db);
    dump_observability("ablation_drift");
}
