//! Figure 10: model convergence on CH-benCHmark (HTAP).
//!
//! Same convergence study as Fig. 9 but with the hybrid workload: 16
//! OLTP terminals running TPC-C and 4 terminals running TPC-H-flavored
//! analytical queries (the driver maps every 5th terminal to the
//! analytical mix).
//!
//! Paper shape: similar to TPC-C; the log serializer takes longer to
//! converge but reaches similar accuracy; the execution engine is the
//! hardest to model.

use tscout_bench::{
    absorb_db, attach_collect, cap_points, dump_observability, merge_data, new_db, offline_data,
    subsystem_error_us, time_scale, total_points, Csv, REPORTED_SUBSYSTEMS,
};
use tscout_kernel::HardwareProfile;
use tscout_workloads::driver::{collect_datasets, RunOptions};
use tscout_workloads::{ChBenchmark, Workload};

fn main() {
    let offline = offline_data(HardwareProfile::laptop_6core(), 0xF10, 600e6);

    let collect = |seed: u64, dur: f64| {
        let mut db = new_db(HardwareProfile::server_2x20(), seed);
        let mut w = ChBenchmark::new(1);
        w.setup(&mut db);
        attach_collect(&mut db);
        let (_, data) = collect_datasets(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 20,
                duration_ns: dur * time_scale(),
                seed,
                ..Default::default()
            },
        );
        absorb_db(&db);
        data
    };
    let online = collect(0xF10A, 150e6);
    let test = collect(0xF10B, 50e6);
    let available = total_points(&online);
    println!("# online pool: {available} points");

    let mut csv = Csv::create(
        "fig10_convergence_chbench.csv",
        "subsystem,online_points,offline_err_us,online_err_us",
    );
    let sizes = [2_000usize, 5_000, 10_000, 20_000, 40_000, 70_000, 100_000];
    for sub in REPORTED_SUBSYSTEMS {
        let off = subsystem_error_us(&offline, &test, sub, 5);
        for &n in &sizes {
            if n > available {
                continue;
            }
            let subset = cap_points(&online, n, n as u64);
            let augmented = merge_data(&offline, &subset);
            let on = subsystem_error_us(&augmented, &test, sub, 5);
            csv.row(&format!("{sub},{n},{off:.2},{on:.2}"));
        }
    }
    println!("# paper shape: online data converges toward much lower error than offline-only");
    dump_observability("fig10");
}
