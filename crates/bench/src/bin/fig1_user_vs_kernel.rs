//! Figure 1: user-space vs. kernel-space metrics collection.
//!
//! "Transaction latency of TPC-C with (1) DBMS metrics collection
//! disabled, (2) metrics collected in user-space, and (3) metrics
//! collected in kernel-space using BPF." Single client; average p99.
//!
//! Paper: none 5.2 ms, user 6.3 ms, kernel 5.7 ms — kernel collection
//! sits between "off" and the user-space approach because it needs only
//! one mode switch per marker instead of multiple toggling syscalls.

use tscout::CollectionMode;
use tscout_bench::{absorb_db, attach_all, dump_observability, new_db, time_scale, Csv};
use tscout_kernel::HardwareProfile;
use tscout_workloads::driver::{run, RunOptions};
use tscout_workloads::{Tpcc, Workload};

fn p99(mode: Option<CollectionMode>, seed: u64) -> f64 {
    let mut db = new_db(HardwareProfile::server_2x20(), seed);
    let mut w = Tpcc::new(2);
    w.setup(&mut db);
    if let Some(mode) = mode {
        attach_all(&mut db, mode, 10);
    }
    let stats = run(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 1,
            duration_ns: 400e6 * time_scale(),
            seed,
            ..Default::default()
        },
    );
    absorb_db(&db);
    stats.latency_percentile_ms(99.0)
}

fn main() {
    let mut csv = Csv::create("fig1_user_vs_kernel.csv", "config,p99_ms (10% sampling)");
    for (name, mode) in [
        ("no_metrics", None),
        ("user_space", Some(CollectionMode::UserToggle)),
        ("kernel_space", Some(CollectionMode::KernelContinuous)),
    ] {
        let v = p99(mode, 0xF161);
        csv.row(&format!("{name},{v:.3}"));
    }
    println!("# paper shape: no_metrics < kernel_space < user_space");
    dump_observability("fig1");
}
