//! Figure 5: runtime overhead (transaction throughput).
//!
//! "Impact of query sampling on OLTP transaction throughput, comparing
//! user-space and kernel-space approaches to system metrics collection."
//! All subsystems enabled; 20 client threads; rates swept 0–100%.
//!
//! Paper shape: User-Toggle degrades worst (≈ −50% at 100%);
//! User-Continuous starts 2–8% below baseline even at 0% (PMU
//! save/restore on every context switch) but degrades gently;
//! Kernel-Continuous sits near baseline at low rates.

use tscout_bench::{dump_observability, overhead_sweep, Csv};

fn main() {
    let rates = [0u8, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let points = overhead_sweep(&["ycsb", "smallbank", "tatp", "tpcc"], &rates, 120e6, 20);
    let mut csv = Csv::create(
        "fig5_overhead_throughput.csv",
        "workload,method,rate_pct,ktps",
    );
    for p in &points {
        csv.row(&format!(
            "{},{},{},{:.2}",
            p.workload, p.method, p.rate, p.ktps
        ));
    }
    println!(
        "# paper shape: user_toggle worst at high rates; user_continuous below baseline at 0%"
    );
    dump_observability("fig5");
}
