//! Figure 12: model generalization.
//!
//! Do models trained with online data overfit their deployment? Each
//! scenario trains on one configuration and evaluates on another:
//! database size (1 ↔ 4 warehouses), hardware (laptop ↔ server), thread
//! count (1 ↔ 20), and new queries (80% of templates → held-out 20%).
//!
//! Paper shape: online data helps or at least does not hurt in almost
//! every scenario; the known exception is the disk writer when
//! generalizing to *larger* hardware (no input feature describes the
//! storage device, so models trained on the slow device overshoot).

use tscout_bench::{
    absorb_db, attach_collect, dump_observability, merge_data, new_db, offline_data,
    split_for_eval, subsystem_error_us, time_scale, Csv, REPORTED_SUBSYSTEMS,
};
use tscout_kernel::HardwareProfile;
use tscout_models::dataset::OuData;
use tscout_models::eval::error_reduction_pct;
use tscout_workloads::driver::{collect_datasets, RunOptions};
use tscout_workloads::{Tpcc, Workload};

#[derive(Clone)]
struct Env {
    hw: HardwareProfile,
    warehouses: u64,
    terminals: usize,
}

fn collect(env: &Env, seed: u64, dur: f64) -> Vec<OuData> {
    let mut db = new_db(env.hw.clone(), seed);
    let mut w = Tpcc::new(env.warehouses);
    w.setup(&mut db);
    attach_collect(&mut db);
    let (_, data) = collect_datasets(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: env.terminals,
            duration_ns: dur * time_scale(),
            seed,
            ..Default::default()
        },
    );
    absorb_db(&db);
    data
}

fn main() {
    let server = HardwareProfile::server_2x20();
    let laptop = HardwareProfile::laptop_6core();
    let base = Env {
        hw: server.clone(),
        warehouses: 4,
        terminals: 1,
    };

    let env = |hw: &HardwareProfile, w: u64, t: usize| Env {
        hw: hw.clone(),
        warehouses: w,
        terminals: t,
    };
    // (name, train environment, test environment)
    let scenarios: Vec<(&str, Env, Env)> = vec![
        ("larger_db", env(&server, 1, 1), env(&server, 4, 1)),
        ("smaller_db", env(&server, 4, 1), env(&server, 1, 1)),
        ("larger_hw", env(&laptop, 4, 1), env(&server, 4, 1)),
        ("smaller_hw", env(&server, 4, 1), env(&laptop, 4, 1)),
        ("more_threads", env(&server, 4, 1), env(&server, 4, 20)),
        ("fewer_threads", env(&server, 4, 20), env(&server, 4, 1)),
    ];

    let mut csv = Csv::create(
        "fig12_generalization.csv",
        "scenario,subsystem,offline_err_us,online_err_us,error_reduction_pct",
    );
    for (i, (name, train_env, test_env)) in scenarios.iter().enumerate() {
        // Offline runners execute in the *training* environment's hardware.
        let offline = offline_data(train_env.hw.clone(), 0xF12 + i as u64, 500e6);
        let online = collect(train_env, 0xF12A + i as u64, 500e6);
        let test = collect(test_env, 0xF12B + i as u64, 250e6);
        let augmented = merge_data(&offline, &online);
        for sub in REPORTED_SUBSYSTEMS {
            let off = subsystem_error_us(&offline, &test, sub, 9);
            let on = subsystem_error_us(&augmented, &test, sub, 9);
            csv.row(&format!(
                "{name},{sub},{off:.2},{on:.2},{:.1}",
                error_reduction_pct(off, on)
            ));
        }
    }

    // New-queries scenario: train on 80% of templates, test on the rest,
    // same environment.
    let offline = offline_data(base.hw.clone(), 0xF12F, 500e6);
    let online = collect(&base, 0xF12E, 600e6);
    let (train, test) = split_for_eval(&online, 0.2, 11);
    let augmented = merge_data(&offline, &train);
    for sub in REPORTED_SUBSYSTEMS {
        let off = subsystem_error_us(&offline, &test, sub, 9);
        let on = subsystem_error_us(&augmented, &test, sub, 9);
        csv.row(&format!(
            "new_queries,{sub},{off:.2},{on:.2},{:.1}",
            error_reduction_pct(off, on)
        ));
    }
    println!("# paper shape: online >= offline almost everywhere; disk_writer/larger_hw is the exception");
    dump_observability("fig12");
}
