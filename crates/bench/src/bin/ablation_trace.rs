//! Ablation: end-to-end sample-lineage tracing through the live pipeline.
//!
//! Runs YCSB with the model lifecycle attached and the lineage tracer
//! sampling 1-in-64 collected markers. Every traced sample's journey —
//! marker fire, ring buffer, drain, sink, archive memtable, segment
//! seal, dataset, model generation — is reconstructed, then read back
//! *through SQL* (`ts_traces`, `ts_stat_pipeline`), exercising the
//! introspection path end-to-end. The binary asserts the tracer's
//! correctness contract: at least one completed trace with monotone
//! per-stage virtual timestamps, and exact accounting
//! (`started = completed + dropped + in_flight`).

use tscout_archive::ArchiveOptions;
use tscout_bench::{absorb_db, attach_collect, dump_observability, new_db, result_path, Csv};
use tscout_kernel::HardwareProfile;
use tscout_models::ModelKind;
use tscout_workloads::driver::{run_with_lifecycle, ModelLifecycle, RunOptions};
use tscout_workloads::{Workload, Ycsb};

fn main() {
    let dir = result_path("trace_lifecycle_store");
    std::fs::remove_dir_all(&dir).ok();
    let mut csv = Csv::create(
        "ablation_trace.csv",
        "stage,visits,mean_ns,p50_ns,p99_ns,max_ns,critical_count",
    );

    let mut db = new_db(HardwareProfile::server_2x20(), 0x7ACE);
    let mut w = Ycsb::new(5_000);
    w.setup(&mut db);
    attach_collect(&mut db);
    // Arm the tracer: 1-in-64 collected markers get a TraceId.
    db.kernel.telemetry.trace_set_every(64);
    let mut lc = ModelLifecycle::new(
        &dir,
        ArchiveOptions::default(),
        ModelKind::Forest,
        7,
        50e6,
        db.kernel.telemetry.clone(),
    )
    .expect("cannot open lifecycle archive");
    // Fixed virtual duration (no TS_SCALE): the assertions below need
    // enough samples for the 1/64 sampler to catch full lineages.
    let stats = run_with_lifecycle(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 4,
            duration_ns: 400e6,
            seed: 0x7ACE,
            ..Default::default()
        },
        &mut lc,
    );

    // Read the pipeline back through the SQL introspection tables.
    let sid = db.create_session();
    let pipe = db
        .execute(
            sid,
            "SELECT stage, visits, mean_ns, p50_ns, p99_ns, max_ns, critical_count \
             FROM ts_stat_pipeline ORDER BY seq",
            &[],
        )
        .unwrap()
        .rows;
    for r in &pipe {
        csv.row(&format!(
            "{},{},{:.0},{:.0},{:.0},{:.0},{}",
            r[0].as_text().unwrap(),
            r[1].as_int().unwrap(),
            r[2].as_float().unwrap(),
            r[3].as_float().unwrap(),
            r[4].as_float().unwrap(),
            r[5].as_float().unwrap(),
            r[6].as_int().unwrap(),
        ));
    }
    let traces = db
        .execute(
            sid,
            "SELECT trace_id, outcome, critical_stage, total_ns, monotone, stages \
             FROM ts_traces",
            &[],
        )
        .unwrap()
        .rows;
    let completed = traces.len();
    let monotone = traces
        .iter()
        .filter(|r| r[4] == noisetap::Value::Bool(true))
        .count();
    let delivered = traces
        .iter()
        .filter(|r| r[1].as_text() == Some("delivered"))
        .count();
    let full_lineage = traces
        .iter()
        .filter(|r| r[1].as_text() == Some("delivered") && r[5].as_int() == Some(8))
        .count();
    let st = db.kernel.telemetry.trace_stats();
    println!(
        "# traces: started={} completed={} dropped={} in_flight={} \
         (delivered={delivered}, full-lineage={full_lineage}, monotone={monotone}/{completed})",
        st.started, st.completed, st.dropped, st.in_flight
    );
    println!(
        "# expectation: 1/64 sampling reconstructs full marker->model lineages \
         with monotone virtual timestamps and exact accounting"
    );

    // The tracer's correctness contract.
    assert!(
        st.started >= 1 && completed >= 1,
        "traced run must complete at least one trace (started={}, completed={completed})",
        st.started
    );
    assert!(
        st.closes(),
        "trace accounting must close: started={} completed={} dropped={} in_flight={}",
        st.started,
        st.completed,
        st.dropped,
        st.in_flight
    );
    assert_eq!(
        monotone, completed,
        "every completed trace must have monotone stage timestamps"
    );
    assert!(
        full_lineage >= 1,
        "at least one delivered trace must carry the full 8-stage lineage \
         (delivered={delivered}, retrains={})",
        stats.retrains
    );

    absorb_db(&db);
    dump_observability("ablation_trace");
}
