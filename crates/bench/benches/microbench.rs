//! Microbenchmarks for the hot paths of the reproduction: marker
//! emission (sampled and unsampled), the generated BPF Collector
//! programs, the verifier, the sampler's per-event decision, B+-tree and
//! hash-index operations, record encode/decode, and SQL execution.
//!
//! Formerly Criterion-based; now a plain self-timed harness (the bench
//! target already had `harness = false`) so the workspace builds with no
//! crates.io access. Each case is warmed up, then timed over enough
//! iterations to smooth scheduler noise; results print as
//! `name: ns/iter` lines, one per case, and the full set is written as
//! machine-readable JSON to `BENCH_2.json` at the repo root (schema
//! documented in README.md).

use std::hint::black_box;
use std::time::Instant;

use noisetap::Value;
use tscout::{CollectionMode, ProbeSet, Subsystem, TScout, TsConfig};
use tscout_bpf::maps::MapDef;
use tscout_bpf::vm::{NullWorld, Vm};
use tscout_bpf::MapRegistry;
use tscout_kernel::{HardwareProfile, Kernel};

/// Collected `(case name, mean ns/iter)` results, in run order.
type Results = Vec<(String, f64)>;

/// Time `f`, print mean ns/iter, and record it. Iteration counts are
/// fixed per case (deterministic run time beats adaptive precision for
/// CI use).
fn bench(out: &mut Results, name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f(); // warm-up
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name}: {ns:.1} ns/iter");
    out.push((name.to_string(), ns));
}

fn marker_triple(out: &mut Results) {
    for (name, rate) in [("sampled", 100u8), ("unsampled", 0u8)] {
        let mut kernel = Kernel::new(HardwareProfile::server_2x20());
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::all());
        cfg.ring_capacity = 1 << 16;
        let mut ts = TScout::deploy(&mut kernel, cfg).unwrap();
        let ou = ts.register_ou("bench_ou", Subsystem::ExecutionEngine, 2);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, rate);
        let task = kernel.create_task();
        ts.register_thread(&mut kernel, task);
        let mut since_drain = 0u32;
        bench(out, &format!("marker_triple/{name}"), 20_000, || {
            ts.ou_begin(&mut kernel, task, ou);
            ts.ou_end(&mut kernel, task, ou);
            ts.ou_features(&mut kernel, task, ou, black_box(&[100, 8]), &[4096]);
            since_drain += 1;
            if since_drain >= 4096 {
                // Keep the ring from growing unboundedly.
                ts.drain_ring(usize::MAX);
                since_drain = 0;
            }
        });
    }
}

fn bpf_vm(out: &mut Results) {
    use tscout::codegen::{encode_ctx, gen_begin, gen_end, ProbeLayout};
    let probes = ProbeLayout {
        cpu: true,
        disk: true,
        net: true,
    };
    let mut maps = MapRegistry::new();
    let depth = maps.create(MapDef::hash("d", 8, 8, 256));
    let begin = maps.create(MapDef::hash("b", 8, probes.snap_words() * 8, 1024));
    let done = maps.create(MapDef::hash("dn", 8, probes.done_words() * 8, 256));
    let _ring = maps.create(MapDef::perf_event_array("r", 1024));
    let b_prog = gen_begin(&probes, depth, begin);
    let e_prog = gen_end(&probes, depth, begin, done);
    let ctx = encode_ctx(1, 42, 0, 0, &[]);
    let mut world = NullWorld::default();

    bench(out, "bpf_begin_end_pair", 20_000, || {
        Vm::run(&b_prog, &ctx, &mut maps, &mut world).unwrap();
        Vm::run(&e_prog, &ctx, &mut maps, &mut world).unwrap();
    });

    bench(out, "bpf_verify_collector", 2_000, || {
        tscout_bpf::verify(black_box(&e_prog), &maps, 296).unwrap();
    });
}

/// Compare bounded-loop vs fully-unrolled Collector codegen: instruction
/// counts, verifier effort, execution time, and a bit-identical sample
/// check. Returns the `BENCH_3.json` document (schema in README.md).
fn codegen_loops(out: &mut Results) -> String {
    use tscout::codegen::{
        encode_ctx, gen_begin_with, gen_end_with, gen_features_with, CodegenOptions, ProbeLayout,
        CTX_BYTES,
    };
    use tscout_bpf::{verify_with_stats, MapId, VerifyStats};

    let probes = ProbeLayout {
        cpu: true,
        disk: true,
        net: true,
    };
    let make_maps = |probes: &ProbeLayout| -> (MapRegistry, MapId, MapId, MapId, MapId) {
        let mut maps = MapRegistry::new();
        let depth = maps.create(MapDef::hash("d", 8, 8, 256));
        let begin = maps.create(MapDef::hash("b", 8, probes.snap_words() * 8, 1024));
        let done = maps.create(MapDef::hash("dn", 8, probes.done_words() * 8, 256));
        let ring = maps.create(MapDef::perf_event_array("r", 1024));
        (maps, depth, begin, done, ring)
    };
    let ctx = encode_ctx(1, 42, 0, 0, &[7, 8, 9]);

    // Generate, verify, and run the pipeline once per mode; capture the
    // raw ring bytes so the modes can be compared bit for bit.
    let mut progsets: Vec<[Vec<tscout_bpf::Insn>; 3]> = Vec::new();
    let mut stats: Vec<[VerifyStats; 3]> = Vec::new();
    let mut rings: Vec<Vec<Vec<u8>>> = Vec::new();
    for unroll_loops in [false, true] {
        let opts = CodegenOptions { unroll_loops };
        let (mut maps, depth, begin, done, ring) = make_maps(&probes);
        let progs = [
            gen_begin_with(&probes, depth, begin, opts),
            gen_end_with(&probes, depth, begin, done, opts),
            gen_features_with(&probes, done, ring, opts),
        ];
        stats.push([0, 1, 2].map(|i| verify_with_stats(&progs[i], &maps, CTX_BYTES).unwrap()));
        let mut world = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        Vm::run(&progs[0], &ctx, &mut maps, &mut world).unwrap();
        world.time_ns = 900;
        Vm::run(&progs[1], &ctx, &mut maps, &mut world).unwrap();
        Vm::run(&progs[2], &ctx, &mut maps, &mut world).unwrap();
        rings.push(maps.ring_drain(ring, 16));
        progsets.push(progs);
    }
    let bit_identical = rings[0] == rings[1];
    assert!(
        bit_identical,
        "loop and unrolled samples must match bit for bit"
    );

    let names = ["begin", "end", "features"];
    for (i, name) in names.iter().enumerate() {
        println!(
            "codegen_{name}: {} insns (bounded loops) vs {} (unrolled)",
            progsets[0][i].len(),
            progsets[1][i].len()
        );
    }

    // Execution and verification cost of each mode (END is the largest
    // program; BEGIN keeps the depth/begin maps balanced between runs).
    for (mode, progs) in [("loops", &progsets[0]), ("unrolled", &progsets[1])] {
        let (mut maps, ..) = make_maps(&probes);
        let mut world = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        bench(out, &format!("bpf_begin_end_pair/{mode}"), 20_000, || {
            Vm::run(&progs[0], &ctx, &mut maps, &mut world).unwrap();
            Vm::run(&progs[1], &ctx, &mut maps, &mut world).unwrap();
        });
        bench(out, &format!("bpf_verify_collector/{mode}"), 2_000, || {
            tscout_bpf::verify(black_box(&progs[1]), &maps, CTX_BYTES).unwrap();
        });
    }

    let mut j = String::from("{\n");
    for (i, name) in names.iter().enumerate() {
        j.push_str(&format!(
            "  \"{name}\": {{\"insns_loops\": {}, \"insns_unrolled\": {}, \
             \"verify_insns_visited_loops\": {}, \"verify_insns_visited_unrolled\": {}, \
             \"verify_states_loops\": {}, \"verify_states_unrolled\": {}, \
             \"verify_states_pruned_loops\": {}, \"verify_peak_depth_loops\": {}}},\n",
            progsets[0][i].len(),
            progsets[1][i].len(),
            stats[0][i].insns_visited,
            stats[1][i].insns_visited,
            stats[0][i].states_explored,
            stats[1][i].states_explored,
            stats[0][i].states_pruned,
            stats[0][i].peak_depth,
        ));
    }
    j.push_str(&format!(
        "  \"samples_bit_identical\": {bit_identical}\n}}\n"
    ));
    j
}

/// Optimized vs unoptimized Collector programs: static and *executed*
/// instruction counts, begin/end-pair and full sampled-triple
/// execution time, and a bit-identical sample check. Returns the
/// `BENCH_8.json` document (schema in README.md).
fn optimizer_wins(out: &mut Results) -> String {
    use tscout::codegen::{encode_ctx, gen_begin, gen_end, gen_features, ProbeLayout, CTX_BYTES};
    use tscout_bpf::opt::{optimize, OptOptions};
    use tscout_bpf::MapId;

    let probes = ProbeLayout {
        cpu: true,
        disk: true,
        net: true,
    };
    let make_maps = |probes: &ProbeLayout| -> (MapRegistry, [MapId; 4]) {
        let mut maps = MapRegistry::new();
        let depth = maps.create(MapDef::hash("d", 8, 8, 256));
        let begin = maps.create(MapDef::hash("b", 8, probes.snap_words() * 8, 1024));
        let done = maps.create(MapDef::hash("dn", 8, probes.done_words() * 8, 256));
        let ring = maps.create(MapDef::perf_event_array("r", 1024));
        (maps, [depth, begin, done, ring])
    };
    let (maps0, [depth, begin, done, ring0]) = make_maps(&probes);
    let plain = [
        gen_begin(&probes, depth, begin),
        gen_end(&probes, depth, begin, done),
        gen_features(&probes, done, ring0),
    ];
    let optimized = [0, 1, 2].map(|i| {
        optimize(&plain[i], &maps0, CTX_BYTES, &OptOptions::default())
            .expect("collector programs optimize")
    });
    let opt_progs = [0, 1, 2].map(|i| optimized[i].insns.clone());

    // One sampled triple per mode, capturing executed insns and bytes.
    let ctx = encode_ctx(1, 42, 0, 0, &[7, 8, 9]);
    let mut executed = [[0u64; 3]; 2];
    let mut rings: Vec<Vec<Vec<u8>>> = Vec::new();
    for (mode, progs) in [(0usize, &plain), (1usize, &opt_progs)] {
        let (mut maps, ids) = make_maps(&probes);
        let mut world = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        for (i, prog) in progs.iter().enumerate() {
            if i == 1 {
                world.time_ns = 900;
            }
            let (r0, s) = Vm::run(prog, &ctx, &mut maps, &mut world).unwrap();
            assert_eq!(r0, 0);
            executed[mode][i] = s.insns;
        }
        rings.push(maps.ring_drain(ids[3], 16));
    }
    let bit_identical = rings[0] == rings[1];
    assert!(bit_identical, "optimized samples must match bit for bit");

    // Wall-clock cost of each mode.
    for (mode, progs) in [("unoptimized", &plain), ("optimized", &opt_progs)] {
        let (mut maps, _) = make_maps(&probes);
        let mut world = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        bench(out, &format!("bpf_begin_end_pair/{mode}"), 20_000, || {
            Vm::run(&progs[0], &ctx, &mut maps, &mut world).unwrap();
            Vm::run(&progs[1], &ctx, &mut maps, &mut world).unwrap();
        });
        bench(out, &format!("bpf_sampled_triple/{mode}"), 20_000, || {
            Vm::run(&progs[0], &ctx, &mut maps, &mut world).unwrap();
            Vm::run(&progs[1], &ctx, &mut maps, &mut world).unwrap();
            Vm::run(&progs[2], &ctx, &mut maps, &mut world).unwrap();
        });
    }

    let names = ["begin", "end", "features"];
    let mut j = String::from("{\n");
    for (i, name) in names.iter().enumerate() {
        let (before, after) = (executed[0][i], executed[1][i]);
        let pct = 100.0 * (before - after) as f64 / before as f64;
        println!(
            "optimizer_{name}: {} -> {} insns static, {before} -> {after} executed ({pct:.1}% fewer)",
            plain[i].len(),
            optimized[i].insns.len(),
        );
        j.push_str(&format!(
            "  \"{name}\": {{\"insns_before\": {}, \"insns_after\": {}, \
             \"executed_before\": {before}, \"executed_after\": {after}, \
             \"executed_reduction_pct\": {pct:.1}, \
             \"loops_unrolled\": {}, \"opt_iterations\": {}}},\n",
            plain[i].len(),
            optimized[i].insns.len(),
            optimized[i].stats.loops_unrolled,
            optimized[i].stats.iterations,
        ));
    }
    let t = |name: &str| {
        out.iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .unwrap_or(0.0)
    };
    j.push_str(&format!(
        "  \"bpf_begin_end_pair_unoptimized_ns\": {:.1},\n  \
         \"bpf_begin_end_pair_optimized_ns\": {:.1},\n  \
         \"bpf_sampled_triple_unoptimized_ns\": {:.1},\n  \
         \"bpf_sampled_triple_optimized_ns\": {:.1},\n  \
         \"samples_bit_identical\": {bit_identical}\n}}\n",
        t("bpf_begin_end_pair/unoptimized"),
        t("bpf_begin_end_pair/optimized"),
        t("bpf_sampled_triple/unoptimized"),
        t("bpf_sampled_triple/optimized"),
    ));
    j
}

fn sampler(out: &mut Results) {
    let mut s = tscout::Sampler::new(1);
    s.set_rate(Subsystem::ExecutionEngine, 10);
    bench(out, "sampler_decide", 200_000, || {
        black_box(s.decide(black_box(3), Subsystem::ExecutionEngine));
    });
}

fn indexes(out: &mut Results) {
    use noisetap::storage::SlotId;
    let mut btree = noisetap::index::BTreeIndex::new();
    let mut hash = noisetap::index::HashIndex::new();
    for i in 0..100_000i64 {
        btree.insert(vec![Value::Int(i)], SlotId(i as u64));
        hash.insert(vec![Value::Int(i)], SlotId(i as u64));
    }
    let key = vec![Value::Int(54_321)];
    bench(out, "btree_point_lookup_100k", 100_000, || {
        black_box(btree.get(black_box(&key)));
    });
    bench(out, "hash_point_lookup_100k", 100_000, || {
        black_box(hash.get(black_box(&key)));
    });
    let lo = vec![Value::Int(50_000)];
    let hi = vec![Value::Int(50_100)];
    bench(out, "btree_range_100", 20_000, || {
        black_box(btree.range(Some(black_box(&lo)), Some(black_box(&hi))));
    });
}

fn records(out: &mut Results) {
    let rec = tscout::RawRecord {
        ou: 3,
        tid: 7,
        subsystem: 0,
        flags: 0,
        start_ns: 123,
        elapsed_ns: 456,
        metrics: vec![1; 15],
        payload: vec![2; 8],
    };
    let bytes = tscout::encode_record(&rec);
    bench(out, "record_encode", 100_000, || {
        black_box(tscout::encode_record(black_box(&rec)));
    });
    bench(out, "record_decode", 100_000, || {
        black_box(tscout::decode_record(black_box(&bytes)).unwrap());
    });
}

fn sql(out: &mut Results) {
    let mut db = noisetap::Database::new(Kernel::new(HardwareProfile::server_2x20()));
    let sid = db.create_session();
    db.execute(sid, "CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)", &[])
        .unwrap();
    for i in 0..10_000 {
        db.execute(
            sid,
            "INSERT INTO t VALUES ($1, $2)",
            &[Value::Int(i), Value::Float(0.0)],
        )
        .unwrap();
    }
    let q = db.prepare("SELECT v FROM t WHERE id = $1").unwrap();
    let mut i = 0i64;
    bench(out, "db_point_query_prepared", 20_000, || {
        i = (i + 1) % 10_000;
        black_box(
            db.execute_prepared(sid, q, black_box(&[Value::Int(i)]))
                .unwrap(),
        );
    });
    bench(out, "sql_parse_plan", 20_000, || {
        black_box(
            noisetap::sql::parser::parse(black_box(
                "SELECT a, count(*) FROM t WHERE id BETWEEN 1 AND 100 GROUP BY a",
            ))
            .unwrap(),
        );
    });
}

/// Archive append/scan throughput against an in-memory `Vec<Sample>`
/// baseline — the cost of durability + columnar compression. Returns the
/// `BENCH_4.json` document (schema in README.md).
fn archive_store(out: &mut Results) -> String {
    use tscout_archive::{Archive, ArchiveOptions, Sample};
    use tscout_telemetry::Telemetry;

    let mk = |i: u64| Sample {
        ou: (i % 8) as u16,
        ou_name: format!("bench_ou_{}", i % 8),
        subsystem: (i % 4) as u8,
        tid: (i % 16) as u32,
        template: (i % 5) as u32,
        start_ns: 5_000_000_000 + i * 2_100,
        elapsed_ns: 4_000 + (i * 37) % 900,
        metrics: vec![i, i * 2, 64],
        features: vec![(i % 64) as f64, 1.5],
        user_metrics: vec![4096],
    };
    const N: u32 = 20_000;

    // Baseline: decoded samples accumulated in memory (what accuracy
    // experiments did before the archive existed).
    let mut v: Vec<Sample> = Vec::new();
    let mut i = 0u64;
    bench(out, "sample_vec_push", N, || {
        v.push(black_box(mk(i)));
        i += 1;
    });
    let vec_push_ns = out.last().unwrap().1;

    let dir = std::env::temp_dir().join(format!("tscout_bench_arch_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut a = Archive::open(&dir, ArchiveOptions::default(), Telemetry::new()).unwrap();
    let mut i = 0u64;
    bench(out, "archive_append", N, || {
        a.append(black_box(mk(i))).unwrap();
        i += 1;
    });
    let append_ns = out.last().unwrap().1;
    a.seal().unwrap();
    let st = a.stats();

    bench(out, "sample_vec_scan", 50, || {
        let mut acc = 0u64;
        for s in &v {
            acc = acc.wrapping_add(black_box(s.elapsed_ns));
        }
        black_box(acc);
    });
    let vec_scan_ns = out.last().unwrap().1 / v.len().max(1) as f64;
    bench(out, "archive_scan", 50, || {
        let mut acc = 0u64;
        for s in a.scan_all() {
            acc = acc.wrapping_add(black_box(s.elapsed_ns));
        }
        black_box(acc);
    });
    let scan_ns = out.last().unwrap().1 / st.samples_stored.max(1) as f64;

    // In-memory footprint of one decoded sample (struct + heap).
    let probe = mk(0);
    let mem_bytes = std::mem::size_of::<Sample>()
        + probe.ou_name.len()
        + 8 * (probe.metrics.len() + probe.user_metrics.len() + probe.features.len());
    let disk_bytes = st.bytes as f64 / st.samples_stored.max(1) as f64;
    println!(
        "archive: {:.1} bytes/sample on disk vs ~{mem_bytes} in memory ({:.1}x)",
        disk_bytes,
        mem_bytes as f64 / disk_bytes.max(1e-9)
    );
    std::fs::remove_dir_all(&dir).ok();
    format!(
        "{{\n  \"samples_stored\": {},\n  \"vec_push_ns_per_sample\": {vec_push_ns:.1},\n  \
         \"archive_append_ns_per_sample\": {append_ns:.1},\n  \
         \"vec_scan_ns_per_sample\": {vec_scan_ns:.1},\n  \
         \"archive_scan_ns_per_sample\": {scan_ns:.1},\n  \
         \"disk_bytes_per_sample\": {disk_bytes:.1},\n  \
         \"memory_bytes_per_sample\": {mem_bytes},\n  \
         \"segments\": {}, \"blocks\": {}\n}}\n",
        st.samples_stored, st.segments, st.blocks,
    )
}

/// Per-sample and per-evaluation cost of the data-quality layer: sketch
/// inserts, the PSI/KS scoring primitives, and a full drift-registry
/// pump cycle. Returns the `BENCH_5.json` document (schema in
/// README.md). These measured costs are what the virtual cost model's
/// `sketch_per_sample_ns` / `drift_eval_per_ou_ns` constants stand for.
fn sketch_drift(out: &mut Results) -> String {
    use tscout_telemetry::{
        DriftRegistry, Sketch, DEFAULT_MIN_LIVE_SAMPLES, DEFAULT_REFERENCE_SAMPLES,
    };

    let mut sk = Sketch::new();
    let mut i = 0u64;
    bench(out, "sketch_insert", 200_000, || {
        sk.insert(black_box(1_000.0 + (i * 7_919 % 997) as f64));
        i += 1;
    });
    let insert_ns = out.last().unwrap().1;

    // The per-channel scoring primitives, on realistically full sketches.
    let mut reference = Sketch::new();
    let mut live = Sketch::new();
    for j in 0..4_096u64 {
        reference.insert(1_000.0 + (j * 7_919 % 997) as f64);
        live.insert(1_150.0 + (j * 104_729 % 997) as f64);
    }
    bench(out, "sketch_psi", 50_000, || {
        black_box(reference.psi(black_box(&live)));
    });
    let psi_ns = out.last().unwrap().1;
    bench(out, "sketch_ks", 50_000, || {
        black_box(reference.ks_distance(black_box(&live)));
    });
    let ks_ns = out.last().unwrap().1;

    // Full drift-registry path with every OU past its reference freeze.
    const OUS: u64 = 16;
    let window = DEFAULT_MIN_LIVE_SAMPLES;
    let mut dr = DriftRegistry::new();
    let names: Vec<String> = (0..OUS).map(|o| format!("bench_ou_{o}")).collect();
    for (o, name) in names.iter().enumerate() {
        for j in 0..DEFAULT_REFERENCE_SAMPLES {
            let v = 1_000.0 + ((j * 7_919 + o as u64) % 997) as f64;
            dr.observe_sample(name, "execution_engine", v, 3.0);
        }
    }
    let mut i = 0u64;
    bench(out, "drift_observe_sample", 100_000, || {
        let name = &names[(i % OUS) as usize];
        dr.observe_sample(
            name,
            "execution_engine",
            black_box(1_000.0 + (i % 997) as f64),
            3.0,
        );
        i += 1;
    });
    let observe_ns = out.last().unwrap().1;
    dr.evaluate(); // drain whatever the warm-up left in the live windows

    // One pump cycle: fill every OU's live window, score them all.
    // `evaluate()` resets the scored windows, so the refill is part of
    // each iteration; its cost is subtracted using the rate above.
    let mut i = 0u64;
    bench(out, "drift_pump_cycle_16ou", 200, || {
        for name in &names {
            for _ in 0..window {
                dr.observe_sample(name, "execution_engine", 1_000.0 + (i % 997) as f64, 3.0);
                i += 1;
            }
        }
        black_box(dr.evaluate());
    });
    let cycle_ns = out.last().unwrap().1;
    let eval_per_ou_ns = ((cycle_ns - observe_ns * (window * OUS) as f64) / OUS as f64).max(0.0);
    println!("drift_eval: {eval_per_ou_ns:.1} ns/OU (refill cost subtracted)");

    format!(
        "{{\n  \"sketch_insert_ns_per_op\": {insert_ns:.1},\n  \
         \"sketch_psi_ns_per_eval\": {psi_ns:.1},\n  \
         \"sketch_ks_ns_per_eval\": {ks_ns:.1},\n  \
         \"drift_observe_sample_ns\": {observe_ns:.1},\n  \
         \"drift_eval_ns_per_ou\": {eval_per_ou_ns:.1},\n  \
         \"ous\": {OUS}, \"live_window\": {window}\n}}\n"
    )
}

/// Lineage-tracer costs: the wall-clock price of one trace record
/// (begin → publish → consume), and the overhead tracing adds to the
/// full marker path (each marker executes the begin/end BPF Collector
/// pair) at the production 1/64 sampling rate. Returns the
/// `BENCH_6.json` document (schema in README.md). The per-record cost
/// is what the virtual cost model's `trace_begin_ns` /
/// `trace_stage_record_ns` constants stand for.
fn trace_lineage(out: &mut Results) -> String {
    use tscout_telemetry::Telemetry;

    // Raw per-trace record cycle through the registry handle: sampling
    // decision + marker stage, ring-depth stamp, terminal consume.
    let t = Telemetry::new();
    t.trace_set_every(1);
    let mut tid = 0u64;
    bench(out, "trace_record_cycle", 100_000, || {
        let id = t.trace_begin(1, 0, tid, 100.0).unwrap();
        t.trace_publish(id, 200.0, 4);
        t.trace_consume(1, tid, 300.0, 350.0, 400.0, 4, true);
        tid += 1;
    });
    let record_ns = out.last().unwrap().1;

    // The marker hot path (runs the begin/end Collector programs in the
    // BPF VM), untraced vs traced at 1/64 — the production setting. The
    // two arms are timed in alternating rounds and compared min-of-k:
    // run-to-run scheduler noise on this ~10µs path dwarfs the tracer's
    // tens of ns, and the minimum is the robust estimator of the true
    // cost (outliers are only ever additive).
    let time_pair = |trace_every: u64| -> f64 {
        let mut kernel = Kernel::new(HardwareProfile::server_2x20());
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::all());
        cfg.ring_capacity = 1 << 16;
        cfg.trace_every = trace_every;
        let mut ts = TScout::deploy(&mut kernel, cfg).unwrap();
        let ou = ts.register_ou("bench_ou", Subsystem::ExecutionEngine, 2);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
        let task = kernel.create_task();
        ts.register_thread(&mut kernel, task);
        let mut one = |iters: u32| {
            for _ in 0..iters {
                ts.ou_begin(&mut kernel, task, ou);
                ts.ou_end(&mut kernel, task, ou);
                ts.ou_features(&mut kernel, task, ou, black_box(&[100, 8]), &[4096]);
            }
            ts.drain_ring(usize::MAX);
        };
        one(2_000); // warm-up
        const ITERS: u32 = 8_000;
        let start = Instant::now();
        one(ITERS);
        start.elapsed().as_nanos() as f64 / ITERS as f64
    };
    let (mut untraced_ns, mut traced_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        untraced_ns = untraced_ns.min(time_pair(0));
        traced_ns = traced_ns.min(time_pair(64));
    }
    println!("bpf_begin_end_pair/untraced: {untraced_ns:.1} ns/iter (min of 7)");
    println!("bpf_begin_end_pair/traced_64: {traced_ns:.1} ns/iter (min of 7)");
    out.push(("bpf_begin_end_pair/untraced".to_string(), untraced_ns));
    out.push(("bpf_begin_end_pair/traced_64".to_string(), traced_ns));
    let overhead_pct = (traced_ns - untraced_ns) / untraced_ns * 100.0;
    println!("trace overhead at 1/64 on the marker path: {overhead_pct:.2}%");

    format!(
        "{{\n  \"trace_record_cycle_ns\": {record_ns:.1},\n  \
         \"bpf_begin_end_pair_untraced_ns\": {untraced_ns:.1},\n  \
         \"bpf_begin_end_pair_traced_64_ns\": {traced_ns:.1},\n  \
         \"traced_overhead_pct\": {overhead_pct:.2},\n  \
         \"trace_every\": 64\n}}\n"
    )
}

/// Query-observability costs: statement fingerprinting, one
/// `ts_stat_statements` record, and the overhead statement stats add to
/// the prepared point-query hot path. Returns the `BENCH_7.json`
/// document (schema in README.md). The per-call costs are what the
/// virtual cost model's `stmt_fingerprint_ns` / `stmt_record_ns`
/// constants stand for; the end-to-end overhead target is <2%.
fn query_stats(out: &mut Results) -> String {
    use tscout_telemetry::Telemetry;

    let stmt = noisetap::sql::parser::parse(
        "SELECT a, count(*) FROM t WHERE id BETWEEN 1 AND 100 AND v > 3.5 GROUP BY a",
    )
    .unwrap();
    bench(out, "stmt_fingerprint", 100_000, || {
        black_box(noisetap::sql::fingerprint::fingerprint(black_box(&stmt)));
    });
    let fingerprint_ns = out.last().unwrap().1;

    let t = Telemetry::new();
    let fps: Vec<String> = (0..64).map(|i| format!("select v from t{i}")).collect();
    let mut i = 0u64;
    bench(out, "stmt_record", 100_000, || {
        let fp = &fps[(i % 64) as usize];
        t.stmt_record(
            black_box(fp),
            5_000.0 + (i % 97) as f64,
            1,
            &[("idx_lookup", 3_000.0), ("output", 500.0)],
            Some(4_800.0),
        );
        i += 1;
    });
    let record_ns = out.last().unwrap().1;

    // End-to-end: the prepared point-query path with statement stats on
    // vs off. The two arms are timed in alternating rounds and compared
    // min-of-k — run-to-run scheduler noise on this ~µs path dwarfs the
    // fingerprint clone + record, and the minimum is the robust
    // estimator (outliers are only ever additive).
    let time_point_query = |stats_on: bool| -> f64 {
        let mut db = noisetap::Database::new(Kernel::new(HardwareProfile::server_2x20()));
        db.stmt_stats_enabled = stats_on;
        let sid = db.create_session();
        db.execute(sid, "CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)", &[])
            .unwrap();
        for i in 0..10_000 {
            db.execute(
                sid,
                "INSERT INTO t VALUES ($1, $2)",
                &[Value::Int(i), Value::Float(0.0)],
            )
            .unwrap();
        }
        let q = db.prepare("SELECT v FROM t WHERE id = $1").unwrap();
        let mut one = |iters: u32| {
            for i in 0..iters as i64 {
                black_box(
                    db.execute_prepared(sid, q, black_box(&[Value::Int(i % 10_000)]))
                        .unwrap(),
                );
            }
        };
        one(2_000); // warm-up
        const ITERS: u32 = 8_000;
        let start = Instant::now();
        one(ITERS);
        start.elapsed().as_nanos() as f64 / ITERS as f64
    };
    let (mut off_ns, mut on_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        off_ns = off_ns.min(time_point_query(false));
        on_ns = on_ns.min(time_point_query(true));
    }
    println!("db_point_query_prepared/stats_off: {off_ns:.1} ns/iter (min of 7)");
    println!("db_point_query_prepared/stats_on: {on_ns:.1} ns/iter (min of 7)");
    out.push(("db_point_query_prepared/stats_off".to_string(), off_ns));
    out.push(("db_point_query_prepared/stats_on".to_string(), on_ns));
    let overhead_pct = (on_ns - off_ns) / off_ns * 100.0;
    println!("statement-stats overhead on the point-query path: {overhead_pct:.2}% (worst case: bare ~1us statement, nothing to amortize against)");

    // Representative measure: host time to drive a *collected* YCSB run
    // (TScout attached, WAL, pumping — the pipeline a deployment
    // actually runs) for a fixed virtual duration, stats on vs off.
    // This is the denominator PR 6's tracer target used: overhead
    // relative to the full collection path, not a bare statement.
    let time_ycsb = |stats_on: bool| -> f64 {
        use tscout_workloads::driver::{run, RunOptions};
        use tscout_workloads::{Workload, Ycsb};
        let mut db = tscout_bench::new_db(HardwareProfile::server_2x20(), 0x7E57);
        db.stmt_stats_enabled = stats_on;
        let mut w = Ycsb::new(2_000);
        w.setup(&mut db);
        tscout_bench::attach_collect(&mut db);
        let start = Instant::now();
        black_box(run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 2,
                duration_ns: 60e6,
                seed: 0x7E57,
                ..Default::default()
            },
        ));
        start.elapsed().as_nanos() as f64
    };
    let (mut e2e_off, mut e2e_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        e2e_off = e2e_off.min(time_ycsb(false));
        e2e_on = e2e_on.min(time_ycsb(true));
    }
    let e2e_overhead_pct = (e2e_on - e2e_off) / e2e_off * 100.0;
    println!(
        "ycsb_collected_run/stats_off: {:.2} ms (min of 5)",
        e2e_off / 1e6
    );
    println!(
        "ycsb_collected_run/stats_on: {:.2} ms (min of 5)",
        e2e_on / 1e6
    );
    println!(
        "statement-stats overhead on the collected YCSB pipeline: {e2e_overhead_pct:.2}% (target <2%)"
    );

    format!(
        "{{\n  \"stmt_fingerprint_ns\": {fingerprint_ns:.1},\n  \
         \"stmt_record_ns\": {record_ns:.1},\n  \
         \"point_query_stats_off_ns\": {off_ns:.1},\n  \
         \"point_query_stats_on_ns\": {on_ns:.1},\n  \
         \"point_query_overhead_pct\": {overhead_pct:.2},\n  \
         \"ycsb_run_stats_off_ms\": {:.2},\n  \
         \"ycsb_run_stats_on_ms\": {:.2},\n  \
         \"ycsb_run_overhead_pct\": {e2e_overhead_pct:.2},\n  \
         \"overhead_target_pct\": 2.0\n}}\n",
        e2e_off / 1e6,
        e2e_on / 1e6,
    )
}

/// Action-engine costs: one full policy-evaluation tick (all five
/// policies over a quiet system), closing one follow-up, and the
/// end-to-end virtual-clock overhead the engine adds to a collected
/// run. Returns the `BENCH_9.json` document (schema in README.md). The
/// per-tick costs are what the virtual cost model's `action_plan_ns` /
/// `action_followup_ns` constants stand for.
fn action_engine(out: &mut Results) -> String {
    use tscout_actions::{ActionConfig, ActionEngine, DbmsActuator, PlannerInputs, POLICY_COUNT};
    use tscout_telemetry::Telemetry;

    #[derive(Debug, Default)]
    struct NullActuator;
    impl DbmsActuator for NullActuator {
        fn set_sampling_rate(&mut self, _subsystem: &str, _rate: u8) {}
        fn trigger_retrain(&mut self) {}
        fn schedule_compaction(&mut self) {}
        fn hold_compaction(&mut self, _hold: bool) {}
        fn set_pipeline_mode(&mut self, _fused: bool) {}
    }

    // Pure policy evaluation: a healthy, in-budget system where no
    // policy fires — every tick walks all five policies and plans
    // nothing.
    let t = Telemetry::new();
    let mut engine = ActionEngine::new(ActionConfig::default(), t.clone());
    let mut act = NullActuator;
    let mut now = 0.0f64;
    bench(out, "action_policy_eval_tick", 50_000, || {
        now += 2e6;
        let inputs = PlannerInputs {
            now_ns: now,
            overhead_ratio: Some(0.01),
            ..Default::default()
        };
        black_box(engine.tick(black_box(&inputs), &mut act));
    });
    let eval_tick_ns = out.last().unwrap().1;
    let eval_policy_ns = eval_tick_ns / POLICY_COUNT as f64;

    // Follow-up close: drift pinned CRITICAL with a zero observation
    // window and no rate limit, so every tick closes the previous
    // retrain's follow-up and plans the next one. The close cost is the
    // difference against the eval-only tick.
    let t = Telemetry::new();
    t.gauge_set("ts_health_state", &[("subsystem", "data")], 2.0);
    let cfg = ActionConfig {
        observation_window_ns: 0.0,
        min_interval_ns: 0.0,
        hysteresis_ns: 0.0,
        ..Default::default()
    };
    let mut engine = ActionEngine::new(cfg, t.clone());
    let mut now = 0.0f64;
    bench(out, "action_plan_plus_followup_tick", 20_000, || {
        now += 2e6;
        let inputs = PlannerInputs {
            now_ns: now,
            overhead_ratio: Some(0.01),
            ..Default::default()
        };
        black_box(engine.tick(black_box(&inputs), &mut act));
    });
    let followup_tick_ns = out.last().unwrap().1;
    let followup_ns = (followup_tick_ns - eval_tick_ns).max(0.0);
    println!("action_followup_record: {followup_ns:.1} ns (plan+close tick minus eval-only tick)");

    // End-to-end virtual-clock overhead of the engine on a collected
    // run: the driver charges `action_plan_ns` per policy per pump tick
    // plus `action_followup_ns` per closed follow-up, all on the
    // Processor's task. Overhead is that total against the run's
    // virtual duration — the number the `tscout_overhead_ratio` budget
    // policy itself watches.
    use tscout_archive::ArchiveOptions;
    use tscout_models::ModelKind;
    use tscout_workloads::driver::{run_with_lifecycle, ModelLifecycle, RunOptions};
    use tscout_workloads::{Workload, Ycsb};
    const DURATION_NS: f64 = 60e6;
    let dir = std::env::temp_dir().join(format!("tscout_bench_act_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut db = tscout_bench::new_db(HardwareProfile::server_2x20(), 0x9AC7);
    db.stmt_stats_enabled = false;
    let mut w = Ycsb::new(2_000);
    w.setup(&mut db);
    tscout_bench::attach_collect(&mut db);
    let mut lc = ModelLifecycle::new(
        &dir,
        ArchiveOptions::default(),
        ModelKind::Ridge,
        7,
        30e6,
        db.kernel.telemetry.clone(),
    )
    .unwrap();
    lc = lc.with_actions(ActionEngine::new(
        ActionConfig::default(),
        db.kernel.telemetry.clone(),
    ));
    let opts = RunOptions {
        terminals: 2,
        duration_ns: DURATION_NS,
        seed: 0x9AC7,
        ..Default::default()
    };
    run_with_lifecycle(&mut db, &mut w, &opts, &mut lc);
    std::fs::remove_dir_all(&dir).ok();
    let ticks = (DURATION_NS / opts.pump_every_ns).floor();
    let observed = db
        .kernel
        .telemetry
        .counter_total("tscout_action_observed_total");
    let cost = &db.kernel.cost;
    let charged_ns = ticks * POLICY_COUNT as f64 * cost.action_plan_ns
        + observed as f64 * cost.action_followup_ns;
    let overhead_pct = charged_ns / DURATION_NS * 100.0;
    println!(
        "action engine end-to-end: {ticks} ticks, {observed} follow-ups, \
         {charged_ns:.0} ns charged = {overhead_pct:.3}% of the run (budget 1%)"
    );
    assert!(
        overhead_pct < 1.0,
        "action engine overhead {overhead_pct:.3}% breaches the 1% budget"
    );

    format!(
        "{{\n  \"action_policy_eval_tick_ns\": {eval_tick_ns:.1},\n  \
         \"action_policy_eval_ns_per_policy\": {eval_policy_ns:.1},\n  \
         \"action_plan_plus_followup_tick_ns\": {followup_tick_ns:.1},\n  \
         \"action_followup_record_ns\": {followup_ns:.1},\n  \
         \"policies\": {POLICY_COUNT},\n  \
         \"e2e_ticks\": {ticks},\n  \"e2e_followups\": {observed},\n  \
         \"e2e_charged_ns\": {charged_ns:.0},\n  \
         \"e2e_overhead_pct\": {overhead_pct:.3},\n  \
         \"overhead_budget_pct\": 1.0\n}}\n"
    )
}

/// Operator-plane costs: per-request wall-clock latency against a
/// populated registry for each endpoint class, plus the cost of a
/// collected YCSB run with the daemon off versus on-and-scraped at
/// 10 Hz. Returns the `BENCH_10.json` document (schema in README.md).
/// The load-bearing number is the *virtual* overhead: the daemon never
/// touches a virtual clock, so the on/off virtual timelines (and the
/// collected sample counts) must be identical; the wall-clock delta is
/// reported for operators sizing scrape intervals.
fn obsd_plane(out: &mut Results) -> String {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tscout_archive::ArchiveOptions;
    use tscout_models::ModelKind;
    use tscout_obsd::{client, ObsdConfig, ObsdServer};
    use tscout_telemetry::Telemetry;
    use tscout_workloads::driver::{run_with_lifecycle, ModelLifecycle, RunOptions};
    use tscout_workloads::{Workload, Ycsb};

    // Per-request latency: a standing server over a registry populated
    // with a realistic family/label spread, timed from the client side
    // (connect + request + full response).
    let t = Telemetry::new();
    for i in 0..64 {
        let ou = format!("bench_ou_{i}");
        t.counter_add(
            "tscout_samples_delivered_total",
            &[("subsystem", "ee"), ("ou", &ou)],
            1_000 + i,
        );
        for v in [1e3, 5e3, 2e4, 1e6] {
            t.hist_record(
                "workload_txn_ns",
                &[("outcome", "committed")],
                v * (i + 1) as f64,
            );
        }
    }
    let srv = ObsdServer::start(ObsdConfig::default(), t).expect("bench server");
    let addr = srv.addr().to_string();
    bench(out, "obsd_get_metrics", 2_000, || {
        black_box(client::get(&addr, "/metrics").unwrap());
    });
    let metrics_ns = out.last().unwrap().1;
    bench(out, "obsd_get_table_json", 2_000, || {
        black_box(client::get(&addr, "/api/v1/ou").unwrap());
    });
    let table_ns = out.last().unwrap().1;
    bench(out, "obsd_post_sql", 1_000, || {
        black_box(
            client::post(
                &addr,
                "/api/v1/sql",
                "SELECT count(*) FROM ts_stat_subsystem",
            )
            .unwrap(),
        );
    });
    let sql_ns = out.last().unwrap().1;
    srv.shutdown();

    // On/off delta on a collected run. Same seed both arms; the on arm
    // adds a 10 Hz scraper for the duration of the run.
    const DURATION_NS: f64 = 60e6;
    let run_arm = |server: bool| -> (f64, u64, u64) {
        let dir =
            std::env::temp_dir().join(format!("tscout_bench_obsd_{}_{server}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut db = tscout_bench::new_db(HardwareProfile::server_2x20(), 0x0B5D);
        db.stmt_stats_enabled = false;
        let mut w = Ycsb::new(2_000);
        w.setup(&mut db);
        tscout_bench::attach_collect(&mut db);
        let mut lc = ModelLifecycle::new(
            &dir,
            ArchiveOptions::default(),
            ModelKind::Ridge,
            7,
            30e6,
            db.kernel.telemetry.clone(),
        )
        .unwrap();
        let opts = RunOptions {
            terminals: 2,
            duration_ns: DURATION_NS,
            seed: 0x0B5D,
            ..Default::default()
        };
        let guard = server.then(|| {
            ObsdServer::start(ObsdConfig::default(), db.kernel.telemetry.clone()).unwrap()
        });
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = guard.as_ref().map(|srv| {
            let addr = srv.addr().to_string();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    if client::get(&addr, "/metrics").is_ok() {
                        scrapes += 1;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                scrapes
            })
        });
        let wall = Instant::now();
        run_with_lifecycle(&mut db, &mut w, &opts, &mut lc);
        let wall_ns = wall.elapsed().as_nanos() as f64;
        stop.store(true, Ordering::SeqCst);
        let scrapes = scraper.map_or(0, |h| h.join().unwrap());
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
        let delivered = db
            .kernel
            .telemetry
            .counter_total("tscout_samples_delivered_total");
        (wall_ns, delivered, scrapes)
    };
    let (wall_off, delivered_off, _) = run_arm(false);
    let (wall_on, delivered_on, scrapes) = run_arm(true);
    assert!(scrapes > 0, "the 10 Hz scraper never landed a scrape");
    assert_eq!(
        delivered_off, delivered_on,
        "virtual overhead must be zero: the scraped run collected differently"
    );
    let wall_delta_pct = (wall_on - wall_off) / wall_off * 100.0;
    println!(
        "obsd on/off: {scrapes} scrapes at 10 Hz, {delivered_on} samples both arms \
         (virtual overhead 0), wall delta {wall_delta_pct:+.2}%"
    );

    format!(
        "{{\n  \"obsd_get_metrics_ns\": {metrics_ns:.1},\n  \
         \"obsd_get_table_json_ns\": {table_ns:.1},\n  \
         \"obsd_post_sql_ns\": {sql_ns:.1},\n  \
         \"scrapes_at_10hz\": {scrapes},\n  \
         \"delivered_samples_off\": {delivered_off},\n  \
         \"delivered_samples_on\": {delivered_on},\n  \
         \"virtual_overhead_pct\": 0.0,\n  \
         \"wall_delta_pct\": {wall_delta_pct:.2}\n}}\n"
    )
}

/// Render the results as the `BENCH_2.json` document:
/// `{"<case>": {"ns_per_op": N, "samples_per_sec": N}, ...}`.
fn to_json(results: &Results) -> String {
    let mut s = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let per_sec = if *ns > 0.0 { 1e9 / ns } else { 0.0 };
        s.push_str(&format!(
            "  \"{name}\": {{\"ns_per_op\": {ns:.1}, \"samples_per_sec\": {per_sec:.1}}}"
        ));
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("}\n");
    s
}

fn main() {
    let mut out = Results::new();
    marker_triple(&mut out);
    bpf_vm(&mut out);
    let bench3 = codegen_loops(&mut out);
    let bench8 = optimizer_wins(&mut out);
    sampler(&mut out);
    indexes(&mut out);
    records(&mut out);
    sql(&mut out);
    let bench4 = archive_store(&mut out);
    let bench5 = sketch_drift(&mut out);
    let bench6 = trace_lineage(&mut out);
    let bench7 = query_stats(&mut out);
    let bench9 = action_engine(&mut out);
    let bench10 = obsd_plane(&mut out);
    // Machine-readable results at the repo root (next to Cargo.lock).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json");
    std::fs::write(path, to_json(&out)).expect("cannot write BENCH_2.json");
    println!("bench results -> {path}");
    let path3 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
    std::fs::write(path3, bench3).expect("cannot write BENCH_3.json");
    println!("codegen loop-vs-unroll results -> {path3}");
    let path4 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json");
    std::fs::write(path4, bench4).expect("cannot write BENCH_4.json");
    println!("archive append/scan results -> {path4}");
    let path5 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    std::fs::write(path5, bench5).expect("cannot write BENCH_5.json");
    println!("sketch/drift cost results -> {path5}");
    let path6 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    std::fs::write(path6, bench6).expect("cannot write BENCH_6.json");
    println!("trace cost results -> {path6}");
    let path7 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path7, bench7).expect("cannot write BENCH_7.json");
    println!("query-stats cost results -> {path7}");
    let path8 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path8, bench8).expect("cannot write BENCH_8.json");
    println!("optimizer win results -> {path8}");
    let path9 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path9, bench9).expect("cannot write BENCH_9.json");
    println!("action-engine cost results -> {path9}");
    let path10 = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    std::fs::write(path10, bench10).expect("cannot write BENCH_10.json");
    println!("operator-plane cost results -> {path10}");
}
