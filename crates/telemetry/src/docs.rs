//! The metric dictionary: every counter / gauge / histogram the
//! workspace exports, with a one-line meaning.
//!
//! This table is the single source of truth for metric documentation.
//! The `metrics_doc` bench binary renders it into README.md (between
//! `<!-- METRICS -->` markers) and, in `--check` mode, cross-checks it
//! against the names an end-to-end run actually registers — so the
//! README can be neither missing a live metric nor carrying a stale
//! one. CI runs the check.

/// `(name, kind, meaning)` for every exported metric. Kind is
/// `counter`, `gauge`, or `histogram`. Keep sorted by name.
pub const METRIC_DOCS: &[(&str, &str, &str)] = &[
    (
        "alerts_fired_total",
        "counter",
        "Upward health transitions (per rule and subsystem) — the alert firehose",
    ),
    (
        "alerts_recovered_total",
        "counter",
        "Downward health transitions (hysteresis clears) per rule and subsystem",
    ),
    (
        "archive_append_errors_total",
        "counter",
        "Samples the archive sink failed to append",
    ),
    (
        "archive_buffered_samples",
        "gauge",
        "Decoded samples in unflushed archive memtables",
    ),
    (
        "archive_bytes_written_total",
        "counter",
        "Bytes persisted to archive segment files",
    ),
    (
        "archive_flush_ns",
        "histogram",
        "Virtual duration of archive memtable flushes",
    ),
    (
        "archive_ou_blocks_total",
        "counter",
        "Column blocks flushed to segment files, per OU",
    ),
    (
        "archive_ou_bytes_written_total",
        "counter",
        "Bytes persisted to segment files, per OU",
    ),
    (
        "archive_ou_samples_appended_total",
        "counter",
        "Samples appended to the training-data archive, per OU",
    ),
    (
        "archive_ou_samples_retired_total",
        "counter",
        "Samples dropped by compaction's retention policy, per OU",
    ),
    (
        "archive_recovered_truncations_total",
        "counter",
        "Torn segment tails truncated during crash recovery",
    ),
    (
        "archive_samples_appended_total",
        "counter",
        "Samples appended to the training-data archive",
    ),
    (
        "archive_samples_retired_total",
        "counter",
        "Samples dropped by compaction's retention policy",
    ),
    (
        "archive_scan_skipped_blocks_total",
        "counter",
        "Column blocks skipped by scan predicate pushdown",
    ),
    (
        "archive_segments",
        "gauge",
        "Archive segment files currently on disk",
    ),
    (
        "archive_segments_compacted_total",
        "counter",
        "Segments rewritten by compaction",
    ),
    (
        "archive_segments_sealed_total",
        "counter",
        "Segments sealed (made immutable)",
    ),
    (
        "db_client_request_ns",
        "histogram",
        "End-to-end virtual latency of client requests",
    ),
    (
        "db_client_requests_total",
        "counter",
        "Client requests executed by the engine",
    ),
    (
        "db_explain_analyze_total",
        "counter",
        "EXPLAIN ANALYZE statements executed",
    ),
    (
        "db_gc_pruned_total",
        "counter",
        "Row versions pruned by garbage collection",
    ),
    (
        "db_gc_sweeps_total",
        "counter",
        "Garbage-collection sweeps run",
    ),
    (
        "db_pipeline_fanout",
        "histogram",
        "OUs fused into each executed pipeline",
    ),
    (
        "db_pipeline_ous_total",
        "counter",
        "OUs executed inside fused pipelines",
    ),
    ("db_pipelines_total", "counter", "Fused pipelines executed"),
    (
        "db_stmt_evicted_total",
        "counter",
        "Statement-stats fingerprints evicted by the LRU cap",
    ),
    (
        "db_stmt_fingerprints",
        "gauge",
        "Distinct statement fingerprints currently tracked",
    ),
    (
        "db_stmt_recorded_total",
        "counter",
        "Statements folded into the statement-stats registry",
    ),
    ("db_txn_aborts_total", "counter", "Transactions aborted"),
    ("db_txn_commits_total", "counter", "Transactions committed"),
    (
        "db_txn_writes_total",
        "counter",
        "Row writes performed by transactions",
    ),
    (
        "db_virtual_scans_total",
        "counter",
        "Scans over the ts_stat_* virtual system tables, per table",
    ),
    (
        "db_wal_batch_records",
        "histogram",
        "Records per WAL group-commit batch",
    ),
    (
        "db_wal_flush_ns",
        "histogram",
        "Virtual duration of WAL flushes",
    ),
    (
        "db_wal_flushed_records_total",
        "counter",
        "WAL records flushed to the (virtual) log device",
    ),
    (
        "db_wal_flushes_total",
        "counter",
        "WAL group-commit flushes",
    ),
    (
        "kernel_context_switches_total",
        "counter",
        "Context switches charged by the virtual kernel, split by PMU save/restore",
    ),
    (
        "kernel_mode_switches_total",
        "counter",
        "User/kernel mode switches charged by the virtual kernel",
    ),
    (
        "kernel_syscalls_total",
        "counter",
        "Syscalls charged by the virtual kernel",
    ),
    (
        "kernel_tracepoint_hits_total",
        "counter",
        "Kernel tracepoint activations (Collector attach points)",
    ),
    (
        "kernel_wal_bytes_total",
        "counter",
        "Bytes written through the virtual WAL device",
    ),
    (
        "kernel_wal_write_ns",
        "histogram",
        "Virtual duration of WAL device writes",
    ),
    (
        "model_generation",
        "gauge",
        "Generation of the live behavior-model set (bumps on accepted swap)",
    ),
    (
        "model_holdout_mape_pct",
        "gauge",
        "Holdout MAPE of the live model set at install time, percent",
    ),
    (
        "model_swap_accepted_total",
        "counter",
        "Model hot-swaps accepted by the accuracy gate",
    ),
    (
        "model_swap_rejected_total",
        "counter",
        "Model hot-swaps rejected by the accuracy gate",
    ),
    (
        "model_trained_points",
        "gauge",
        "Training points the live model set was fit on",
    ),
    (
        "processor_buffered_samples",
        "gauge",
        "Decoded samples buffered in the Processor's sink",
    ),
    (
        "processor_deagg_fanout",
        "histogram",
        "Training points produced per ring record (fused de-aggregation)",
    ),
    (
        "processor_decode_errors_total",
        "counter",
        "Ring records that failed to decode",
    ),
    (
        "processor_drain_ns",
        "histogram",
        "Virtual duration of full ring drains",
    ),
    (
        "processor_points_total",
        "counter",
        "Training points produced by the Processor",
    ),
    (
        "processor_poll_ns",
        "histogram",
        "Virtual duration of Processor poll slices",
    ),
    (
        "processor_rate_reductions_total",
        "counter",
        "Times the loss-feedback hook recommended halving the sampling rate",
    ),
    (
        "processor_records_total",
        "counter",
        "Ring records the Processor consumed",
    ),
    (
        "telemetry_spans_dropped_total",
        "counter",
        "Spans evicted from the span ring (never silent)",
    ),
    (
        "ts_drift_evaluations_total",
        "counter",
        "Drift-detector evaluation passes over the per-OU windows",
    ),
    (
        "ts_drift_ks",
        "gauge",
        "KS distance between an OU channel's live window and its frozen reference",
    ),
    (
        "ts_drift_psi",
        "gauge",
        "PSI between an OU channel's live window and its frozen reference",
    ),
    (
        "ts_drift_rebaselines_total",
        "counter",
        "Drift-reference rebaselines after an actuated retrain (references re-learn)",
    ),
    (
        "ts_drift_score",
        "gauge",
        "Per-OU headline drift score: worst PSI across target/feature channels",
    ),
    (
        "ts_flightrec_bundles_total",
        "counter",
        "Flight-recorder evidence bundles written on CRITICAL transitions",
    ),
    (
        "ts_health_state",
        "gauge",
        "Per-subsystem health: 0=OK, 1=DEGRADED, 2=CRITICAL",
    ),
    (
        "ts_residual_mape_pct",
        "gauge",
        "Live-model residual MAPE per OU over the last window, percent",
    ),
    (
        "tscout_action_actuated_total",
        "counter",
        "Actions the engine actually actuated (excludes dry-run), per kind",
    ),
    (
        "tscout_action_efficacy_err_pct",
        "gauge",
        "Last observed predicted-vs-observed error of an action's follow-up, per kind",
    ),
    (
        "tscout_action_log_dropped_total",
        "counter",
        "Action records evicted from the bounded action log (never silent)",
    ),
    (
        "tscout_action_observed_total",
        "counter",
        "Action follow-ups that closed with an observed outcome, per kind",
    ),
    (
        "tscout_action_pending",
        "gauge",
        "Actions awaiting their follow-up observation window",
    ),
    (
        "tscout_action_planned_total",
        "counter",
        "Actions the engine planned (dry-run included), per kind",
    ),
    (
        "tscout_action_regressed_total",
        "counter",
        "Actions whose observed outcome moved the target metric the wrong way, per kind",
    ),
    (
        "tscout_action_suppressed_total",
        "counter",
        "Actions a guardrail suppressed before actuation, per reason",
    ),
    (
        "tscout_bpf_insns_executed",
        "gauge",
        "BPF instructions executed by the Collector's VM (cumulative)",
    ),
    (
        "tscout_map_deletes",
        "gauge",
        "BPF map delete operations (per map)",
    ),
    (
        "tscout_map_lookups",
        "gauge",
        "BPF map lookup operations (per map)",
    ),
    (
        "tscout_map_stack_pops",
        "gauge",
        "BPF map-of-stacks pop operations (per map)",
    ),
    (
        "tscout_map_stack_pushes",
        "gauge",
        "BPF map-of-stacks push operations (per map)",
    ),
    (
        "tscout_map_updates",
        "gauge",
        "BPF map update operations (per map)",
    ),
    (
        "tscout_marker_events_total",
        "counter",
        "Marker invocations (begin/end/features) per subsystem",
    ),
    (
        "tscout_obsd_errors_total",
        "counter",
        "Operator-plane HTTP responses with status ≥ 400, per endpoint (server-side registry)",
    ),
    (
        "tscout_obsd_rejected_total",
        "counter",
        "Operator-plane connections turned away at the concurrency bound (503, never queued)",
    ),
    (
        "tscout_obsd_request_ns",
        "histogram",
        "Operator-plane request service time, wall-clock ns (server-side, never a virtual clock)",
    ),
    (
        "tscout_obsd_requests_total",
        "counter",
        "Operator-plane HTTP requests served, per endpoint (server-side registry)",
    ),
    (
        "tscout_opt_fallbacks_total",
        "gauge",
        "Loads where the optimizer errored and the verified original ran instead",
    ),
    (
        "tscout_opt_insns_after",
        "gauge",
        "Collector program instructions after load-time optimization (sum)",
    ),
    (
        "tscout_opt_insns_before",
        "gauge",
        "Collector program instructions before load-time optimization (sum)",
    ),
    (
        "tscout_opt_insns_removed_total",
        "gauge",
        "Instructions removed by the load-time optimizer, per pass",
    ),
    (
        "tscout_opt_insns_rewritten_total",
        "gauge",
        "Instructions rewritten in place by the load-time optimizer, per pass",
    ),
    (
        "tscout_opt_iterations",
        "gauge",
        "Optimizer fixed-point pipeline iterations across all loads",
    ),
    (
        "tscout_opt_loops_unrolled",
        "gauge",
        "Bounded loops structurally unrolled at load time",
    ),
    (
        "tscout_ou_samples_begun_total",
        "counter",
        "OU collections begun, per OU — the loss-accounting numerator",
    ),
    (
        "tscout_ou_samples_delivered_total",
        "counter",
        "OU samples that survived to the Processor, per OU",
    ),
    (
        "tscout_ou_samples_lost_total",
        "counter",
        "OU samples lost (ring overwrite, backlog, reset), per OU and cause",
    ),
    (
        "tscout_overhead_ratio",
        "gauge",
        "Profiler-attributed tscout/dbms virtual-time ratio (the action engine's budget signal)",
    ),
    (
        "tscout_ring_bytes",
        "gauge",
        "Bytes currently occupying the perf ring buffer",
    ),
    (
        "tscout_ring_capacity",
        "gauge",
        "Configured perf ring buffer capacity, records",
    ),
    (
        "tscout_ring_drained",
        "gauge",
        "Records drained from the ring (cumulative, mirrored as a gauge)",
    ),
    (
        "tscout_ring_dropped",
        "gauge",
        "Records overwritten in the ring (cumulative, mirrored as a gauge)",
    ),
    (
        "tscout_ring_occupancy_hwm",
        "gauge",
        "High-water mark of ring occupancy, records",
    ),
    (
        "tscout_ring_produced",
        "gauge",
        "Records produced into the ring (cumulative, mirrored as a gauge)",
    ),
    (
        "tscout_ring_pushes",
        "gauge",
        "Push operations on the ring (cumulative, mirrored as a gauge)",
    ),
    (
        "tscout_samples_begun_total",
        "counter",
        "Samples begun, per subsystem — the loss-accounting numerator",
    ),
    (
        "tscout_samples_delivered_total",
        "counter",
        "Samples delivered ring→Processor, per subsystem",
    ),
    (
        "tscout_sampling_rate",
        "gauge",
        "Current per-subsystem sampling rate (0-255)",
    ),
    (
        "tscout_sampling_rate_changes_total",
        "counter",
        "Runtime sampling-rate adjustments, per subsystem",
    ),
    (
        "tscout_state_machine_resets_total",
        "counter",
        "OU marker state machines reset after protocol violations",
    ),
    (
        "tscout_trace_critical_stage_total",
        "counter",
        "Completed traces whose critical path a stage dominated, per stage",
    ),
    (
        "tscout_trace_ring_evicted_total",
        "counter",
        "Completed traces evicted from the bounded trace ring (lineage kept in metrics)",
    ),
    (
        "tscout_trace_stage_ns",
        "histogram",
        "Per-stage virtual latency of traced samples (exemplar TraceIds ride the buckets)",
    ),
    (
        "tscout_traces_completed_total",
        "counter",
        "Lineage traces that reached a terminal outcome, per outcome",
    ),
    (
        "tscout_traces_dropped_total",
        "counter",
        "Lineage traces abandoned before completion (in-flight table overflow)",
    ),
    (
        "tscout_traces_started_total",
        "counter",
        "TraceIds assigned at marker fire time (1-in-N sampled)",
    ),
    (
        "tscout_verify_insns",
        "gauge",
        "Instruction count of the last verified Collector program",
    ),
    (
        "tscout_verify_insns_visited",
        "gauge",
        "Instructions visited by the last verifier run",
    ),
    (
        "tscout_verify_paths",
        "gauge",
        "Paths explored by the last verifier run",
    ),
    (
        "tscout_verify_peak_depth",
        "gauge",
        "Peak analysis depth across verifier runs",
    ),
    ("tscout_verify_runs", "gauge", "Collector programs verified"),
    (
        "tscout_verify_states",
        "gauge",
        "States explored by the last verifier run",
    ),
    (
        "tscout_verify_states_pruned",
        "gauge",
        "States pruned by the last verifier run",
    ),
    (
        "workload_txn_ns",
        "histogram",
        "Virtual transaction latency, by commit/abort outcome",
    ),
];

/// Is `name` (label-stripped) in the dictionary?
pub fn is_documented(name: &str) -> bool {
    METRIC_DOCS
        .binary_search_by(|(n, _, _)| n.cmp(&name))
        .is_ok()
}

/// One-line meaning of a documented metric — the `# HELP` text in the
/// OpenMetrics exposition. `None` for undocumented names.
pub fn metric_help(name: &str) -> Option<&'static str> {
    METRIC_DOCS
        .binary_search_by(|(n, _, _)| n.cmp(&name))
        .ok()
        .map(|i| METRIC_DOCS[i].2)
}

/// Render the dictionary as the README's markdown table.
pub fn metric_table_markdown() -> String {
    let mut out = String::from("| Metric | Kind | Meaning |\n|---|---|---|\n");
    for (name, kind, meaning) in METRIC_DOCS {
        out.push_str(&format!("| `{name}` | {kind} | {meaning} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_lookup_works() {
        for w in METRIC_DOCS.windows(2) {
            assert!(w[0].0 < w[1].0, "unsorted: {} >= {}", w[0].0, w[1].0);
        }
        assert!(is_documented("db_txn_commits_total"));
        assert!(is_documented("ts_drift_score"));
        assert!(!is_documented("made_up_metric"));
    }

    #[test]
    fn kinds_are_constrained() {
        for (name, kind, meaning) in METRIC_DOCS {
            assert!(
                matches!(*kind, "counter" | "gauge" | "histogram"),
                "{name}: bad kind {kind}"
            );
            assert!(!meaning.is_empty(), "{name}: empty meaning");
        }
    }

    #[test]
    fn markdown_has_one_row_per_metric() {
        let md = metric_table_markdown();
        assert_eq!(md.lines().count(), METRIC_DOCS.len() + 2);
        assert!(md.contains("| `ts_health_state` | gauge |"));
    }
}
