//! Declarative health rules with hysteresis over the metric registry.
//!
//! A [`Rule`] watches one signal — a gauge (optionally fanned out per
//! label value, e.g. one target per OU) or a counter's rate over the
//! latest scrape window — against warn/crit thresholds. Each
//! (rule, target) pair runs a small hysteresis state machine through
//! OK → DEGRADED → CRITICAL:
//!
//! - the state *raises* (possibly jumping straight to CRITICAL) only
//!   after [`Rule::raise_ticks`] consecutive evaluations above the
//!   current state's band, and
//! - *clears* one level at a time after [`Rule::clear_ticks`]
//!   consecutive evaluations below it,
//!
//! so a single noisy window neither fires nor silences an alert. Every
//! upward transition is an *alert* (recorded in a capped ring and
//! counted by the caller into `alerts_fired_total`); downward
//! transitions are recorded as recoveries. A subsystem's health is the
//! worst state across its rules' targets.
//!
//! The engine is deliberately passive: it never reads the registry
//! itself. The registry resolves each rule's signal values and calls
//! [`HealthEngine::tick`], which keeps borrow flow simple and makes the
//! engine trivially testable.

use std::collections::{BTreeMap, VecDeque};

/// Alerts retained for `ts_alerts` (oldest evicted beyond this).
pub const ALERT_CAPACITY: usize = 256;

/// Subsystem / target health, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum HealthState {
    #[default]
    Ok,
    Degraded,
    Critical,
}

impl HealthState {
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Ok => "OK",
            HealthState::Degraded => "DEGRADED",
            HealthState::Critical => "CRITICAL",
        }
    }

    /// Numeric encoding for gauges: OK=0, DEGRADED=1, CRITICAL=2.
    pub fn as_f64(self) -> f64 {
        match self {
            HealthState::Ok => 0.0,
            HealthState::Degraded => 1.0,
            HealthState::Critical => 2.0,
        }
    }

    fn step_down(self) -> HealthState {
        match self {
            HealthState::Critical => HealthState::Degraded,
            _ => HealthState::Ok,
        }
    }
}

/// What a rule watches.
#[derive(Debug, Clone)]
pub enum Selector {
    /// The named gauge's current value.
    Gauge(String),
    /// The named counter's events-per-virtual-second rate over the
    /// latest scrape window (summed across label sets).
    CounterRate(String),
}

/// One declarative alert rule.
#[derive(Debug, Clone)]
pub struct Rule {
    pub name: String,
    /// Subsystem this rule's state rolls up into.
    pub subsystem: String,
    pub selector: Selector,
    /// For gauge selectors: fan out one hysteresis target per distinct
    /// value of this label (e.g. `Some("ou")` → one state per OU).
    /// `None` aggregates all label sets (max) into a single target.
    pub per_label: Option<String>,
    /// Value ≥ warn → DEGRADED band; ≥ crit → CRITICAL band.
    pub warn: f64,
    pub crit: f64,
    /// Consecutive above-band evaluations before the state raises.
    pub raise_ticks: u32,
    /// Consecutive below-band evaluations before it steps down a level.
    pub clear_ticks: u32,
}

impl Rule {
    fn band(&self, v: f64) -> HealthState {
        if v >= self.crit {
            HealthState::Critical
        } else if v >= self.warn {
            HealthState::Degraded
        } else {
            HealthState::Ok
        }
    }
}

/// One recorded state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Monotonic id (also the lifetime transition count).
    pub seq: u64,
    pub at_ns: f64,
    pub rule: String,
    pub subsystem: String,
    /// Fan-out target ("" for aggregate rules).
    pub target: String,
    pub from: HealthState,
    pub to: HealthState,
    /// Signal value that drove the transition.
    pub value: f64,
    /// The threshold of the band entered (warn for DEGRADED/recovery,
    /// crit for CRITICAL).
    pub threshold: f64,
}

impl Alert {
    /// True for upward (alerting) transitions, false for recoveries.
    pub fn fired(&self) -> bool {
        self.to > self.from
    }
}

/// One gauge reading: the label set carrying it, with its value.
pub type LabeledGauge = (Vec<(String, String)>, f64);

/// Signal values the registry resolved for one tick.
#[derive(Debug, Clone, Default)]
pub struct Signals {
    /// Gauge name → every label set carrying it, with its value.
    pub gauges: BTreeMap<String, Vec<LabeledGauge>>,
    /// Counter name → events per virtual second over the latest window.
    pub rates: BTreeMap<String, f64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct TargetState {
    state: HealthState,
    breach_streak: u32,
    clear_streak: u32,
}

/// The rule engine: rules, per-(rule, target) hysteresis state, and the
/// alert ring.
#[derive(Debug, Clone)]
pub struct HealthEngine {
    rules: Vec<Rule>,
    states: BTreeMap<(String, String), TargetState>,
    alerts: VecDeque<Alert>,
    alerts_dropped: u64,
    seq: u64,
    fired_total: u64,
    fired_by_subsystem: BTreeMap<String, u64>,
    /// Evaluation ticks run.
    pub ticks: u64,
}

impl Default for HealthEngine {
    fn default() -> Self {
        let mut e = HealthEngine::empty();
        for r in default_rules() {
            e.add_rule(r);
        }
        e
    }
}

/// The stock rule set wired into every registry: data drift per OU,
/// live-model residual error per OU, sample loss, and decode errors.
/// Thresholds follow the conventional PSI bands (0.25 significant) and
/// the loss rates at which the Fig. 6 overload regime operates.
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "ou_drift".into(),
            subsystem: "data".into(),
            selector: Selector::Gauge("ts_drift_score".into()),
            per_label: Some("ou".into()),
            warn: 0.25,
            crit: 0.5,
            raise_ticks: 1,
            clear_ticks: 2,
        },
        Rule {
            name: "model_residual".into(),
            subsystem: "models".into(),
            selector: Selector::Gauge("ts_residual_mape_pct".into()),
            per_label: Some("ou".into()),
            warn: 50.0,
            crit: 100.0,
            raise_ticks: 2,
            clear_ticks: 2,
        },
        Rule {
            name: "sample_loss".into(),
            subsystem: "collector".into(),
            selector: Selector::CounterRate("tscout_ou_samples_lost_total".into()),
            per_label: None,
            warn: 5_000.0,
            crit: 50_000.0,
            raise_ticks: 2,
            clear_ticks: 2,
        },
        Rule {
            name: "decode_errors".into(),
            subsystem: "processor".into(),
            selector: Selector::CounterRate("processor_decode_errors_total".into()),
            per_label: None,
            warn: 1.0,
            crit: 100.0,
            raise_ticks: 1,
            clear_ticks: 2,
        },
    ]
}

impl HealthEngine {
    /// An engine with no rules (tests, custom setups).
    pub fn empty() -> Self {
        HealthEngine {
            rules: Vec::new(),
            states: BTreeMap::new(),
            alerts: VecDeque::new(),
            alerts_dropped: 0,
            seq: 0,
            fired_total: 0,
            fired_by_subsystem: BTreeMap::new(),
            ticks: 0,
        }
    }

    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Recorded transitions, oldest first (capped at [`ALERT_CAPACITY`]).
    pub fn alerts(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.iter()
    }

    pub fn alerts_dropped(&self) -> u64 {
        self.alerts_dropped
    }

    /// Lifetime count of upward (alerting) transitions.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    pub fn fired_for_subsystem(&self, subsystem: &str) -> u64 {
        self.fired_by_subsystem.get(subsystem).copied().unwrap_or(0)
    }

    /// Worst state across every rule targeting `target` (e.g. an OU
    /// name). OK when nothing tracks it.
    pub fn state_for_target(&self, target: &str) -> HealthState {
        self.states
            .iter()
            .filter(|((_, t), _)| t == target)
            .map(|(_, s)| s.state)
            .max()
            .unwrap_or(HealthState::Ok)
    }

    /// Every subsystem with at least one rule, mapped to its worst
    /// current state.
    pub fn subsystem_states(&self) -> BTreeMap<String, HealthState> {
        let mut out: BTreeMap<String, HealthState> = BTreeMap::new();
        for r in &self.rules {
            out.entry(r.subsystem.clone()).or_default();
        }
        for ((rule_name, _), st) in &self.states {
            if let Some(r) = self.rules.iter().find(|r| &r.name == rule_name) {
                let e = out.entry(r.subsystem.clone()).or_default();
                *e = (*e).max(st.state);
            }
        }
        out
    }

    pub fn rules_for_subsystem(&self, subsystem: &str) -> usize {
        self.rules
            .iter()
            .filter(|r| r.subsystem == subsystem)
            .count()
    }

    /// Evaluate every rule against the resolved signals. Absent signals
    /// (a gauge never set, a rate with no window yet) are skipped —
    /// they neither advance nor reset hysteresis streaks. Returns this
    /// tick's transitions, upward ones flagged via [`Alert::fired`].
    pub fn tick(&mut self, now_ns: f64, signals: &Signals) -> Vec<Alert> {
        self.ticks += 1;
        let mut transitions = Vec::new();
        // Rules are evaluated against resolved (target, value) pairs.
        let mut work: Vec<(usize, String, f64)> = Vec::new();
        for (ri, rule) in self.rules.iter().enumerate() {
            match &rule.selector {
                Selector::Gauge(name) => {
                    let Some(series) = signals.gauges.get(name) else {
                        continue;
                    };
                    match &rule.per_label {
                        Some(label) => {
                            // One target per distinct label value; max
                            // wins if several series share it.
                            let mut by_target: BTreeMap<&str, f64> = BTreeMap::new();
                            for (labels, v) in series {
                                if let Some((_, t)) = labels.iter().find(|(k, _)| k == label) {
                                    let e = by_target.entry(t).or_insert(f64::NEG_INFINITY);
                                    *e = e.max(*v);
                                }
                            }
                            for (t, v) in by_target {
                                work.push((ri, t.to_string(), v));
                            }
                        }
                        None => {
                            let v = series
                                .iter()
                                .map(|(_, v)| *v)
                                .fold(f64::NEG_INFINITY, f64::max);
                            if v.is_finite() {
                                work.push((ri, String::new(), v));
                            }
                        }
                    }
                }
                Selector::CounterRate(name) => {
                    if let Some(&v) = signals.rates.get(name) {
                        work.push((ri, String::new(), v));
                    }
                }
            }
        }
        for (ri, target, value) in work {
            let rule = self.rules[ri].clone();
            let band = rule.band(value);
            let key = (rule.name.clone(), target);
            // Run the hysteresis machine; borrow of `states` ends before
            // the alert is recorded.
            let moved: Option<(HealthState, HealthState, f64)> = {
                let st = self.states.entry(key.clone()).or_default();
                if band > st.state {
                    st.breach_streak += 1;
                    st.clear_streak = 0;
                    if st.breach_streak >= rule.raise_ticks {
                        let from = st.state;
                        st.state = band;
                        st.breach_streak = 0;
                        let threshold = if band == HealthState::Critical {
                            rule.crit
                        } else {
                            rule.warn
                        };
                        Some((from, band, threshold))
                    } else {
                        None
                    }
                } else if band < st.state {
                    st.clear_streak += 1;
                    st.breach_streak = 0;
                    if st.clear_streak >= rule.clear_ticks {
                        let from = st.state;
                        st.state = from.step_down();
                        st.clear_streak = 0;
                        Some((from, st.state, rule.warn))
                    } else {
                        None
                    }
                } else {
                    st.breach_streak = 0;
                    st.clear_streak = 0;
                    None
                }
            };
            if let Some((from, to, threshold)) = moved {
                transitions.push(self.record(Alert {
                    seq: 0, // assigned in record()
                    at_ns: now_ns,
                    rule: key.0,
                    subsystem: rule.subsystem.clone(),
                    target: key.1,
                    from,
                    to,
                    value,
                    threshold,
                }));
            }
        }
        transitions
    }

    fn record(&mut self, mut alert: Alert) -> Alert {
        alert.seq = self.seq;
        self.seq += 1;
        if alert.fired() {
            self.fired_total += 1;
            *self
                .fired_by_subsystem
                .entry(alert.subsystem.clone())
                .or_insert(0) += 1;
        }
        if self.alerts.len() == ALERT_CAPACITY {
            self.alerts.pop_front();
            self.alerts_dropped += 1;
        }
        self.alerts.push_back(alert.clone());
        alert
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge_rule(raise: u32, clear: u32) -> Rule {
        Rule {
            name: "r".into(),
            subsystem: "sub".into(),
            selector: Selector::Gauge("g".into()),
            per_label: Some("ou".into()),
            warn: 1.0,
            crit: 2.0,
            raise_ticks: raise,
            clear_ticks: clear,
        }
    }

    fn sig(pairs: &[(&str, f64)]) -> Signals {
        let mut s = Signals::default();
        s.gauges.insert(
            "g".into(),
            pairs
                .iter()
                .map(|(t, v)| (vec![("ou".to_string(), t.to_string())], *v))
                .collect(),
        );
        s
    }

    #[test]
    fn raise_needs_consecutive_breaches() {
        let mut e = HealthEngine::empty();
        e.add_rule(gauge_rule(2, 1));
        assert!(e.tick(1.0, &sig(&[("scan", 1.5)])).is_empty());
        // A clean tick resets the streak.
        assert!(e.tick(2.0, &sig(&[("scan", 0.0)])).is_empty());
        assert!(e.tick(3.0, &sig(&[("scan", 1.5)])).is_empty());
        let t = e.tick(4.0, &sig(&[("scan", 1.5)]));
        assert_eq!(t.len(), 1);
        assert!(t[0].fired());
        assert_eq!(t[0].to, HealthState::Degraded);
        assert_eq!(e.state_for_target("scan"), HealthState::Degraded);
        assert_eq!(e.fired_total(), 1);
        assert_eq!(e.fired_for_subsystem("sub"), 1);
    }

    #[test]
    fn jumps_straight_to_critical_and_steps_down_one_level() {
        let mut e = HealthEngine::empty();
        e.add_rule(gauge_rule(1, 2));
        let t = e.tick(1.0, &sig(&[("scan", 9.0)]));
        assert_eq!(t[0].to, HealthState::Critical);
        assert_eq!(t[0].from, HealthState::Ok);
        assert_eq!(t[0].threshold, 2.0);
        // Two clean ticks step down exactly one level per clear window.
        assert!(e.tick(2.0, &sig(&[("scan", 0.0)])).is_empty());
        let t = e.tick(3.0, &sig(&[("scan", 0.0)]));
        assert_eq!(t[0].to, HealthState::Degraded);
        assert!(!t[0].fired());
        assert!(e.tick(4.0, &sig(&[("scan", 0.0)])).is_empty());
        let t = e.tick(5.0, &sig(&[("scan", 0.0)]));
        assert_eq!(t[0].to, HealthState::Ok);
        assert_eq!(e.state_for_target("scan"), HealthState::Ok);
        // Only the initial raise counted as fired.
        assert_eq!(e.fired_total(), 1);
    }

    #[test]
    fn per_label_targets_are_independent() {
        let mut e = HealthEngine::empty();
        e.add_rule(gauge_rule(1, 1));
        e.tick(1.0, &sig(&[("scan", 1.5), ("probe", 0.1)]));
        assert_eq!(e.state_for_target("scan"), HealthState::Degraded);
        assert_eq!(e.state_for_target("probe"), HealthState::Ok);
        let states = e.subsystem_states();
        assert_eq!(states["sub"], HealthState::Degraded);
    }

    #[test]
    fn absent_signals_do_not_touch_streaks() {
        let mut e = HealthEngine::empty();
        e.add_rule(gauge_rule(2, 1));
        e.tick(1.0, &sig(&[("scan", 1.5)]));
        // Gauge disappears for a tick: streak must survive.
        e.tick(2.0, &Signals::default());
        let t = e.tick(3.0, &sig(&[("scan", 1.5)]));
        assert_eq!(t.len(), 1, "streak survived the gap");
    }

    #[test]
    fn counter_rate_rules_use_aggregate_rate() {
        let mut e = HealthEngine::empty();
        e.add_rule(Rule {
            name: "loss".into(),
            subsystem: "collector".into(),
            selector: Selector::CounterRate("lost_total".into()),
            per_label: None,
            warn: 100.0,
            crit: 1_000.0,
            raise_ticks: 1,
            clear_ticks: 1,
        });
        let mut s = Signals::default();
        s.rates.insert("lost_total".into(), 500.0);
        let t = e.tick(1.0, &s);
        assert_eq!(t[0].to, HealthState::Degraded);
        assert_eq!(t[0].target, "");
        assert_eq!(e.subsystem_states()["collector"], HealthState::Degraded);
    }

    #[test]
    fn alert_ring_caps_and_counts_drops() {
        let mut e = HealthEngine::empty();
        e.add_rule(gauge_rule(1, 1));
        for i in 0..(ALERT_CAPACITY as u64 + 10) {
            // Alternate breach/clear so every tick transitions.
            let v = if i % 2 == 0 { 1.5 } else { 0.0 };
            e.tick(i as f64, &sig(&[("scan", v)]));
        }
        assert_eq!(e.alerts().count(), ALERT_CAPACITY);
        assert!(e.alerts_dropped() > 0);
        // Seq stays monotonic across eviction.
        let seqs: Vec<u64> = e.alerts().map(|a| a.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn default_rules_cover_the_documented_subsystems() {
        let e = HealthEngine::default();
        let states = e.subsystem_states();
        for sub in ["data", "models", "collector", "processor"] {
            assert_eq!(states[sub], HealthState::Ok, "{sub}");
        }
        assert_eq!(e.rules_for_subsystem("data"), 1);
    }
}
