//! Log-linear bucketed histograms with percentile estimation.
//!
//! Layout follows the classic HDR-style compromise: values are bucketed
//! by octave (power of two) with [`SUB_BUCKETS`] linear sub-buckets per
//! octave, giving a worst-case relative error of 1/SUB_BUCKETS (12.5%)
//! on percentile estimates across the full `f64` latency range we care
//! about (1 ns .. ~2^63 ns), at a fixed 513-slot memory cost.

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 8;
/// Octaves covered (values ≥ 2^OCTAVES saturate into the last bucket).
pub const OCTAVES: usize = 64;
/// Total bucket count: one underflow bucket for values < 1, then
/// OCTAVES × SUB_BUCKETS log-linear buckets.
pub const BUCKETS: usize = 1 + OCTAVES * SUB_BUCKETS;

/// A log-linear histogram of non-negative observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Bucket index for a value. Values below 1.0 (including negatives,
/// which latency paths never produce) land in the underflow bucket 0.
/// Shared with the distribution sketches (`sketch.rs`) so histogram and
/// sketch views of the same stream bucket identically.
pub(crate) fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1.0 || v.is_infinite() {
        return 0;
    }
    let bits = v as u64; // v ≥ 1, truncation is fine for bucketing
    let octave = 63 - bits.leading_zeros() as usize; // floor(log2)
    if octave >= OCTAVES {
        return BUCKETS - 1;
    }
    // Position within the octave: [2^octave, 2^(octave+1)) split into
    // SUB_BUCKETS equal linear slices.
    let lo = 1u64 << octave;
    let sub = if octave == 0 {
        // Octave [1,2) has span 1 — everything is sub-bucket 0.
        0
    } else {
        (((bits - lo) as u128 * SUB_BUCKETS as u128) >> octave) as usize
    };
    1 + octave * SUB_BUCKETS + sub.min(SUB_BUCKETS - 1)
}

/// Representative (upper-bound) value for a bucket, used when
/// interpolating percentiles.
pub(crate) fn bucket_upper(idx: usize) -> f64 {
    if idx == 0 {
        return 1.0;
    }
    let i = idx - 1;
    let octave = i / SUB_BUCKETS;
    let sub = i % SUB_BUCKETS;
    if octave == 0 {
        // Octave [1,2) is a single sub-bucket (see bucket_index).
        return 2.0;
    }
    let lo = (1u128 << octave) as f64;
    lo + lo * (sub as f64 + 1.0) / SUB_BUCKETS as f64
}

impl Histogram {
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile from the buckets. `q` outside [0,1]
    /// is clamped and a NaN `q` is treated as 0.0; an empty histogram
    /// always reports 0.0. The estimate is clamped to the observed
    /// min/max so tails of sparse histograms stay honest.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending order — the OpenMetrics `_bucket{le="..."}` series.
    /// Empty buckets are skipped (cumulative counts make them
    /// redundant); the final `+Inf` bucket is the renderer's job since
    /// its value is just [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 1.0f64;
        while v < 1e18 {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(i >= last, "bucket index regressed at {v}: {i} < {last}");
            last = i;
            v *= 1.07;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.5), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
    }

    #[test]
    fn bucket_upper_bounds_the_bucket() {
        for v in [1.0, 1.9, 2.0, 3.0, 5.0, 100.0, 1023.0, 1e6, 1e12] {
            let i = bucket_index(v);
            assert!(
                bucket_upper(i) >= v,
                "upper({i}) = {} < value {v}",
                bucket_upper(i)
            );
        }
    }

    #[test]
    fn exact_octave_boundaries() {
        // 2^k must land at the start of octave k, sub-bucket 0.
        for k in 1..40usize {
            let idx = bucket_index((1u64 << k) as f64);
            assert_eq!(idx, 1 + k * SUB_BUCKETS, "2^{k} in wrong bucket");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::default();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        // Log-linear buckets guarantee ≤ 1/SUB_BUCKETS relative error.
        assert!((s.p50 - 5_000.0).abs() / 5_000.0 < 0.15, "p50={}", s.p50);
        assert!((s.p95 - 9_500.0).abs() / 9_500.0 < 0.15, "p95={}", s.p95);
        assert!((s.p99 - 9_900.0).abs() / 9_900.0 < 0.15, "p99={}", s.p99);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10_000.0);
        assert!((s.mean - 5_000.5).abs() < 1e-6);
    }

    #[test]
    fn single_observation_percentiles_are_exact() {
        let mut h = Histogram::default();
        h.record(777.0);
        let s = h.snapshot();
        assert_eq!(s.p50, 777.0);
        assert_eq!(s.p99, 777.0);
        assert_eq!(s.min, 777.0);
        assert_eq!(s.max, 777.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn empty_quantiles_are_zero_for_any_q() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 1.0, -3.0, 42.0, f64::NAN, f64::INFINITY] {
            assert_eq!(h.quantile(q), 0.0, "q={q}");
        }
    }

    #[test]
    fn out_of_range_and_nan_q_are_clamped() {
        let mut h = Histogram::default();
        h.record(10.0);
        h.record(20.0);
        h.record(30.0);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
        assert!(h.quantile(1.5).is_finite());
    }

    #[test]
    fn single_sample_quantiles_all_collapse() {
        let mut h = Histogram::default();
        h.record(123.0);
        for q in [-0.5, 0.0, 0.25, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(h.quantile(q), 123.0, "q={q}");
        }
    }

    #[test]
    fn post_merge_quantiles_cover_both_sources() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 1..=1_000 {
            a.record(i as f64); // [1, 1000]
            b.record(9_000.0 + i as f64); // [9001, 10000]
        }
        a.merge_from(&b);
        // Median sits at the seam between the two sources; p99 must come
        // from b's range, p0/p100 from the union's extremes.
        // q=0 lands in the first occupied bucket (upper bound 2.0 for
        // values starting at 1); q=1 is clamped to the exact max.
        assert!(a.quantile(0.0) <= 2.0, "p0={}", a.quantile(0.0));
        assert_eq!(a.quantile(1.0), 10_000.0);
        let p50 = a.quantile(0.5);
        assert!((500.0..=1_100.0).contains(&p50), "p50={p50}");
        let p99 = a.quantile(0.99);
        assert!((9_900.0f64 - p99).abs() / 9_900.0 < 0.15, "p99={p99}");
        // Merging into an empty histogram preserves quantiles too.
        let mut c = Histogram::default();
        c.merge_from(&b);
        assert!((c.quantile(0.5) - 9_500.0).abs() / 9_500.0 < 0.15);
    }

    #[test]
    fn merge_adds_observations() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 0..100 {
            a.record(i as f64);
            b.record((i + 100) as f64);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.snapshot().max, 199.0);
        assert_eq!(a.snapshot().min, 0.0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_close() {
        let mut h = Histogram::default();
        for v in [0.5, 1.5, 3.0, 3.5, 100.0, 100.0, 1e6] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        let mut last_upper = f64::NEG_INFINITY;
        let mut last_cum = 0u64;
        for &(upper, cum) in &buckets {
            assert!(upper > last_upper, "upper bounds must ascend");
            assert!(cum > last_cum, "cumulative counts must strictly grow");
            last_upper = upper;
            last_cum = cum;
        }
        // The last cumulative count is the total observation count —
        // the renderer's +Inf bucket equals it.
        assert_eq!(last_cum, h.count());
        // Empty histogram renders no buckets.
        assert!(Histogram::default().cumulative_buckets().is_empty());
    }

    #[test]
    fn saturating_bucket_for_huge_values() {
        let mut h = Histogram::default();
        h.record(f64::MAX);
        // Infinity is ignored by bucket 0 routing but still counted there;
        // f64::MAX routes to the saturating last bucket without panicking.
        assert_eq!(h.count(), 1);
    }
}
