//! Statement-level execution statistics (the `pg_stat_statements` shape).
//!
//! The engine fingerprints every executed statement by rendering its AST
//! with literals normalized away (see `noisetap::sql::fingerprint`), so
//! `SELECT v FROM t WHERE id = 7` and `select  V from T where ID=42`
//! collapse into one template. Each fingerprint accumulates call counts,
//! total/min/max actual virtual-clock ns, row counts, a per-OU cost
//! breakdown, and a rolling predicted-vs-actual error (MAPE) against the
//! live behavior models — the per-query evidence a self-driving action
//! engine needs before trusting a model enough to act on it.
//!
//! The registry is bounded: at most `cap` distinct fingerprints are kept,
//! evicted least-recently-used with deterministic tie-breaking (smallest
//! fingerprint wins the tie, so identical runs evict identically). An
//! `evicted` counter records the casualties; nothing here ever touches
//! the virtual clock — accounting costs are charged by the workload
//! driver at pump cadence via the kernel cost-model constants
//! (`stmt_fingerprint_ns` / `stmt_record_ns`), keeping collected
//! training samples bit-identical with statement stats on or off.

use std::collections::BTreeMap;

/// Default bound on distinct fingerprints retained.
pub const DEFAULT_STMT_CAP: usize = 256;

/// Accumulated statistics for one statement fingerprint.
#[derive(Debug, Clone)]
pub struct StmtEntry {
    /// The literal-normalized statement template.
    pub fingerprint: String,
    /// Number of executions folded in.
    pub calls: u64,
    /// Total rows returned (queries) or affected (DML).
    pub rows: u64,
    /// Total actual virtual-clock ns across all calls.
    pub total_ns: f64,
    /// Fastest single call, ns.
    pub min_ns: f64,
    /// Slowest single call, ns.
    pub max_ns: f64,
    /// Actual ns attributed to each OU this statement fired, summed
    /// across calls (keys are OU names, e.g. `seq_scan`).
    pub ou_ns: BTreeMap<String, f64>,
    /// Calls for which the live model produced a prediction.
    pub predicted_calls: u64,
    /// Sum of per-call absolute percentage errors (predicted vs the
    /// OU-attributed actual), in percent; divide by `predicted_calls`.
    pub err_pct_sum: f64,
    /// LRU stamp: the registry clock at the most recent record.
    last_used: u64,
}

impl StmtEntry {
    fn new(fingerprint: &str) -> StmtEntry {
        StmtEntry {
            fingerprint: fingerprint.to_string(),
            calls: 0,
            rows: 0,
            total_ns: 0.0,
            min_ns: f64::INFINITY,
            max_ns: 0.0,
            ou_ns: BTreeMap::new(),
            predicted_calls: 0,
            err_pct_sum: 0.0,
            last_used: 0,
        }
    }

    /// Mean actual ns per call.
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns / self.calls as f64
        }
    }

    /// Total ns attributed to OUs (the modeled portion of `total_ns`).
    pub fn ou_ns_total(&self) -> f64 {
        self.ou_ns.values().sum()
    }

    /// Rolling mean absolute percentage error of the model's predicted
    /// cost vs the OU-attributed actual, over predicted calls.
    pub fn mape_pct(&self) -> f64 {
        if self.predicted_calls == 0 {
            0.0
        } else {
            self.err_pct_sum / self.predicted_calls as f64
        }
    }
}

/// Bounded LRU registry of per-fingerprint statement statistics.
#[derive(Debug, Clone)]
pub struct StmtStats {
    cap: usize,
    clock: u64,
    recorded: u64,
    evicted: u64,
    entries: BTreeMap<String, StmtEntry>,
}

impl Default for StmtStats {
    fn default() -> Self {
        StmtStats::new(DEFAULT_STMT_CAP)
    }
}

impl StmtStats {
    pub fn new(cap: usize) -> StmtStats {
        StmtStats {
            cap: cap.max(1),
            clock: 0,
            recorded: 0,
            evicted: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Fold one executed statement into its fingerprint's entry.
    ///
    /// `ou_ns` lists `(ou_name, actual_ns)` pairs for every OU the
    /// execution charged (repeats allowed — they sum). `predicted_ns`,
    /// when present, is the live model's total predicted cost for those
    /// OUs and feeds the rolling MAPE against their summed actual.
    pub fn record(
        &mut self,
        fingerprint: &str,
        actual_ns: f64,
        rows: u64,
        ou_ns: &[(&str, f64)],
        predicted_ns: Option<f64>,
    ) {
        self.clock += 1;
        self.recorded += 1;
        let clock = self.clock;
        // Steady state (the per-statement hot path) allocates nothing
        // and looks the fingerprint up exactly once: borrowed-str
        // lookups fold into the existing entry; the owned keys are only
        // built the first time a fingerprint or OU shows.
        let fold = |e: &mut StmtEntry| {
            e.calls += 1;
            e.rows += rows;
            e.total_ns += actual_ns;
            e.min_ns = e.min_ns.min(actual_ns);
            e.max_ns = e.max_ns.max(actual_ns);
            for (ou, ns) in ou_ns {
                match e.ou_ns.get_mut(*ou) {
                    Some(acc) => *acc += ns,
                    None => {
                        e.ou_ns.insert((*ou).to_string(), *ns);
                    }
                }
            }
            if let Some(p) = predicted_ns {
                let actual: f64 = ou_ns.iter().map(|(_, ns)| ns).sum();
                e.predicted_calls += 1;
                e.err_pct_sum += (p - actual).abs() / actual.max(1e-9) * 100.0;
            }
            e.last_used = clock;
        };
        if let Some(e) = self.entries.get_mut(fingerprint) {
            fold(e);
            return;
        }
        if self.entries.len() >= self.cap {
            self.evict_lru();
        }
        let e = self
            .entries
            .entry(fingerprint.to_string())
            .or_insert_with(|| StmtEntry::new(fingerprint));
        fold(e);
    }

    /// Evict the least-recently-used entry. Ties (same stamp) break to
    /// the lexicographically smallest fingerprint — BTreeMap iteration
    /// order plus a strict `<` comparison make the choice deterministic.
    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .values()
            .min_by_key(|e| e.last_used)
            .map(|e| e.fingerprint.clone());
        if let Some(fp) = victim {
            self.entries.remove(&fp);
            self.evicted += 1;
        }
    }

    /// Number of distinct fingerprints currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when nothing has ever been recorded — used by `merge_from`
    /// to adopt a populated registry wholesale into an idle accumulator.
    pub fn is_idle(&self) -> bool {
        self.recorded == 0
    }

    /// Total record() calls (drives the driver's pump-cadence cost
    /// charge: each recorded statement paid one fingerprint + one fold).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Entries evicted by the LRU cap since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Entries in fingerprint order (deterministic).
    pub fn entries(&self) -> impl Iterator<Item = &StmtEntry> {
        self.entries.values()
    }

    /// Look up one fingerprint.
    pub fn get(&self, fingerprint: &str) -> Option<&StmtEntry> {
        self.entries.get(fingerprint)
    }

    /// Top `k` entries by total actual ns, descending (ties break to the
    /// smaller fingerprint via the stable sort over ordered iteration).
    pub fn top_by_total_ns(&self, k: usize) -> Vec<&StmtEntry> {
        let mut v: Vec<&StmtEntry> = self.entries.values().collect();
        v.sort_by(|a, b| b.total_ns.partial_cmp(&a.total_ns).unwrap());
        v.truncate(k);
        v
    }

    /// Top `k` entries by worst rolling MAPE, descending; entries with
    /// no predicted calls rank last.
    pub fn top_by_mape(&self, k: usize) -> Vec<&StmtEntry> {
        let mut v: Vec<&StmtEntry> = self.entries.values().collect();
        v.sort_by(|a, b| b.mape_pct().partial_cmp(&a.mape_pct()).unwrap());
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulators_track_calls_rows_and_extremes() {
        let mut s = StmtStats::new(8);
        s.record("select ?", 100.0, 1, &[("seq_scan", 60.0)], None);
        s.record("select ?", 300.0, 3, &[("seq_scan", 200.0)], None);
        let e = s.get("select ?").unwrap();
        assert_eq!(e.calls, 2);
        assert_eq!(e.rows, 4);
        assert_eq!(e.total_ns, 400.0);
        assert_eq!(e.min_ns, 100.0);
        assert_eq!(e.max_ns, 300.0);
        assert_eq!(e.mean_ns(), 200.0);
        assert_eq!(e.ou_ns["seq_scan"], 260.0);
        assert_eq!(e.ou_ns_total(), 260.0);
        assert_eq!(e.mape_pct(), 0.0); // no predictions yet
        assert_eq!(s.recorded(), 2);
        assert_eq!(s.evicted(), 0);
    }

    #[test]
    fn mape_compares_prediction_to_ou_attributed_actual() {
        let mut s = StmtStats::default();
        // predicted 150 vs OU actual 100 -> 50% error
        s.record("q", 120.0, 0, &[("idx_lookup", 100.0)], Some(150.0));
        // predicted 100 vs OU actual 200 -> 50% error
        s.record("q", 250.0, 0, &[("idx_lookup", 200.0)], Some(100.0));
        // unpredicted call does not dilute the MAPE
        s.record("q", 250.0, 0, &[("idx_lookup", 200.0)], None);
        let e = s.get("q").unwrap();
        assert_eq!(e.predicted_calls, 2);
        assert!((e.mape_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn lru_cap_evicts_deterministically_and_counts() {
        let mut s = StmtStats::new(2);
        s.record("a", 1.0, 0, &[], None); // clock 1
        s.record("b", 1.0, 0, &[], None); // clock 2
        s.record("a", 1.0, 0, &[], None); // clock 3: a is now most recent
        s.record("c", 1.0, 0, &[], None); // evicts b (LRU)
        assert_eq!(s.len(), 2);
        assert!(s.get("b").is_none());
        assert!(s.get("a").is_some() && s.get("c").is_some());
        assert_eq!(s.evicted(), 1);
        // Repeat the exact sequence: the same victim falls.
        let mut t = StmtStats::new(2);
        for fp in ["a", "b", "a", "c"] {
            t.record(fp, 1.0, 0, &[], None);
        }
        assert!(t.get("b").is_none());
        assert_eq!(t.evicted(), 1);
    }

    #[test]
    fn top_k_orders_by_total_and_by_mape() {
        let mut s = StmtStats::default();
        s.record("cheap", 10.0, 0, &[("seq_scan", 10.0)], Some(10.0)); // 0% err
        s.record("hot", 900.0, 0, &[("sort", 300.0)], Some(600.0)); // 100% err
        s.record("mid", 100.0, 0, &[("agg_build", 100.0)], None);
        let by_total: Vec<&str> = s
            .top_by_total_ns(2)
            .iter()
            .map(|e| e.fingerprint.as_str())
            .collect();
        assert_eq!(by_total, ["hot", "mid"]);
        let by_mape: Vec<&str> = s
            .top_by_mape(3)
            .iter()
            .map(|e| e.fingerprint.as_str())
            .collect();
        assert_eq!(by_mape[0], "hot");
        assert_eq!(*by_mape.last().unwrap(), "mid"); // unpredicted ranks last
    }

    #[test]
    fn idle_until_first_record() {
        let mut s = StmtStats::default();
        assert!(s.is_idle() && s.is_empty());
        s.record("q", 1.0, 0, &[], None);
        assert!(!s.is_idle());
    }
}
