//! The action log: every decision the autonomous action engine makes,
//! with its prediction and (once the observation window closes) the
//! observed outcome.
//!
//! The log is the system of record the `ts_actions` virtual table and
//! the flight recorder read from; the engine itself only keeps the
//! lightweight follow-up state it needs to close each record. Records
//! live in a bounded ring so a long run cannot grow telemetry without
//! bound — evictions are counted, never silent.

use std::collections::VecDeque;

use crate::{json_escape, json_num};

/// Default bound on retained action records.
pub const ACTION_LOG_CAPACITY: usize = 512;

/// Lifecycle of one logged action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionState {
    /// Planned (and actuated unless `dry_run`); follow-up still pending.
    Pending,
    /// Follow-up ran: `observed` / `err_pct` / `regressed` are final.
    Observed,
}

impl ActionState {
    pub fn name(self) -> &'static str {
        match self {
            ActionState::Pending => "pending",
            ActionState::Observed => "observed",
        }
    }
}

/// One planned action with its prediction and eventual outcome.
#[derive(Debug, Clone)]
pub struct ActionRecord {
    /// Monotonic id, assigned by the log at append time.
    pub id: u64,
    /// Action kind (e.g. `adjust_sampling_rate`, `trigger_retrain`).
    pub kind: String,
    /// Policy that planned it (e.g. `overhead_budget`).
    pub policy: String,
    /// What the action acts on (a subsystem name, `archive`, ...).
    pub target: String,
    /// Human-readable parameterization (e.g. `rate 40 -> 20`).
    pub detail: String,
    pub state: ActionState,
    /// Planned-only: the engine never called the actuator.
    pub dry_run: bool,
    pub planned_at_ns: f64,
    /// When the follow-up becomes due.
    pub observe_at_ns: f64,
    /// The metric the prediction names (rendered with labels).
    pub metric: String,
    /// Metric value when the action was planned.
    pub value_before: f64,
    /// Predicted metric value at follow-up time.
    pub predicted: f64,
    /// Observed metric value at follow-up (None while pending).
    pub observed: Option<f64>,
    pub observed_at_ns: Option<f64>,
    /// `|observed - predicted| / max(|predicted|, 1) * 100`.
    pub err_pct: Option<f64>,
    /// Outcome moved the target metric the wrong way beyond tolerance.
    pub regressed: bool,
    /// Live model generation when the action was planned.
    pub model_generation: u64,
}

impl ActionRecord {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\": {}, \"kind\": \"{}\", \"policy\": \"{}\", \"target\": \"{}\", \
             \"detail\": \"{}\", \"state\": \"{}\", \"dry_run\": {}, \
             \"planned_at_ns\": {}, \"observe_at_ns\": {}, \"metric\": \"{}\", \
             \"value_before\": {}, \"predicted\": {}, \"observed\": {}, \
             \"observed_at_ns\": {}, \"err_pct\": {}, \"regressed\": {}, \
             \"model_generation\": {}}}",
            self.id,
            json_escape(&self.kind),
            json_escape(&self.policy),
            json_escape(&self.target),
            json_escape(&self.detail),
            self.state.name(),
            self.dry_run,
            json_num(self.planned_at_ns),
            json_num(self.observe_at_ns),
            json_escape(&self.metric),
            json_num(self.value_before),
            json_num(self.predicted),
            self.observed.map_or("null".to_string(), json_num),
            self.observed_at_ns.map_or("null".to_string(), json_num),
            self.err_pct.map_or("null".to_string(), json_num),
            self.regressed,
            self.model_generation,
        )
    }
}

/// Bounded ring of [`ActionRecord`]s with monotonic id assignment.
#[derive(Debug, Clone, Default)]
pub struct ActionLog {
    records: VecDeque<ActionRecord>,
    next_id: u64,
    dropped: u64,
}

impl ActionLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, assigning and returning its id. The oldest
    /// record is evicted (and counted) once the ring is full.
    pub fn append(&mut self, mut record: ActionRecord) -> u64 {
        self.next_id += 1;
        record.id = self.next_id;
        if self.records.len() >= ACTION_LOG_CAPACITY {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
        self.next_id
    }

    pub fn get(&self, id: u64) -> Option<&ActionRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Close a pending record with its observed outcome. Returns the
    /// updated record (cloned) so callers can archive / flight-record it
    /// without holding the registry lock.
    pub fn observe(
        &mut self,
        id: u64,
        observed: f64,
        observed_at_ns: f64,
        err_pct: f64,
        regressed: bool,
    ) -> Option<ActionRecord> {
        let r = self.records.iter_mut().find(|r| r.id == id)?;
        r.state = ActionState::Observed;
        r.observed = Some(observed);
        r.observed_at_ns = Some(observed_at_ns);
        r.err_pct = Some(err_pct);
        r.regressed = regressed;
        Some(r.clone())
    }

    pub fn iter(&self) -> impl Iterator<Item = &ActionRecord> {
        self.records.iter()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Actions ever appended (monotonic, unaffected by eviction).
    pub fn appended(&self) -> u64 {
        self.next_id
    }

    /// JSON array of all retained records (oldest first).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| format!("\n    {}", r.to_json()))
            .collect();
        format!(
            "{{\n  \"appended\": {},\n  \"dropped\": {},\n  \"records\": [{}\n  ]\n}}\n",
            self.next_id,
            self.dropped,
            rows.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &str) -> ActionRecord {
        ActionRecord {
            id: 0,
            kind: kind.to_string(),
            policy: "p".to_string(),
            target: "t".to_string(),
            detail: "d".to_string(),
            state: ActionState::Pending,
            dry_run: false,
            planned_at_ns: 10.0,
            observe_at_ns: 50.0,
            metric: "m".to_string(),
            value_before: 1.0,
            predicted: 0.5,
            observed: None,
            observed_at_ns: None,
            err_pct: None,
            regressed: false,
            model_generation: 0,
        }
    }

    #[test]
    fn append_assigns_monotonic_ids() {
        let mut log = ActionLog::new();
        assert_eq!(log.append(record("a")), 1);
        assert_eq!(log.append(record("b")), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(1).unwrap().kind, "a");
        assert_eq!(log.appended(), 2);
    }

    #[test]
    fn observe_closes_the_record() {
        let mut log = ActionLog::new();
        let id = log.append(record("a"));
        let closed = log.observe(id, 0.4, 60.0, 20.0, false).unwrap();
        assert_eq!(closed.state, ActionState::Observed);
        assert_eq!(closed.observed, Some(0.4));
        assert_eq!(log.get(id).unwrap().err_pct, Some(20.0));
        assert!(log.observe(999, 0.0, 0.0, 0.0, false).is_none());
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let mut log = ActionLog::new();
        for _ in 0..(ACTION_LOG_CAPACITY + 5) {
            log.append(record("a"));
        }
        assert_eq!(log.len(), ACTION_LOG_CAPACITY);
        assert_eq!(log.dropped(), 5);
        // Evicted ids no longer resolve.
        assert!(log.get(1).is_none());
        assert_eq!(log.appended() as usize, ACTION_LOG_CAPACITY + 5);
    }

    #[test]
    fn json_shape_round_trips_nulls() {
        let mut log = ActionLog::new();
        let id = log.append(record("adjust"));
        let j = log.to_json();
        assert!(j.contains("\"observed\": null"));
        log.observe(id, 0.4, 60.0, 20.0, true);
        let j = log.to_json();
        assert!(j.contains("\"observed\": 0.4"));
        assert!(j.contains("\"regressed\": true"));
        assert!(j.contains("\"records\": ["));
    }
}
