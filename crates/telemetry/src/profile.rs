//! Continuous virtual-clock sampling profiler.
//!
//! The simulation has no wall clock to interrupt, but it has something
//! better: every nanosecond of simulated work flows through the kernel's
//! `charge_cpu` / `charge_overhead` ledger. The [`Profiler`] piggybacks
//! on that ledger the way a `perf_event` sampler piggybacks on the CPU
//! cycle counter: each task accrues *credit* as it is charged, and every
//! time the credit crosses the sampling period a profiling interrupt
//! "fires", snapshotting the task's current execution-context stack into
//! a folded-stack map. Because firing is derived from charged virtual
//! time, the profile is exact and deterministic: a stack's sample count
//! is `floor(charged_ns / period)` with no statistical jitter.
//!
//! Stacks are built cooperatively: components push named frames with
//! [`Profiler::push_frame`] (RAII — the returned [`FrameGuard`] pops on
//! drop). Frames can be marked as *roots*; folding renders the stack
//! from the **last** root frame onward. That is what makes overhead
//! attribution honest: when TScout's marker handling runs in the middle
//! of a DBMS pipeline, it pushes a `tscout` root frame, so the marker's
//! virtual time folds under `tscout;...`, not under the `dbms;...` stack
//! it interrupted — exactly the DBMS-work vs. collection-work split of
//! the paper's Figs. 5–6.
//!
//! The folded output (`stack;frames count` per line) renders directly
//! with any flamegraph tool; [`Profiler::attribution`] additionally
//! aggregates per top-level frame and reports the `tscout`/`dbms`
//! virtual-ns ratio as a single overhead number.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Default sampling period: one sample per 100 µs of charged virtual
/// time. Fine enough to see every OU in a figure run, coarse enough to
/// keep folded maps small.
pub const DEFAULT_PROFILE_PERIOD_NS: f64 = 100_000.0;

/// Stack name used when an interrupt fires with no frames pushed
/// (e.g. bookkeeping charges outside any instrumented scope).
pub const OTHER_STACK: &str = "(other)";

#[derive(Debug, Default)]
struct TaskFrames {
    /// `(name, is_root)` — roots re-base attribution (see module docs).
    frames: Vec<(String, bool)>,
}

#[derive(Debug, Default)]
struct ProfileState {
    tasks: Vec<TaskFrames>,
    /// Charged-but-unsampled virtual ns per task.
    credit: Vec<f64>,
    /// Folded stack -> (samples, attributed virtual ns).
    folded: BTreeMap<String, FoldedEntry>,
    /// Total profiling interrupts fired (== sum of folded samples).
    interrupts: u64,
}

/// Per-folded-stack accumulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FoldedEntry {
    pub samples: u64,
    pub ns: f64,
}

impl ProfileState {
    fn task_mut(&mut self, task: usize) -> &mut TaskFrames {
        if task >= self.tasks.len() {
            self.tasks.resize_with(task + 1, TaskFrames::default);
            self.credit.resize(task + 1, 0.0);
        }
        &mut self.tasks[task]
    }

    /// Render the task's stack from its last root frame onward.
    fn fold_key(&self, task: usize) -> String {
        let Some(t) = self.tasks.get(task) else {
            return OTHER_STACK.to_string();
        };
        let start = t.frames.iter().rposition(|(_, root)| *root).unwrap_or(0);
        let frames = &t.frames[start..];
        if frames.is_empty() {
            return OTHER_STACK.to_string();
        }
        let mut key = String::new();
        for (i, (name, _)) in frames.iter().enumerate() {
            if i > 0 {
                key.push(';');
            }
            key.push_str(name);
        }
        key
    }
}

/// Cheap-clone handle to a shared sampling profiler.
///
/// Like [`crate::Telemetry`], clones share state; the `Kernel` owns the
/// canonical handle and every instrumented component clones it. The
/// period is stored as `f64` bits in an atomic so the disabled fast path
/// (`period == 0`) costs one relaxed load and no lock.
#[derive(Clone, Default)]
pub struct Profiler {
    period_bits: Arc<AtomicU64>,
    inner: Arc<Mutex<ProfileState>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("Profiler")
            .field("period_ns", &self.period_ns())
            .field("interrupts", &st.interrupts)
            .field("stacks", &st.folded.len())
            .finish()
    }
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfileState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Set the sampling period in virtual ns. `<= 0` (or non-finite)
    /// disables the profiler; frame pushes and charges become no-ops.
    pub fn set_period_ns(&self, period_ns: f64) {
        let p = if period_ns.is_finite() && period_ns > 0.0 {
            period_ns
        } else {
            0.0
        };
        self.period_bits.store(p.to_bits(), Ordering::Relaxed);
    }

    /// Current sampling period (0.0 when disabled).
    pub fn period_ns(&self) -> f64 {
        f64::from_bits(self.period_bits.load(Ordering::Relaxed))
    }

    pub fn is_enabled(&self) -> bool {
        self.period_ns() > 0.0
    }

    /// Push a named frame onto `task`'s stack; the returned guard pops
    /// it on drop. `root` re-bases folding at this frame (see module
    /// docs). No-op (no allocation, no lock) while disabled.
    pub fn push_frame(&self, task: usize, name: &str, root: bool) -> FrameGuard {
        self.push_frame_lazy(task, root, || name.to_string())
    }

    /// Like [`Self::push_frame`] but the name is only materialized when
    /// the profiler is enabled — use on hot paths where the name is a
    /// `format!`.
    pub fn push_frame_lazy(
        &self,
        task: usize,
        root: bool,
        name: impl FnOnce() -> String,
    ) -> FrameGuard {
        if !self.is_enabled() {
            return FrameGuard { owner: None };
        }
        self.lock().task_mut(task).frames.push((name(), root));
        FrameGuard {
            owner: Some((self.clone(), task)),
        }
    }

    fn pop_frame(&self, task: usize) {
        let mut st = self.lock();
        if let Some(t) = st.tasks.get_mut(task) {
            t.frames.pop();
        }
    }

    /// The profiling interrupt source: credit `ns` of charged virtual
    /// time to `task` and fire `floor(credit / period)` samples against
    /// its current stack. Called by the kernel from its charge ledger;
    /// must never alter the charge itself.
    pub fn on_charge(&self, task: usize, ns: f64) {
        let period = self.period_ns();
        if period <= 0.0 || ns.is_nan() || ns <= 0.0 {
            return;
        }
        let mut st = self.lock();
        st.task_mut(task);
        st.credit[task] += ns;
        let fires = (st.credit[task] / period).floor();
        if fires < 1.0 {
            return;
        }
        let n = fires as u64;
        st.credit[task] -= fires * period;
        let key = st.fold_key(task);
        let e = st.folded.entry(key).or_default();
        e.samples += n;
        e.ns += fires * period;
        st.interrupts += n;
    }

    /// Total profiling interrupts fired so far.
    pub fn interrupts_fired(&self) -> u64 {
        self.lock().interrupts
    }

    /// Folded stacks, sorted by stack name.
    pub fn folded(&self) -> Vec<(String, FoldedEntry)> {
        self.lock()
            .folded
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Flamegraph-ready folded-stack text: one `stack;frames count`
    /// line per distinct stack.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (k, e) in &self.lock().folded {
            out.push_str(k);
            out.push(' ');
            out.push_str(&e.samples.to_string());
            out.push('\n');
        }
        out
    }

    /// Per-top-level-frame attribution summary (see [`Attribution`]).
    pub fn attribution(&self) -> Attribution {
        let st = self.lock();
        let mut by_top: BTreeMap<String, FoldedEntry> = BTreeMap::new();
        for (k, e) in &st.folded {
            let top = k.split(';').next().unwrap_or(OTHER_STACK).to_string();
            let t = by_top.entry(top).or_default();
            t.samples += e.samples;
            t.ns += e.ns;
        }
        Attribution {
            by_top_frame: by_top,
            total_interrupts: st.interrupts,
        }
    }

    /// Merge another profiler's folded samples into this one (used by
    /// the bench harness to accumulate across per-run kernels).
    pub fn absorb(&self, other: &Profiler) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let theirs: Vec<(String, FoldedEntry)> = other.folded();
        let their_interrupts = other.interrupts_fired();
        let mut st = self.lock();
        for (k, e) in theirs {
            let mine = st.folded.entry(k).or_default();
            mine.samples += e.samples;
            mine.ns += e.ns;
        }
        st.interrupts += their_interrupts;
    }
}

/// RAII frame guard returned by [`Profiler::push_frame`]; pops the
/// frame when dropped. Holds a cloned handle, so it never borrows the
/// kernel or the component that pushed it.
#[must_use = "the frame pops when this guard drops"]
#[derive(Debug)]
pub struct FrameGuard {
    owner: Option<(Profiler, usize)>,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if let Some((p, task)) = self.owner.take() {
            p.pop_frame(task);
        }
    }
}

/// Overhead attribution: samples and virtual ns grouped by the
/// top-level (root) frame of each folded stack.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    pub by_top_frame: BTreeMap<String, FoldedEntry>,
    pub total_interrupts: u64,
}

impl Attribution {
    /// Virtual ns attributed to stacks rooted at `top`.
    pub fn ns_of(&self, top: &str) -> f64 {
        self.by_top_frame.get(top).map(|e| e.ns).unwrap_or(0.0)
    }

    /// The paper's Fig. 5/6 overhead number: collection-side virtual ns
    /// over DBMS-side virtual ns. `None` when either side has no
    /// samples (a ratio over zero is noise, not a measurement).
    pub fn tscout_dbms_ratio(&self) -> Option<f64> {
        let tscout = self.ns_of("tscout");
        let dbms = self.ns_of("dbms");
        if tscout > 0.0 && dbms > 0.0 {
            Some(tscout / dbms)
        } else {
            None
        }
    }

    /// JSON object: per-top-frame `{samples, ns}` plus the ratio.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"by_top_frame\": {");
        let entries: Vec<String> = self
            .by_top_frame
            .iter()
            .map(|(k, e)| {
                format!(
                    "\"{}\": {{\"samples\": {}, \"ns\": {}}}",
                    crate::json_escape(k),
                    e.samples,
                    crate::json_num(e.ns),
                )
            })
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str(&format!(
            "}}, \"total_interrupts\": {}, \"tscout_dbms_ratio\": {}}}",
            self.total_interrupts,
            self.tscout_dbms_ratio()
                .map(crate::json_num)
                .unwrap_or_else(|| "null".to_string()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::new();
        assert!(!p.is_enabled());
        let _g = p.push_frame(0, "dbms", true);
        p.on_charge(0, 1e9);
        assert_eq!(p.interrupts_fired(), 0);
        assert!(p.folded().is_empty());
        assert_eq!(p.folded_text(), "");
    }

    #[test]
    fn samples_are_floor_of_charge_over_period() {
        let p = Profiler::new();
        p.set_period_ns(100.0);
        let _g = p.push_frame(3, "dbms", true);
        p.on_charge(3, 250.0); // 2 fires, 50 credit left
        p.on_charge(3, 49.0); // 99 credit — no fire
        p.on_charge(3, 1.0); // 100 credit — 1 fire
        assert_eq!(p.interrupts_fired(), 3);
        let folded = p.folded();
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].0, "dbms");
        assert_eq!(folded[0].1.samples, 3);
        assert_eq!(folded[0].1.ns, 300.0);
    }

    #[test]
    fn root_frames_rebase_attribution() {
        let p = Profiler::new();
        p.set_period_ns(10.0);
        let _dbms = p.push_frame(0, "dbms", true);
        let _op = p.push_frame(0, "ou:seq_scan", false);
        p.on_charge(0, 10.0);
        {
            let _ts = p.push_frame(0, "tscout", true);
            let _col = p.push_frame(0, "collector", false);
            p.on_charge(0, 20.0);
        }
        p.on_charge(0, 10.0); // back under dbms after guards dropped
        let folded: BTreeMap<String, FoldedEntry> = p.folded().into_iter().collect();
        assert_eq!(folded["dbms;ou:seq_scan"].samples, 2);
        assert_eq!(folded["tscout;collector"].samples, 2);
        assert_eq!(p.interrupts_fired(), 4);
    }

    #[test]
    fn empty_stack_folds_to_other() {
        let p = Profiler::new();
        p.set_period_ns(5.0);
        p.on_charge(1, 12.0);
        let folded = p.folded();
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].0, OTHER_STACK);
        assert_eq!(folded[0].1.samples, 2);
    }

    #[test]
    fn folded_samples_sum_to_interrupts() {
        let p = Profiler::new();
        p.set_period_ns(7.0);
        for task in 0..4usize {
            let _g = p.push_frame(task, if task % 2 == 0 { "dbms" } else { "tscout" }, true);
            p.on_charge(task, 13.0 * (task as f64 + 1.0));
        }
        let total: u64 = p.folded().iter().map(|(_, e)| e.samples).sum();
        assert_eq!(total, p.interrupts_fired());
        assert!(p.interrupts_fired() > 0);
    }

    #[test]
    fn attribution_ratio_and_json() {
        let p = Profiler::new();
        p.set_period_ns(10.0);
        {
            let _g = p.push_frame(0, "dbms", true);
            let _h = p.push_frame(0, "ou:sort", false);
            p.on_charge(0, 300.0);
        }
        {
            let _g = p.push_frame(0, "tscout", true);
            p.on_charge(0, 100.0);
        }
        let a = p.attribution();
        assert_eq!(a.ns_of("dbms"), 300.0);
        assert_eq!(a.ns_of("tscout"), 100.0);
        let r = a.tscout_dbms_ratio().unwrap();
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
        let j = a.to_json();
        assert!(j.contains("\"tscout_dbms_ratio\""));
        assert!(j.contains("\"dbms\""));
        // Single-sided profile has no ratio.
        let q = Profiler::new();
        q.set_period_ns(1.0);
        let _g = q.push_frame(0, "dbms", true);
        q.on_charge(0, 5.0);
        assert!(q.attribution().tscout_dbms_ratio().is_none());
        assert!(q.attribution().to_json().contains("null"));
    }

    #[test]
    fn absorb_merges_and_self_absorb_is_noop() {
        let a = Profiler::new();
        let b = Profiler::new();
        a.set_period_ns(10.0);
        b.set_period_ns(10.0);
        {
            let _g = a.push_frame(0, "dbms", true);
            a.on_charge(0, 50.0);
        }
        {
            let _g = b.push_frame(0, "dbms", true);
            b.on_charge(0, 30.0);
        }
        a.absorb(&b);
        assert_eq!(a.interrupts_fired(), 8);
        let folded: BTreeMap<String, FoldedEntry> = a.folded().into_iter().collect();
        assert_eq!(folded["dbms"].samples, 8);
        a.absorb(&a.clone());
        assert_eq!(a.interrupts_fired(), 8);
    }

    #[test]
    fn folded_text_is_flamegraph_shaped() {
        let p = Profiler::new();
        p.set_period_ns(10.0);
        let _g = p.push_frame(0, "dbms", true);
        let _h = p.push_frame(0, "wal", false);
        p.on_charge(0, 35.0);
        assert_eq!(p.folded_text(), "dbms;wal 3\n");
    }
}
