//! The metric registry: named, labeled counters / gauges / histograms,
//! with Prometheus text and JSON snapshot export.

use std::collections::BTreeMap;

use crate::actions::ActionLog;
use crate::drift::DriftRegistry;
use crate::health::{Alert, HealthEngine, HealthState, Selector, Signals};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::spans::{Span, SpanRing};
use crate::stmt::StmtStats;
use crate::timeseries::{TimeSeries, Window};
use crate::trace::{FlightRecorderArm, Stage, TraceId, TraceStats, Tracer};
use crate::{json_escape, json_num};

/// A metric identity: name plus sorted `label=value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Prometheus-style rendering: `name{k="v",k2="v2"}`. Label values
    /// are escaped per the text exposition format: backslash, double
    /// quote, and line feed (in that order, so the backslash introduced
    /// by `\n` is not re-escaped).
    fn render(&self) -> String {
        self.render_named(&self.name, None)
    }

    /// Render under an explicit sample name (a family name with a
    /// `_total`/`_bucket`/`_sum`/`_count` suffix applied), optionally
    /// with one extra label appended in sorted position (`le` for
    /// histogram buckets).
    fn render_named(&self, name: &str, extra: Option<(&str, &str)>) -> String {
        fn escape(v: &str) -> String {
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        let mut pairs: Vec<(&str, String)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), escape(v)))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push((k, escape(v)));
            pairs.sort();
        }
        if pairs.is_empty() {
            return name.to_string();
        }
        let inner: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{name}{{{}}}", inner.join(","))
    }
}

/// Cached metric identities for the statement-stats fast path — it runs
/// on every executed statement and cannot afford a key allocation per
/// counter update.
fn stmt_metric_keys() -> &'static (MetricKey, MetricKey, MetricKey) {
    static KEYS: std::sync::OnceLock<(MetricKey, MetricKey, MetricKey)> =
        std::sync::OnceLock::new();
    KEYS.get_or_init(|| {
        (
            MetricKey::new("db_stmt_recorded_total", &[]),
            MetricKey::new("db_stmt_evicted_total", &[]),
            MetricKey::new("db_stmt_fingerprints", &[]),
        )
    })
}

/// The registry proper. Usually accessed through the cheap-clone
/// [`crate::Telemetry`] handle rather than directly.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
    spans: SpanRing,
    timeseries: TimeSeries,
    drift: DriftRegistry,
    health: HealthEngine,
    tracer: Tracer,
    flightrec: FlightRecorderArm,
    stmts: StmtStats,
    actions: ActionLog,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metric series (all kinds).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += v;
    }

    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Distinct metric *names* (labels stripped) across all kinds, sorted.
    /// This is what the docs cross-check compares against
    /// [`crate::docs::METRIC_DOCS`].
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// All `(key, value)` counter pairs for a name, across label sets.
    pub fn counters_named(&self, name: &str) -> Vec<(MetricKey, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Add `delta` (possibly negative) to a gauge, creating it at 0.
    /// Occupancy-style gauges (buffered samples, open segments) use this
    /// so concurrent owners sharing a registry aggregate instead of
    /// overwriting each other.
    pub fn gauge_add(&mut self, name: &str, labels: &[(&str, &str)], delta: f64) {
        *self
            .gauges
            .entry(MetricKey::new(name, labels))
            .or_insert(0.0) += delta;
    }

    pub fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let e = self
            .gauges
            .entry(MetricKey::new(name, labels))
            .or_insert(f64::NEG_INFINITY);
        if v > *e {
            *e = v;
        }
    }

    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.gauges
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0.0)
    }

    pub fn hist_record(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_default()
            .record(v);
    }

    /// Register the histogram `name{labels}` without recording an
    /// observation — pre-declaration for surfaces (the obsd operator
    /// plane) whose metric names must exist from startup so the docs
    /// cross-check sees them, without polluting the distribution.
    pub fn hist_declare(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_default();
    }

    pub fn hist_snapshot(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        self.histograms
            .get(&MetricKey::new(name, labels))
            .map(Histogram::snapshot)
    }

    pub fn record_span(&mut self, name: &str, category: &str, start_ns: f64, dur_ns: f64) {
        self.spans.record(Span {
            name: name.to_string(),
            category: category.to_string(),
            start_ns,
            dur_ns,
        });
    }

    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Scrape the current cumulative counter values into the embedded
    /// [`TimeSeries`] as a window ending at virtual time `now_ns`.
    pub fn scrape_window(&mut self, now_ns: f64) {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.render(), *v))
            .collect();
        self.timeseries.push(Window {
            end_ns: now_ns,
            counters,
        });
    }

    pub fn timeseries(&self) -> &TimeSeries {
        &self.timeseries
    }

    /// JSON export of the scraped time series (see
    /// [`TimeSeries::to_json`]).
    pub fn timeseries_json(&self) -> String {
        self.timeseries.to_json()
    }

    pub fn drift(&self) -> &DriftRegistry {
        &self.drift
    }

    pub fn drift_mut(&mut self) -> &mut DriftRegistry {
        &mut self.drift
    }

    pub fn health(&self) -> &HealthEngine {
        &self.health
    }

    pub fn health_mut(&mut self) -> &mut HealthEngine {
        &mut self.health
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    pub fn stmts(&self) -> &StmtStats {
        &self.stmts
    }

    pub fn stmts_mut(&mut self) -> &mut StmtStats {
        &mut self.stmts
    }

    pub fn actions(&self) -> &ActionLog {
        &self.actions
    }

    pub fn actions_mut(&mut self) -> &mut ActionLog {
        &mut self.actions
    }

    /// Fold one executed statement into the statement-stats registry and
    /// sync its internal counters into registry metrics
    /// (`db_stmt_recorded_total`, `db_stmt_evicted_total`,
    /// `db_stmt_fingerprints`). A zero value still registers the
    /// eviction counter, so all three exist from the first recorded
    /// statement on — `metrics_doc --check` relies on that. This runs
    /// once per executed statement, so the steady state updates the
    /// counters in place through cached keys (no allocation) and only
    /// touches the eviction counter / fingerprint gauge when their
    /// values actually moved.
    pub fn stmt_record(
        &mut self,
        fingerprint: &str,
        actual_ns: f64,
        rows: u64,
        ou_ns: &[(&str, f64)],
        predicted_ns: Option<f64>,
    ) {
        let evicted_before = self.stmts.evicted();
        let len_before = self.stmts.len();
        self.stmts
            .record(fingerprint, actual_ns, rows, ou_ns, predicted_ns);
        let (rk, ek, fk) = stmt_metric_keys();
        match self.counters.get_mut(rk) {
            Some(v) => *v += 1,
            None => {
                // First record (or a registry reset): register all three
                // series at their authoritative values.
                self.counters.insert(rk.clone(), self.stmts.recorded());
                self.counters.insert(ek.clone(), self.stmts.evicted());
                self.gauges.insert(fk.clone(), self.stmts.len() as f64);
                return;
            }
        }
        if self.stmts.evicted() != evicted_before {
            if let Some(v) = self.counters.get_mut(ek) {
                *v += self.stmts.evicted() - evicted_before;
            }
        }
        if self.stmts.len() != len_before {
            if let Some(v) = self.gauges.get_mut(fk) {
                *v = self.stmts.len() as f64;
            }
        }
    }

    /// Top-K statement-stats snapshot for the flight recorder: the
    /// heaviest fingerprints by total actual ns and the worst by rolling
    /// predicted-vs-actual MAPE, so a CRITICAL bundle carries
    /// query-level context.
    fn stmt_json_topk(&self, k: usize) -> String {
        let entry = |e: &crate::stmt::StmtEntry| {
            format!(
                "\n      {{\"fingerprint\": \"{}\", \"calls\": {}, \"total_ns\": {}, \
                 \"mean_ns\": {}, \"rows\": {}, \"mape_pct\": {}}}",
                json_escape(&e.fingerprint),
                e.calls,
                json_num(e.total_ns),
                json_num(e.mean_ns()),
                e.rows,
                json_num(e.mape_pct()),
            )
        };
        let by_total: Vec<String> = self
            .stmts
            .top_by_total_ns(k)
            .into_iter()
            .map(entry)
            .collect();
        let by_mape: Vec<String> = self.stmts.top_by_mape(k).into_iter().map(entry).collect();
        format!(
            "{{\n    \"by_total_ns\": [{}\n    ],\n    \"by_mape_pct\": [{}\n    ]\n  }}",
            by_total.join(","),
            by_mape.join(","),
        )
    }

    /// Turn every trace completion the tracer produced since the last
    /// flush into metrics: per-stage latency histograms
    /// (`tscout_trace_stage_ns{stage}` — the exemplar TraceIds attached
    /// to these buckets live in the tracer and export via
    /// `ts_stat_pipeline` / the trace JSON), outcome counters, and the
    /// critical-path counter.
    fn trace_flush_completions(&mut self) {
        for c in self.tracer.take_pending() {
            self.counter_add(
                "tscout_traces_completed_total",
                &[("outcome", c.outcome.name())],
                1,
            );
            if let Some(s) = c.critical {
                self.counter_add(
                    "tscout_trace_critical_stage_total",
                    &[("stage", s.name())],
                    1,
                );
            }
            for (stage, dur) in c.stage_durs {
                self.hist_record("tscout_trace_stage_ns", &[("stage", stage.name())], dur);
            }
        }
    }

    /// Sync the tracer's drop/eviction counters into registry counters
    /// (they originate inside the tracer's bounded structures).
    fn trace_sync_counters(&mut self) {
        let st = self.tracer.stats();
        for (name, v) in [
            ("tscout_traces_started_total", st.started),
            ("tscout_traces_dropped_total", st.dropped),
            ("tscout_trace_ring_evicted_total", st.ring_evicted),
        ] {
            let have = self.counter_value(name, &[]);
            // A zero add still registers the name, so the counters exist
            // (at 0) from the first sampled marker on — `metrics_doc
            // --check` relies on a traced run registering all of them.
            self.counter_add(name, &[], v.saturating_sub(have));
        }
    }

    /// Sampling decision at marker fire time (see [`Tracer::maybe_begin`]).
    pub fn trace_begin(
        &mut self,
        ou: u16,
        subsystem: u8,
        tid: u64,
        now_ns: f64,
    ) -> Option<TraceId> {
        let id = self.tracer.maybe_begin(ou, subsystem, tid, now_ns);
        if id.is_some() {
            self.trace_sync_counters();
            self.trace_flush_completions();
        }
        id
    }

    pub fn trace_publish(&mut self, id: TraceId, now_ns: f64, ring_depth: u64) {
        self.tracer.on_publish(id, now_ns, ring_depth);
    }

    pub fn trace_marker_abort(&mut self, id: TraceId, now_ns: f64, reason: &str) {
        self.tracer.on_marker_abort(id, now_ns, reason);
        self.trace_flush_completions();
        self.trace_sync_counters();
    }

    pub fn trace_ring_evict(&mut self, ou: u16, tid: u64, now_ns: f64) {
        self.tracer.on_ring_evict(ou, tid, now_ns);
        self.trace_flush_completions();
        self.trace_sync_counters();
    }

    /// Processor-side stamp (see [`Tracer::on_consume`]). Returns
    /// whether a trace matched, so the caller charges tracing cost only
    /// for traced records.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_consume(
        &mut self,
        ou: u16,
        tid: u64,
        drain_ns: f64,
        sink_enter_ns: f64,
        sink_exit_ns: f64,
        queue_depth: u64,
        terminal: bool,
    ) -> bool {
        let hit = self.tracer.on_consume(
            ou,
            tid,
            drain_ns,
            sink_enter_ns,
            sink_exit_ns,
            queue_depth,
            terminal,
        );
        if hit {
            self.trace_flush_completions();
            self.trace_sync_counters();
        }
        hit
    }

    pub fn trace_decode_error(&mut self, ou: u16, tid: u64, now_ns: f64) {
        self.tracer.on_decode_error(ou, tid, now_ns);
        self.trace_flush_completions();
        self.trace_sync_counters();
    }

    /// Collective lifecycle stamp for parked traces.
    pub fn trace_lifecycle_stamp(&mut self, stage: Stage, enter_ns: f64, exit_ns: f64, depth: u64) {
        self.tracer.lifecycle_stamp(stage, enter_ns, exit_ns, depth);
    }

    /// Retrain completion: parked traces terminate delivered at model
    /// `generation`. Returns how many completed.
    pub fn trace_lifecycle_complete(&mut self, now_ns: f64, generation: u64) -> usize {
        let n = self.tracer.lifecycle_complete(now_ns, generation);
        self.trace_flush_completions();
        self.trace_sync_counters();
        n
    }

    pub fn trace_compacted(&mut self, n: u64, now_ns: f64) {
        self.tracer.on_compacted(n, now_ns);
        self.trace_flush_completions();
        self.trace_sync_counters();
    }

    pub fn trace_stats(&self) -> TraceStats {
        self.tracer.stats()
    }

    /// Per-stage `(p50, p99)` from the trace latency histograms.
    fn trace_stage_p50p99(&self, stage: Stage) -> (f64, f64) {
        self.hist_snapshot("tscout_trace_stage_ns", &[("stage", stage.name())])
            .map(|s| (s.p50, s.p99))
            .unwrap_or((0.0, 0.0))
    }

    /// JSON export of the tracer: stats, per-stage summary (with p50/p99
    /// from the registry histograms and exemplar TraceIds), and the
    /// completed-trace ring. Written as `results/trace_<fig>.json`.
    pub fn trace_json(&self) -> String {
        self.tracer.to_json(&|s| self.trace_stage_p50p99(s))
    }

    /// Arm the flight recorder: on any CRITICAL health transition,
    /// [`Registry::flight_record`] writes an evidence bundle under `dir`.
    pub fn arm_flight_recorder(&mut self, dir: std::path::PathBuf, fig: &str) {
        self.flightrec.dir = Some(dir);
        self.flightrec.fig = fig.to_string();
    }

    pub fn flight_recorder_armed(&self) -> bool {
        self.flightrec.dir.is_some()
    }

    /// Armed flight-recorder output directory and fig name, if armed —
    /// the obsd operator plane lists/fetches bundles from here.
    pub fn flight_recorder_target(&self) -> Option<(std::path::PathBuf, String)> {
        self.flightrec
            .dir
            .clone()
            .map(|d| (d, self.flightrec.fig.clone()))
    }

    /// If armed and `alerts` contains a fired CRITICAL transition, write
    /// `flightrec_<fig>_<seq>.json` bundling the triggering alerts, the
    /// trace ring, the alert ring + health state, the full metrics
    /// snapshot, and the active (folded) profile. Returns the bundle
    /// path when one was written.
    pub fn flight_record(
        &mut self,
        now_ns: f64,
        alerts: &[Alert],
        profile_folded: &str,
    ) -> Option<std::path::PathBuf> {
        let dir = self.flightrec.dir.clone()?;
        let trig: Vec<&Alert> = alerts
            .iter()
            .filter(|a| a.fired() && a.to == HealthState::Critical)
            .collect();
        if trig.is_empty() {
            return None;
        }
        self.flightrec.seq += 1;
        let path = dir.join(format!(
            "flightrec_{}_{}.json",
            self.flightrec.fig, self.flightrec.seq
        ));
        let trig_json: Vec<String> = trig
            .iter()
            .map(|a| {
                format!(
                    "\n    {{\"rule\": \"{}\", \"subsystem\": \"{}\", \"target\": \"{}\", \
                     \"at_ns\": {}, \"value\": {}, \"threshold\": {}}}",
                    json_escape(&a.rule),
                    json_escape(&a.subsystem),
                    json_escape(&a.target),
                    json_num(a.at_ns),
                    json_num(a.value),
                    json_num(a.threshold),
                )
            })
            .collect();
        let bundle = format!(
            "{{\n  \"at_ns\": {},\n  \"fig\": \"{}\",\n  \"seq\": {},\n  \
             \"triggering_alerts\": [{}\n  ],\n  \"traces\": {},\n  \"health\": {},\n  \
             \"statements\": {},\n  \
             \"metrics\": {},\n  \"profile_folded\": \"{}\"\n}}\n",
            json_num(now_ns),
            json_escape(&self.flightrec.fig),
            self.flightrec.seq,
            trig_json.join(","),
            self.trace_json().trim_end(),
            self.health_json().trim_end(),
            self.stmt_json_topk(5),
            self.snapshot_json().trim_end(),
            json_escape(profile_folded),
        );
        std::fs::create_dir_all(&dir).ok();
        if std::fs::write(&path, bundle).is_err() {
            return None;
        }
        self.counter_add("ts_flightrec_bundles_total", &[], 1);
        Some(path)
    }

    /// If armed, write a flight-recorder bundle for an action-engine
    /// intervention whose observed outcome regressed its target metric:
    /// same evidence as [`Registry::flight_record`], but keyed by a
    /// `triggering_action` object naming the action id instead of a
    /// CRITICAL alert. Returns the bundle path when one was written.
    pub fn flight_record_action(
        &mut self,
        now_ns: f64,
        action_id: u64,
        profile_folded: &str,
    ) -> Option<std::path::PathBuf> {
        let dir = self.flightrec.dir.clone()?;
        let action = self.actions.get(action_id)?.clone();
        self.flightrec.seq += 1;
        let path = dir.join(format!(
            "flightrec_{}_{}.json",
            self.flightrec.fig, self.flightrec.seq
        ));
        let bundle = format!(
            "{{\n  \"at_ns\": {},\n  \"fig\": \"{}\",\n  \"seq\": {},\n  \
             \"triggering_action\": {},\n  \"traces\": {},\n  \"health\": {},\n  \
             \"statements\": {},\n  \
             \"metrics\": {},\n  \"profile_folded\": \"{}\"\n}}\n",
            json_num(now_ns),
            json_escape(&self.flightrec.fig),
            self.flightrec.seq,
            action.to_json(),
            self.trace_json().trim_end(),
            self.health_json().trim_end(),
            self.stmt_json_topk(5),
            self.snapshot_json().trim_end(),
            json_escape(profile_folded),
        );
        std::fs::create_dir_all(&dir).ok();
        if std::fs::write(&path, bundle).is_err() {
            return None;
        }
        self.counter_add("ts_flightrec_bundles_total", &[], 1);
        Some(path)
    }

    /// Feed one decoded training sample into the OU's drift channels
    /// (the Processor calls this per point).
    pub fn observe_ou_sample(
        &mut self,
        ou: &str,
        subsystem: &str,
        target_ns: f64,
        feature_norm: f64,
    ) {
        self.drift
            .observe_sample(ou, subsystem, target_ns, feature_norm);
    }

    /// Feed one live-model residual pair (the model lifecycle calls
    /// this at its retrain cadence).
    pub fn observe_residual(&mut self, ou: &str, predicted_ns: f64, actual_ns: f64) {
        self.drift.observe_residual(ou, predicted_ns, actual_ns);
    }

    /// Score every OU's drift windows and publish the (sticky) scores
    /// as gauges: `ts_drift_psi{channel,ou}`, `ts_drift_ks{channel,ou}`,
    /// `ts_drift_score{ou}`, `ts_residual_mape_pct{ou}`.
    pub fn drift_evaluate(&mut self) {
        let scores = self.drift.evaluate();
        self.counter_add("ts_drift_evaluations_total", &[], 1);
        for s in scores {
            let ou = s.ou.as_str();
            self.gauge_set("ts_drift_score", &[("ou", ou)], s.drift_score);
            for (channel, psi, ks) in [
                ("target", s.psi_target, s.ks_target),
                ("feature", s.psi_feature, s.ks_feature),
            ] {
                self.gauge_set("ts_drift_psi", &[("channel", channel), ("ou", ou)], psi);
                self.gauge_set("ts_drift_ks", &[("channel", channel), ("ou", ou)], ks);
            }
            if s.residual_mape_pct > 0.0 || self.drift.ou(ou).is_some_and(|d| d.residual_points > 0)
            {
                self.gauge_set("ts_residual_mape_pct", &[("ou", ou)], s.residual_mape_pct);
            }
        }
    }

    /// Rebaseline every OU's drift channels after an intentional
    /// distribution change (an accepted retrain actuated by the action
    /// engine): the frozen references re-learn from the post-change
    /// stream, and the sticky score gauges are zeroed so the health
    /// rules read recovery instead of the stale pre-change scores.
    /// Returns how many OUs were rebaselined.
    pub fn drift_rebaseline_all(&mut self) -> usize {
        let n = self.drift.rebaseline_all();
        let ous: Vec<String> = self.drift.iter().map(|(name, _)| name.clone()).collect();
        for ou in &ous {
            self.gauge_set("ts_drift_score", &[("ou", ou)], 0.0);
            for channel in ["target", "feature"] {
                self.gauge_set("ts_drift_psi", &[("channel", channel), ("ou", ou)], 0.0);
                self.gauge_set("ts_drift_ks", &[("channel", channel), ("ou", ou)], 0.0);
            }
        }
        self.counter_add("ts_drift_rebaselines_total", &[], 1);
        n
    }

    /// Run the health engine over the current gauges and counter rates,
    /// count transitions into `alerts_fired_total` /
    /// `alerts_recovered_total`, and publish `ts_health_state` per
    /// subsystem. Returns this tick's transitions.
    pub fn health_tick(&mut self, now_ns: f64) -> Vec<Alert> {
        // Resolve only the signals the rules actually reference.
        let mut signals = Signals::default();
        for rule in self.health.rules() {
            match &rule.selector {
                Selector::Gauge(name) => {
                    if signals.gauges.contains_key(name) {
                        continue;
                    }
                    let series: Vec<(Vec<(String, String)>, f64)> = self
                        .gauges
                        .iter()
                        .filter(|(k, _)| &k.name == name)
                        .map(|(k, v)| (k.labels.clone(), *v))
                        .collect();
                    if !series.is_empty() {
                        signals.gauges.insert(name.clone(), series);
                    }
                }
                Selector::CounterRate(name) => {
                    if let Some(rate) = self.timeseries.latest_rate_per_sec(name) {
                        signals.rates.insert(name.clone(), rate);
                    }
                }
            }
        }
        let transitions = self.health.tick(now_ns, &signals);
        for t in &transitions {
            let name = if t.fired() {
                "alerts_fired_total"
            } else {
                "alerts_recovered_total"
            };
            self.counter_add(
                name,
                &[
                    ("rule", t.rule.as_str()),
                    ("subsystem", t.subsystem.as_str()),
                ],
                1,
            );
        }
        for (subsystem, state) in self.health.subsystem_states() {
            self.gauge_set(
                "ts_health_state",
                &[("subsystem", subsystem.as_str())],
                state.as_f64(),
            );
        }
        transitions
    }

    /// One combined observability turn, in dependency order: score drift
    /// (updates gauges), scrape the counters into the time series (the
    /// rates health rules read), then run the health rules.
    pub fn observability_tick(&mut self, now_ns: f64) -> Vec<Alert> {
        self.drift_evaluate();
        self.scrape_window(now_ns);
        self.health_tick(now_ns)
    }

    /// JSON export of the data-health state: per-subsystem health,
    /// per-OU drift summary, and the alert ring. Written by the bench
    /// binaries as `results/health_<fig>.json`.
    pub fn health_json(&self) -> String {
        let mut out = String::from("{\n  \"subsystems\": {");
        let subs: Vec<String> = self
            .health
            .subsystem_states()
            .iter()
            .map(|(s, st)| format!("\n    \"{}\": \"{}\"", json_escape(s), st.name()))
            .collect();
        out.push_str(&subs.join(","));
        out.push_str(&format!(
            "\n  }},\n  \"alerts_fired_total\": {},\n  \"health_ticks\": {},\n  \"ous\": {{",
            self.health.fired_total(),
            self.health.ticks,
        ));
        let ous: Vec<String> = self
            .drift
            .iter()
            .map(|(name, d)| {
                format!(
                    "\n    \"{}\": {{\"subsystem\": \"{}\", \"samples\": {}, \
                     \"drift_score\": {}, \"psi_target\": {}, \"psi_feature\": {}, \
                     \"ks_target\": {}, \"residual_mape_pct\": {}, \
                     \"target_p50_ns\": {}, \"target_p99_ns\": {}, \"health\": \"{}\"}}",
                    json_escape(name),
                    json_escape(&d.subsystem),
                    d.samples,
                    json_num(d.drift_score()),
                    json_num(d.target.psi()),
                    json_num(d.feature.psi()),
                    json_num(d.target.ks()),
                    json_num(d.residual_mape_pct()),
                    json_num(d.lifetime.quantile(0.5)),
                    json_num(d.lifetime.quantile(0.99)),
                    self.health.state_for_target(name).name(),
                )
            })
            .collect();
        out.push_str(&ous.join(","));
        out.push_str("\n  },\n  \"alerts\": [");
        let alerts: Vec<String> = self
            .health
            .alerts()
            .map(|a| {
                format!(
                    "\n    {{\"seq\": {}, \"at_ns\": {}, \"rule\": \"{}\", \
                     \"subsystem\": \"{}\", \"target\": \"{}\", \"from\": \"{}\", \
                     \"to\": \"{}\", \"value\": {}, \"threshold\": {}}}",
                    a.seq,
                    json_num(a.at_ns),
                    json_escape(&a.rule),
                    json_escape(&a.subsystem),
                    json_escape(&a.target),
                    a.from.name(),
                    a.to.name(),
                    json_num(a.value),
                    json_num(a.threshold),
                )
            })
            .collect();
        out.push_str(&alerts.join(","));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Merge `other` into `self`: counters add, gauges take the max
    /// (every gauge we export is a level or high-water mark, for which
    /// max is the meaningful union), histograms merge bucket-wise, and
    /// spans append subject to ring capacity.
    pub fn merge_from(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if *v > *e {
                *e = *v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge_from(h);
        }
        for s in other.spans.iter() {
            self.spans.record(s.clone());
        }
        // Time series from different registries cover different
        // (overlapping) virtual timelines and cannot be concatenated
        // meaningfully; keep ours and adopt the other's only if we have
        // none (so a fold into an empty accumulator preserves one
        // representative run's dynamics).
        if self.timeseries.is_empty() && !other.timeseries.is_empty() {
            self.timeseries = other.timeseries.clone();
        }
        // Same reasoning for the drift windows and health state machine:
        // reference/live windows and hysteresis streaks from different
        // runs don't compose, so an empty (never-fed / never-ticked)
        // accumulator adopts the other side wholesale and an active one
        // keeps its own.
        if self.drift.is_empty() && !other.drift.is_empty() {
            self.drift = other.drift.clone();
        }
        if self.health.ticks == 0 && other.health.ticks > 0 {
            self.health = other.health.clone();
        }
        // Trace lineage from a different run doesn't interleave with
        // ours either: adopt wholesale into an idle accumulator only.
        if self.tracer.is_idle() && !other.tracer.is_idle() {
            self.tracer = other.tracer.clone();
        }
        // Statement stats carry LRU stamps from their own run's record
        // order, which don't compose across runs: same idle-adoption rule.
        if self.stmts.is_idle() && !other.stmts.is_idle() {
            self.stmts = other.stmts.clone();
        }
        // Action ids are per-run monotonic and don't compose either:
        // idle adoption, like the other stateful subsystems.
        if self.actions.is_empty() && !other.actions.is_empty() {
            self.actions = other.actions.clone();
        }
    }

    /// OpenMetrics-flavored text exposition: every family gets a
    /// `# HELP` (from [`crate::docs::METRIC_DOCS`] when documented) and
    /// `# TYPE` line, counters are normalized to a `_total` suffix, and
    /// histograms export their cumulative `_bucket{le="..."}` series
    /// with the mandatory `+Inf` bucket plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        fn header(out: &mut String, family: &str, kind: &str, doc_name: &str) {
            let help = crate::docs::metric_help(doc_name)
                .or_else(|| crate::docs::metric_help(family))
                .unwrap_or("(undocumented)");
            let help = help.replace('\\', "\\\\").replace('\n', "\\n");
            out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} {kind}\n"));
        }
        let mut out = String::new();
        let mut last_family = String::new();
        for (k, v) in &self.counters {
            let family = if k.name.ends_with("_total") {
                k.name.clone()
            } else {
                format!("{}_total", k.name)
            };
            if family != last_family {
                header(&mut out, &family, "counter", &k.name);
                last_family.clone_from(&family);
            }
            out.push_str(&format!("{} {v}\n", k.render_named(&family, None)));
        }
        // Span-ring loss is bookkeeping the ring keeps internally, not a
        // registry counter; surface it so span loss is never silent.
        header(
            &mut out,
            "telemetry_spans_dropped_total",
            "counter",
            "telemetry_spans_dropped_total",
        );
        out.push_str(&format!(
            "telemetry_spans_dropped_total {}\n",
            self.spans.dropped()
        ));
        last_family.clear();
        for (k, v) in &self.gauges {
            if k.name != last_family {
                header(&mut out, &k.name, "gauge", &k.name);
                last_family.clone_from(&k.name);
            }
            out.push_str(&format!("{} {v}\n", k.render()));
        }
        last_family.clear();
        for (k, h) in &self.histograms {
            if k.name != last_family {
                header(&mut out, &k.name, "histogram", &k.name);
                last_family.clone_from(&k.name);
            }
            let bucket = format!("{}_bucket", k.name);
            for (upper, cum) in h.cumulative_buckets() {
                out.push_str(&format!(
                    "{} {cum}\n",
                    k.render_named(&bucket, Some(("le", &format!("{upper}"))))
                ));
            }
            out.push_str(&format!(
                "{} {}\n",
                k.render_named(&bucket, Some(("le", "+Inf"))),
                h.count()
            ));
            out.push_str(&format!(
                "{} {}\n",
                k.render_named(&format!("{}_sum", k.name), None),
                h.sum()
            ));
            out.push_str(&format!(
                "{} {}\n",
                k.render_named(&format!("{}_count", k.name), None),
                h.count()
            ));
        }
        out
    }

    /// chrome://tracing trace-event JSON (`ph: "X"` complete events,
    /// microsecond timestamps as the format requires).
    pub fn spans_to_chrome_json(&self) -> String {
        let events: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{}}}",
                    json_escape(&s.name),
                    json_escape(&s.category),
                    json_num(s.start_ns / 1000.0),
                    json_num(s.dur_ns / 1000.0),
                )
            })
            .collect();
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    /// The combined snapshot the bench binaries persist as
    /// `results/telemetry_<fig>.json`: counters and gauges keyed by
    /// rendered metric name, histogram summaries, and per-(name,category)
    /// span aggregates (the raw span ring would dwarf the metrics).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\n    \"{}\": {v}", json_escape(&k.render())))
            .collect();
        counters.push(format!(
            "\n    \"telemetry_spans_dropped_total\": {}",
            self.spans.dropped()
        ));
        out.push_str(&counters.join(","));
        out.push_str("\n  },\n  \"gauges\": {");
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\n    \"{}\": {}", json_escape(&k.render()), json_num(*v)))
            .collect();
        out.push_str(&gauges.join(","));
        out.push_str("\n  },\n  \"histograms\": {");
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let s = h.snapshot();
                format!(
                    "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    json_escape(&k.render()),
                    s.count,
                    json_num(s.sum),
                    json_num(s.mean),
                    json_num(s.min),
                    json_num(s.max),
                    json_num(s.p50),
                    json_num(s.p95),
                    json_num(s.p99),
                )
            })
            .collect();
        out.push_str(&hists.join(","));
        out.push_str("\n  },\n  \"spans\": {");
        let mut agg: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
        for s in self.spans.iter() {
            let e = agg
                .entry((s.name.clone(), s.category.clone()))
                .or_insert((0, 0.0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        let spans: Vec<String> = agg
            .into_iter()
            .map(|((name, cat), (count, total))| {
                format!(
                    "\n    \"{}[{}]\": {{\"count\": {count}, \"total_ns\": {}, \"dropped\": {}}}",
                    json_escape(&name),
                    json_escape(&cat),
                    json_num(total),
                    self.spans.dropped(),
                )
            })
            .collect();
        out.push_str(&spans.join(","));
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_labels_are_order_insensitive() {
        let a = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        let b = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    fn prometheus_format_shape() {
        let mut r = Registry::new();
        r.counter_add("req_total", &[("code", "200")], 7);
        r.gauge_set("depth", &[], 2.5);
        r.hist_record("lat_ns", &[], 100.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{code=\"200\"} 7"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 2.5"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ns_sum 100"));
        assert!(text.contains("lat_ns_count 1"));
    }

    #[test]
    fn every_family_has_help_and_type() {
        // Satellite regression: each exported family must carry # HELP
        // and # TYPE lines, with documented metrics pulling their
        // meaning from METRIC_DOCS.
        let mut r = Registry::new();
        r.counter_add("tscout_samples_begun_total", &[("subsystem", "ee")], 3);
        r.gauge_set("tscout_overhead_ratio", &[], 0.01);
        r.hist_record("workload_txn_ns", &[("outcome", "committed")], 5e4);
        r.counter_add("some_novel_counter_total", &[], 1);
        let text = r.to_prometheus();
        for family in [
            "tscout_samples_begun_total",
            "tscout_overhead_ratio",
            "workload_txn_ns",
            "telemetry_spans_dropped_total",
            "some_novel_counter_total",
        ] {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}:\n{text}"
            );
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}:\n{text}"
            );
        }
        // Documented help text comes from the dictionary.
        let help = crate::docs::metric_help("tscout_samples_begun_total").unwrap();
        assert!(text.contains(help));
        // Undocumented metrics still get a placeholder HELP.
        assert!(text.contains("# HELP some_novel_counter_total (undocumented)"));
        // HELP/TYPE are emitted once per family, not per label set.
        r.counter_add("tscout_samples_begun_total", &[("subsystem", "net")], 1);
        let text = r.to_prometheus();
        let headers = text
            .lines()
            .filter(|l| *l == "# TYPE tscout_samples_begun_total counter")
            .count();
        assert_eq!(headers, 1, "one TYPE header per family:\n{text}");
    }

    #[test]
    fn counters_are_normalized_to_total_suffix() {
        // Satellite regression: a counter registered without the
        // conventional suffix is exposed with `_total` appended.
        let mut r = Registry::new();
        r.counter_add("odd_counter", &[("k", "v")], 4);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE odd_counter_total counter"));
        assert!(text.contains("odd_counter_total{k=\"v\"} 4"));
        assert!(
            !text
                .lines()
                .any(|l| l.starts_with("odd_counter ") || l.starts_with("odd_counter{")),
            "unsuffixed sample leaked:\n{text}"
        );
        // Already-suffixed names are untouched (no `_total_total`).
        r.counter_add("fine_total", &[], 1);
        let text = r.to_prometheus();
        assert!(text.contains("fine_total 1"));
        assert!(!text.contains("fine_total_total"));
    }

    #[test]
    fn histograms_expose_cumulative_buckets_with_inf_sum_count() {
        // Satellite regression: histogram families are `histogram` (not
        // summary) with a cumulative bucket series ending at +Inf, and
        // labeled families keep their labels on every sample line.
        let mut r = Registry::new();
        for v in [10.0, 20.0, 20.0, 5_000.0] {
            r.hist_record("lat_ns", &[("op", "read")], v);
        }
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(!text.contains("summary"));
        assert!(!text.contains("quantile"));
        // Cumulative: the +Inf bucket equals _count, and bucket counts
        // never decrease as le grows.
        assert!(text.contains("le=\"+Inf\""), "{text}");
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_ns_bucket{"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.len() >= 3, "expected several buckets: {text}");
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "not cumulative");
        assert_eq!(*buckets.last().unwrap(), 4, "+Inf must equal count");
        assert!(text.contains("lat_ns_sum{op=\"read\"} 5050"));
        assert!(text.contains("lat_ns_count{op=\"read\"} 4"));
        // le sorts into the label set alphabetically.
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\",op=\"read\"} 4"));
    }

    #[test]
    fn chrome_json_shape() {
        let mut r = Registry::new();
        r.record_span("flush", "wal", 2_000.0, 500.0);
        let j = r.spans_to_chrome_json();
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"name\":\"flush\""));
        assert!(j.contains("\"ts\":2"));
        assert!(j.contains("\"dur\":0.5"));
    }

    #[test]
    fn spans_dropped_is_exported_as_counter() {
        let mut r = Registry::new();
        r.counter_add("x_total", &[], 1);
        let prom = r.to_prometheus();
        assert!(prom.contains("# TYPE telemetry_spans_dropped_total counter"));
        assert!(prom.contains("telemetry_spans_dropped_total 0"));
        let json = r.snapshot_json();
        assert!(json.contains("\"telemetry_spans_dropped_total\": 0"));
        // Overflow the span ring and watch the counter move.
        for i in 0..(crate::DEFAULT_SPAN_CAPACITY + 3) {
            r.record_span("s", "c", i as f64, 1.0);
        }
        assert!(r
            .to_prometheus()
            .contains("telemetry_spans_dropped_total 3"));
        assert!(r
            .snapshot_json()
            .contains("\"telemetry_spans_dropped_total\": 3"));
    }

    #[test]
    fn scrape_builds_timeseries_windows() {
        let mut r = Registry::new();
        r.counter_add("d", &[("sub", "ee")], 5);
        r.scrape_window(1_000.0);
        r.counter_add("d", &[("sub", "ee")], 7);
        r.counter_add("d", &[("sub", "net")], 2);
        r.scrape_window(2_000.0);
        assert_eq!(r.timeseries().len(), 2);
        assert_eq!(r.timeseries().total_in_window("d", 0), 5);
        assert_eq!(r.timeseries().total_in_window("d", 1), 14);
        assert_eq!(r.timeseries().delta("d", 1), 9);
        assert!(r.timeseries_json().contains("\"windows\""));
    }

    #[test]
    fn merge_adopts_timeseries_only_when_empty() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        b.counter_add("c", &[], 1);
        b.scrape_window(10.0);
        a.merge_from(&b);
        assert_eq!(a.timeseries().len(), 1);
        // A second merge from a different run must not concatenate.
        let mut c = Registry::new();
        c.counter_add("c", &[], 9);
        c.scrape_window(5.0);
        c.scrape_window(6.0);
        a.merge_from(&c);
        assert_eq!(a.timeseries().len(), 1);
    }

    #[test]
    fn label_values_are_escaped_in_exposition() {
        // Regression: newline in a label value used to split the
        // exposition line in two (backslash and quote were already
        // escaped, line feed was not).
        let mut r = Registry::new();
        r.counter_add("weird_total", &[("q", "a\\b\"c\nd")], 1);
        let prom = r.to_prometheus();
        assert!(
            prom.contains("weird_total{q=\"a\\\\b\\\"c\\nd\"} 1"),
            "got: {prom}"
        );
        // The rendered sample must stay a single line.
        let line = prom
            .lines()
            .find(|l| l.starts_with("weird_total"))
            .expect("sample line present");
        assert!(line.ends_with(" 1"));
    }

    #[test]
    fn drift_feeding_and_evaluation_publish_gauges() {
        let mut r = Registry::new();
        for i in 0..300 {
            r.observe_ou_sample(
                "ExecSeqScan",
                "execution_engine",
                1_000.0 + (i % 7) as f64,
                3.0,
            );
        }
        // Reference frozen at 256; the remaining 44 live samples are
        // below min_live, so scores stay at their initial zero.
        r.drift_evaluate();
        assert_eq!(r.counter_value("ts_drift_evaluations_total", &[]), 1);
        assert_eq!(
            r.gauge_value("ts_drift_score", &[("ou", "ExecSeqScan")]),
            0.0
        );
        // Shift the live window far above the reference and re-evaluate.
        for _ in 0..64 {
            r.observe_ou_sample("ExecSeqScan", "execution_engine", 64_000.0, 3.0);
        }
        r.drift_evaluate();
        let score = r.gauge_value("ts_drift_score", &[("ou", "ExecSeqScan")]);
        assert!(score > 0.25, "score={score}");
        assert!(
            r.gauge_value(
                "ts_drift_psi",
                &[("channel", "target"), ("ou", "ExecSeqScan")]
            ) > 0.25
        );
    }

    #[test]
    fn observability_tick_fires_and_recovers_alerts() {
        let mut r = Registry::new();
        // Freeze a reference then shift the live window hard.
        for i in 0..256 {
            r.observe_ou_sample("ExecAgg", "execution_engine", 2_000.0 + (i % 5) as f64, 1.0);
        }
        for _ in 0..64 {
            r.observe_ou_sample("ExecAgg", "execution_engine", 90_000.0, 1.0);
        }
        let fired = r.observability_tick(1_000_000.0);
        assert!(
            fired.iter().any(super::super::health::Alert::fired),
            "expected a fired alert"
        );
        assert!(r.counter_total("alerts_fired_total") >= 1);
        assert!(r.gauge_value("ts_health_state", &[("subsystem", "data")]) >= 1.0);
        // Back to the reference distribution: hysteresis needs two clear
        // evaluations before stepping down.
        for tick in 0..4u32 {
            for i in 0..64 {
                r.observe_ou_sample("ExecAgg", "execution_engine", 2_000.0 + (i % 5) as f64, 1.0);
            }
            r.observability_tick(2_000_000.0 + tick as f64);
        }
        assert_eq!(
            r.gauge_value("ts_health_state", &[("subsystem", "data")]),
            0.0
        );
        assert!(r.counter_total("alerts_recovered_total") >= 1);
    }

    #[test]
    fn health_json_shape() {
        let mut r = Registry::new();
        r.observe_ou_sample("ExecSort", "execution_engine", 5.0, 1.0);
        r.observability_tick(10.0);
        let j = r.health_json();
        assert!(j.contains("\"subsystems\""));
        assert!(j.contains("\"data\": \"OK\""));
        assert!(j.contains("\"ExecSort\""));
        assert!(j.contains("\"alerts_fired_total\": 0"));
        assert!(j.contains("\"alerts\": ["));
    }

    #[test]
    fn merge_adopts_drift_and_health_only_when_idle() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        b.observe_ou_sample("OuX", "s", 1.0, 1.0);
        b.observability_tick(10.0);
        a.merge_from(&b);
        assert_eq!(a.drift().len(), 1);
        assert_eq!(a.health().ticks, 1);
        // An active accumulator keeps its own windows.
        let mut c = Registry::new();
        c.observe_ou_sample("OuY", "s", 1.0, 1.0);
        c.observe_ou_sample("OuZ", "s", 1.0, 1.0);
        a.merge_from(&c);
        assert_eq!(a.drift().len(), 1);
        assert!(a.drift().ou("OuX").is_some());
    }

    #[test]
    fn stmt_record_syncs_metrics() {
        let mut r = Registry::new();
        r.stmt_record("select ?", 100.0, 1, &[("seq_scan", 80.0)], None);
        r.stmt_record("select ?", 200.0, 1, &[("seq_scan", 150.0)], Some(140.0));
        assert_eq!(r.counter_value("db_stmt_recorded_total", &[]), 2);
        // The eviction counter registers at zero from the first record.
        assert_eq!(r.counter_value("db_stmt_evicted_total", &[]), 0);
        assert!(r
            .metric_names()
            .iter()
            .any(|n| n == "db_stmt_evicted_total"));
        assert_eq!(r.gauge_value("db_stmt_fingerprints", &[]), 1.0);
        let e = r.stmts().get("select ?").unwrap();
        assert_eq!(e.calls, 2);
        assert!(r.stmt_json_topk(3).contains("select ?"));
    }

    #[test]
    fn merge_adopts_stmt_stats_only_when_idle() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        b.stmt_record("q1", 10.0, 0, &[], None);
        a.merge_from(&b);
        assert!(a.stmts().get("q1").is_some());
        // An active accumulator keeps its own entries.
        let mut c = Registry::new();
        c.stmt_record("q2", 10.0, 0, &[], None);
        a.merge_from(&c);
        assert!(a.stmts().get("q2").is_none());
    }

    #[test]
    fn merge_semantics() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("c", &[], 1);
        b.counter_add("c", &[], 2);
        a.gauge_set("hwm", &[], 5.0);
        b.gauge_set("hwm", &[], 3.0);
        b.hist_record("h", &[], 10.0);
        a.merge_from(&b);
        assert_eq!(a.counter_value("c", &[]), 3);
        assert_eq!(a.gauge_value("hwm", &[]), 5.0);
        assert_eq!(a.hist_snapshot("h", &[]).unwrap().count, 1);
    }
}
