//! Online per-OU distribution-drift detection.
//!
//! The training-data pipeline is only as good as the distributions it
//! samples from: if an OU's elapsed-time (target) or feature
//! distribution shifts, previously trained behavior models silently go
//! stale. The [`DriftRegistry`] watches for that, per OU, with two
//! [`Sketch`]-backed channels:
//!
//! - **target** — the OU's `elapsed_ns` stream,
//! - **feature** — the L2 norm of the OU's feature vector (a scalar
//!   proxy that moves whenever any input feature's scale moves).
//!
//! Each channel freezes a *reference* sketch once it has seen
//! [`DriftRegistry::reference_samples`] observations; everything after
//! accumulates into a *live* window. At every evaluation (the driver's
//! pump cadence) a live window with at least
//! [`DriftRegistry::min_live_samples`] observations is scored against
//! the frozen reference — PSI and KS distance — and then reset, so
//! scores always describe the most recent window, not an ever-growing
//! average that would dilute a shift. Scores are *sticky* between
//! evaluations (gauges hold the last computed value).
//!
//! The registry also tracks live model residuals: the model lifecycle
//! feeds `(predicted, actual)` pairs, and each evaluation folds them
//! into a windowed MAPE — the online counterpart of the holdout MAPE
//! the swap gate uses.

use std::collections::BTreeMap;

use crate::sketch::Sketch;

/// Default observations frozen into a channel's reference window.
pub const DEFAULT_REFERENCE_SAMPLES: u64 = 256;
/// Default minimum live-window size before a channel is scored.
pub const DEFAULT_MIN_LIVE_SAMPLES: u64 = 64;

/// One observation stream compared against its own frozen past.
#[derive(Debug, Clone, Default)]
pub struct DriftChannel {
    /// Frozen once it reaches the registry's `reference_samples`.
    reference: Sketch,
    frozen: bool,
    /// Live window, reset after each scoring.
    live: Sketch,
    /// Last computed scores (sticky between evaluations).
    psi: f64,
    ks: f64,
    /// Evaluations that actually scored this channel.
    evaluations: u64,
}

impl DriftChannel {
    fn observe(&mut self, v: f64, reference_samples: u64) {
        if self.frozen {
            self.live.insert(v);
        } else {
            self.reference.insert(v);
            if self.reference.count() >= reference_samples {
                self.frozen = true;
            }
        }
    }

    /// Score live vs reference if both windows qualify; returns whether
    /// a new score was computed. The live window resets either way once
    /// scored.
    fn evaluate(&mut self, min_live_samples: u64) -> bool {
        if !self.frozen || self.live.count() < min_live_samples {
            return false;
        }
        self.psi = self.live.psi(&self.reference);
        self.ks = self.live.ks_distance(&self.reference);
        self.evaluations += 1;
        self.live.reset();
        true
    }

    pub fn psi(&self) -> f64 {
        self.psi
    }

    pub fn ks(&self) -> f64 {
        self.ks
    }

    pub fn reference(&self) -> &Sketch {
        &self.reference
    }

    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    pub fn live_count(&self) -> u64 {
        self.live.count()
    }

    /// Forget the frozen reference and the sticky scores: the next
    /// observations rebuild the reference from scratch. Used after an
    /// *intentional* distribution change (an actuated retrain), where
    /// continuing to score against the pre-change reference would hold
    /// the drift alarm raised forever.
    fn rebaseline(&mut self) {
        self.reference.reset();
        self.live.reset();
        self.frozen = false;
        self.psi = 0.0;
        self.ks = 0.0;
    }
}

/// Per-OU drift state: the two channels plus lifetime statistics and the
/// residual accumulator.
#[derive(Debug, Clone)]
pub struct OuDrift {
    pub subsystem: String,
    pub target: DriftChannel,
    pub feature: DriftChannel,
    /// Every target observation ever seen (reference + all live
    /// windows); serves the `ts_stat_ou` summary columns.
    pub lifetime: Sketch,
    /// Total samples observed.
    pub samples: u64,
    /// Residual window: Σ absolute-percentage-error and its count.
    residual_ape_sum: f64,
    residual_n: u64,
    /// Last evaluated residual MAPE, percent (sticky; NaN-free, 0 until
    /// the first residual evaluation).
    residual_mape_pct: f64,
    /// Residual pairs ever folded into an evaluation.
    pub residual_points: u64,
}

impl OuDrift {
    fn new(subsystem: &str) -> Self {
        OuDrift {
            subsystem: subsystem.to_string(),
            target: DriftChannel::default(),
            feature: DriftChannel::default(),
            lifetime: Sketch::new(),
            samples: 0,
            residual_ape_sum: 0.0,
            residual_n: 0,
            residual_mape_pct: 0.0,
            residual_points: 0,
        }
    }

    /// Headline score: the worst PSI across channels.
    pub fn drift_score(&self) -> f64 {
        self.target.psi().max(self.feature.psi())
    }

    pub fn residual_mape_pct(&self) -> f64 {
        self.residual_mape_pct
    }
}

/// Sticky per-OU scores produced by one [`DriftRegistry::evaluate`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScore {
    pub ou: String,
    pub subsystem: String,
    pub drift_score: f64,
    pub psi_target: f64,
    pub psi_feature: f64,
    pub ks_target: f64,
    pub ks_feature: f64,
    pub residual_mape_pct: f64,
    /// Whether this evaluation produced any fresh number (vs all-sticky).
    pub updated: bool,
}

/// All OUs' drift state, keyed by OU name.
#[derive(Debug, Clone)]
pub struct DriftRegistry {
    /// Observations frozen into each channel's reference window.
    pub reference_samples: u64,
    /// Minimum live-window observations before a channel is scored.
    pub min_live_samples: u64,
    ous: BTreeMap<String, OuDrift>,
}

impl Default for DriftRegistry {
    fn default() -> Self {
        DriftRegistry {
            reference_samples: DEFAULT_REFERENCE_SAMPLES,
            min_live_samples: DEFAULT_MIN_LIVE_SAMPLES,
            ous: BTreeMap::new(),
        }
    }
}

impl DriftRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.ous.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ous.is_empty()
    }

    pub fn ou(&self, name: &str) -> Option<&OuDrift> {
        self.ous.get(name)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &OuDrift)> {
        self.ous.iter()
    }

    /// Feed one decoded training sample into the OU's channels.
    /// `feature_norm` is the caller-computed L2 norm of the feature
    /// vector (computed outside so this stays allocation-free).
    pub fn observe_sample(&mut self, ou: &str, subsystem: &str, target_ns: f64, feature_norm: f64) {
        let d = self
            .ous
            .entry(ou.to_string())
            .or_insert_with(|| OuDrift::new(subsystem));
        d.samples += 1;
        d.lifetime.insert(target_ns);
        d.target.observe(target_ns, self.reference_samples);
        d.feature.observe(feature_norm, self.reference_samples);
    }

    /// Feed one live-model residual pair. Zero/negative actuals are
    /// skipped (APE undefined).
    pub fn observe_residual(&mut self, ou: &str, predicted_ns: f64, actual_ns: f64) {
        if !actual_ns.is_finite() || actual_ns <= 0.0 || !predicted_ns.is_finite() {
            return;
        }
        // Residuals can arrive for OUs whose samples were lost upstream;
        // subsystem stays unknown until a sample shows up.
        let d = self
            .ous
            .entry(ou.to_string())
            .or_insert_with(|| OuDrift::new(""));
        d.residual_ape_sum += ((predicted_ns - actual_ns) / actual_ns).abs() * 100.0;
        d.residual_n += 1;
    }

    /// Rebaseline every OU's channels (see [`DriftChannel`]): references
    /// unfreeze and rebuild from the post-change stream, sticky scores
    /// reset to zero. Lifetime statistics, sample counts, and residual
    /// state are kept — only the *comparison baseline* is discarded.
    /// Returns how many OUs were rebaselined.
    pub fn rebaseline_all(&mut self) -> usize {
        for d in self.ous.values_mut() {
            d.target.rebaseline();
            d.feature.rebaseline();
        }
        self.ous.len()
    }

    /// Score every OU's live windows against its references and fold the
    /// residual window into its MAPE. Returns the (sticky) scores for
    /// all OUs so the caller can publish gauges in one pass.
    pub fn evaluate(&mut self) -> Vec<DriftScore> {
        let min_live = self.min_live_samples;
        self.ous
            .iter_mut()
            .map(|(name, d)| {
                let mut updated = d.target.evaluate(min_live);
                updated |= d.feature.evaluate(min_live);
                if d.residual_n > 0 {
                    d.residual_mape_pct = d.residual_ape_sum / d.residual_n as f64;
                    d.residual_points += d.residual_n;
                    d.residual_ape_sum = 0.0;
                    d.residual_n = 0;
                    updated = true;
                }
                DriftScore {
                    ou: name.clone(),
                    subsystem: d.subsystem.clone(),
                    drift_score: d.drift_score(),
                    psi_target: d.target.psi(),
                    psi_feature: d.feature.psi(),
                    ks_target: d.target.ks(),
                    ks_feature: d.feature.ks(),
                    residual_mape_pct: d.residual_mape_pct,
                    updated,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed `hi - lo` samples covering `[lo, hi)` in a stride
    /// permutation, so the frozen reference prefix and the live suffix
    /// draw from the same distribution (a sequential ramp would make
    /// the reference a biased early slice and read as drift).
    fn feed(r: &mut DriftRegistry, ou: &str, lo: u64, hi: u64) {
        let span = hi - lo;
        for i in 0..span {
            let v = lo + (i * 7919) % span;
            r.observe_sample(ou, "execution_engine", v as f64, 10.0);
        }
    }

    #[test]
    fn reference_freezes_then_live_accumulates() {
        let mut r = DriftRegistry::new();
        feed(&mut r, "scan", 1_000, 1_000 + DEFAULT_REFERENCE_SAMPLES);
        let d = r.ou("scan").unwrap();
        assert!(d.target.is_frozen());
        assert_eq!(d.target.live_count(), 0);
        feed(&mut r, "scan", 1_000, 1_010);
        assert_eq!(r.ou("scan").unwrap().target.live_count(), 10);
    }

    #[test]
    fn no_score_before_min_live_window() {
        let mut r = DriftRegistry::new();
        feed(&mut r, "scan", 1_000, 1_300); // reference + 44 live
        let scores = r.evaluate();
        assert_eq!(scores.len(), 1);
        assert!(!scores[0].updated);
        assert_eq!(scores[0].drift_score, 0.0);
    }

    #[test]
    fn stable_stream_scores_near_zero_shift_scores_high() {
        let mut r = DriftRegistry::new();
        feed(&mut r, "scan", 1_000, 2_000);
        let scores = r.evaluate();
        assert!(scores[0].updated);
        assert!(
            scores[0].drift_score < 0.1,
            "stable: {}",
            scores[0].drift_score
        );
        // Inject a 16x target shift; the next window must flag it.
        feed(&mut r, "scan", 16_000, 17_000);
        let scores = r.evaluate();
        assert!(
            scores[0].psi_target > 1.0,
            "shifted: {}",
            scores[0].psi_target
        );
        assert!(scores[0].ks_target > 0.9);
        assert_eq!(
            scores[0].drift_score,
            scores[0].psi_target.max(scores[0].psi_feature)
        );
    }

    #[test]
    fn scores_are_sticky_across_idle_evaluations() {
        let mut r = DriftRegistry::new();
        feed(&mut r, "scan", 1_000, 2_000);
        feed(&mut r, "scan", 16_000, 17_000);
        let high = r.evaluate()[0].drift_score;
        assert!(high > 1.0);
        // No new samples: the score must hold, not decay to zero.
        let again = r.evaluate();
        assert!(!again[0].updated);
        assert_eq!(again[0].drift_score, high);
    }

    #[test]
    fn feature_channel_flags_feature_only_shift() {
        let mut r = DriftRegistry::new();
        for _ in 0..1_000 {
            r.observe_sample("scan", "execution_engine", 5_000.0, 64.0);
        }
        r.evaluate();
        for _ in 0..200 {
            // Same target, 32x feature norm.
            r.observe_sample("scan", "execution_engine", 5_000.0, 2_048.0);
        }
        let s = &r.evaluate()[0];
        assert!(s.psi_feature > 1.0, "feature psi={}", s.psi_feature);
        assert!(s.psi_target < 0.1, "target psi={}", s.psi_target);
        assert_eq!(s.drift_score, s.psi_feature);
    }

    #[test]
    fn residual_mape_windows_and_accumulates() {
        let mut r = DriftRegistry::new();
        r.observe_residual("scan", 1_100.0, 1_000.0); // 10%
        r.observe_residual("scan", 900.0, 1_000.0); // 10%
        r.observe_residual("scan", 1_000.0, 0.0); // skipped
        let s = &r.evaluate()[0];
        assert!((s.residual_mape_pct - 10.0).abs() < 1e-9);
        assert_eq!(r.ou("scan").unwrap().residual_points, 2);
        // Next window replaces, not averages-with, the old one.
        r.observe_residual("scan", 2_000.0, 1_000.0); // 100%
        let s = &r.evaluate()[0];
        assert!((s.residual_mape_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rebaseline_unfreezes_and_clears_sticky_scores() {
        let mut r = DriftRegistry::new();
        feed(&mut r, "scan", 1_000, 2_000);
        feed(&mut r, "scan", 16_000, 17_000);
        assert!(r.evaluate()[0].drift_score > 1.0);
        assert_eq!(r.rebaseline_all(), 1);
        let d = r.ou("scan").unwrap();
        assert!(!d.target.is_frozen());
        assert_eq!(d.drift_score(), 0.0);
        // Lifetime statistics survive the rebaseline.
        assert_eq!(d.samples, 2_000);
        // The post-change stream becomes the new reference; a stable
        // stream at the *new* level scores clean.
        feed(&mut r, "scan", 16_000, 17_000);
        let s = &r.evaluate()[0];
        assert!(s.updated);
        assert!(s.drift_score < 0.1, "post-rebaseline: {}", s.drift_score);
    }

    #[test]
    fn lifetime_sketch_covers_all_samples() {
        let mut r = DriftRegistry::new();
        feed(&mut r, "scan", 1_000, 1_500);
        r.evaluate();
        feed(&mut r, "scan", 1_000, 1_500);
        let d = r.ou("scan").unwrap();
        assert_eq!(d.samples, 1_000);
        assert_eq!(d.lifetime.count(), 1_000);
        assert!(d.lifetime.quantile(0.5) >= 1_000.0);
    }
}
