//! End-to-end sample-lineage tracing.
//!
//! The registry's metrics say *how many* samples moved through each
//! pipeline stage; this module says *which* ones and *when*. A sampled
//! fraction of markers is assigned a [`TraceId`] at fire time, and the
//! id is propagated — out of band, never inside the record bytes, so
//! samples stay bit-identical — through every stage of the collection
//! pipeline:
//!
//! ```text
//! marker → ring_buffer → drain → sink → archive_memtable
//!        → segment_seal → dataset → model_generation
//! ```
//!
//! Each stage records an enter/exit timestamp pair (virtual clock) and
//! the queue depth it observed. Completed traces land in a bounded ring
//! with exact accounting: every started trace is, at all times, exactly
//! one of completed, dropped, or in flight —
//! `started = completed + dropped + in_flight`. Evictions from the
//! bounded *completed* ring are counted separately (they are completed
//! traces whose storage was reclaimed, not lost lineage).
//!
//! Propagation between the marker and the Processor is keyed by the
//! `(ou, tid)` pair both ends can read from the record header. The perf
//! ring is a global FIFO, so it is a per-`(ou, tid)` FIFO too: a
//! `VecDeque` per key gives exact matching — publish pushes back, drain
//! pops front, a ring overwrite evicts the front.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::histogram::{bucket_index, bucket_upper};
use crate::{json_escape, json_num};

/// Default capacity of the completed-trace ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 2048;

/// Default bound on concurrently in-flight traces. Overflow drops the
/// *oldest* in-flight trace (counted in `dropped`, never silent).
pub const DEFAULT_ACTIVE_TRACE_CAPACITY: usize = 8192;

/// Identity of one traced sample's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// The pipeline stages a traced sample passes through, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// BEGIN marker fire → FEATURES publish (the BPF state machine).
    Marker,
    /// Resident in the per-CPU perf ring buffer.
    RingBuffer,
    /// Popped from the ring, waiting in the Processor's drain batch.
    Drain,
    /// Decode + de-aggregation + sink dispatch in the Processor.
    Sink,
    /// Appended to an archive memtable.
    ArchiveMemtable,
    /// Memtable flushed into a sealed segment block.
    SegmentSeal,
    /// Scanned out of the archive into a training dataset.
    Dataset,
    /// Consumed by a model retrain (lineage terminal).
    ModelGeneration,
}

/// All stages, pipeline order.
pub const ALL_STAGES: [Stage; 8] = [
    Stage::Marker,
    Stage::RingBuffer,
    Stage::Drain,
    Stage::Sink,
    Stage::ArchiveMemtable,
    Stage::SegmentSeal,
    Stage::Dataset,
    Stage::ModelGeneration,
];

impl Stage {
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Marker => "marker",
            Stage::RingBuffer => "ring_buffer",
            Stage::Drain => "drain",
            Stage::Sink => "sink",
            Stage::ArchiveMemtable => "archive_memtable",
            Stage::SegmentSeal => "segment_seal",
            Stage::Dataset => "dataset",
            Stage::ModelGeneration => "model_generation",
        }
    }

    fn idx(&self) -> usize {
        ALL_STAGES.iter().position(|s| s == self).unwrap()
    }
}

/// Terminal outcome of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The sample survived to its sink's terminal stage.
    Delivered,
    /// The sample was lost (ring overwrite, reset, backlog, decode).
    Lost,
    /// The sample reached the archive but was retired by compaction
    /// retention before reaching a model.
    Compacted,
}

impl TraceOutcome {
    pub fn name(&self) -> &'static str {
        match self {
            TraceOutcome::Delivered => "delivered",
            TraceOutcome::Lost => "lost",
            TraceOutcome::Compacted => "compacted",
        }
    }
}

/// One stage visit: enter/exit in virtual ns plus the queue depth the
/// stage observed on entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    pub stage: Stage,
    pub enter_ns: f64,
    pub exit_ns: f64,
    pub queue_depth: u64,
}

/// One sample's reconstructed journey.
#[derive(Debug, Clone)]
pub struct Trace {
    pub id: TraceId,
    pub ou: u16,
    pub subsystem: u8,
    pub tid: u64,
    pub started_ns: f64,
    pub stages: Vec<StageRecord>,
    pub outcome: Option<TraceOutcome>,
    pub fail_reason: Option<String>,
    pub model_generation: Option<u64>,
}

impl Trace {
    /// End-to-end virtual latency (last exit − marker fire).
    pub fn total_ns(&self) -> f64 {
        self.stages
            .last()
            .map(|s| s.exit_ns - self.started_ns)
            .unwrap_or(0.0)
    }

    /// The dominating stage: the one with the largest enter→exit span.
    pub fn critical_stage(&self) -> Option<(Stage, f64)> {
        self.stages
            .iter()
            .map(|s| (s.stage, s.exit_ns - s.enter_ns))
            .fold(None, |best, (st, d)| match best {
                Some((_, bd)) if bd >= d => best,
                _ => Some((st, d)),
            })
    }

    /// Are the stage timestamps monotone in virtual time? (Every stage's
    /// exit ≥ its enter, and every stage enters no earlier than the
    /// previous stage did.)
    pub fn timestamps_monotone(&self) -> bool {
        let mut prev = self.started_ns;
        for s in &self.stages {
            if s.enter_ns + 1e-9 < prev || s.exit_ns + 1e-9 < s.enter_ns {
                return false;
            }
            prev = s.enter_ns;
        }
        true
    }

    /// Close the last stage at `now`, clamped so exit never precedes
    /// enter — stamps arrive from different per-task virtual clocks
    /// (workload, Processor, lifecycle), which are individually monotone
    /// but mutually skewed.
    fn close_last(&mut self, now_ns: f64) -> f64 {
        match self.stages.last_mut() {
            Some(s) => {
                s.exit_ns = now_ns.max(s.enter_ns);
                s.exit_ns
            }
            None => now_ns,
        }
    }

    /// Append a stage, clamped against the previous stage's exit so the
    /// per-trace timeline stays monotone under clock skew.
    fn push_stage(&mut self, stage: Stage, enter_ns: f64, exit_ns: f64, queue_depth: u64) {
        let floor = self
            .stages
            .last()
            .map(|s| s.exit_ns)
            .unwrap_or(self.started_ns);
        let enter = enter_ns.max(floor);
        self.stages.push(StageRecord {
            stage,
            enter_ns: enter,
            exit_ns: exit_ns.max(enter),
            queue_depth,
        });
    }
}

/// Exact accounting over every trace ever started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// TraceIds assigned at marker fire time.
    pub started: u64,
    /// Traces that reached a terminal outcome (delivered, lost, or
    /// compacted) with full stage lineage.
    pub completed: u64,
    /// Traces abandoned before completion (in-flight table overflow).
    pub dropped: u64,
    /// Traces currently between marker fire and a terminal outcome.
    pub in_flight: u64,
    /// Completed traces evicted from the bounded trace ring. These are
    /// counted in `completed`; eviction reclaims storage, not lineage.
    pub ring_evicted: u64,
}

impl TraceStats {
    /// The invariant the CI step asserts.
    pub fn closes(&self) -> bool {
        self.started == self.completed + self.dropped + self.in_flight
    }
}

/// Per-stage aggregate over completed traces (feeds `ts_stat_pipeline`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageAgg {
    pub count: u64,
    pub total_ns: f64,
    pub max_ns: f64,
    /// TraceId that produced `max_ns` — the headline exemplar.
    pub max_id: u64,
    pub queue_sum: f64,
    /// Completed traces whose critical path this stage dominated.
    pub critical: u64,
}

/// A completion event the registry turns into metrics (histograms and
/// outcome counters) after the tracer mutates its state.
#[derive(Debug, Clone)]
pub(crate) struct Completion {
    pub outcome: TraceOutcome,
    pub critical: Option<Stage>,
    pub stage_durs: Vec<(Stage, f64)>,
}

/// Flight-recorder arming state: where on-CRITICAL evidence bundles go.
/// Unarmed (`dir: None`) by default — arming is a figure-binary choice.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorderArm {
    /// Output directory for `flightrec_<fig>_<seq>.json` bundles.
    pub dir: Option<std::path::PathBuf>,
    /// Figure tag baked into bundle filenames.
    pub fig: String,
    /// Bundles written so far (sequence number of the next is seq+1).
    pub seq: u64,
}

/// The lineage tracer. Lives inside the registry (next to the span ring
/// and the drift detector) so SQL introspection and JSON exports see it
/// through the normal telemetry handle.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// Trace 1 in `every` *collected* markers; 0 disables tracing.
    every: u64,
    seen: u64,
    next_id: u64,
    /// In-flight traces by raw id.
    active: BTreeMap<u64, Trace>,
    active_capacity: usize,
    /// Ids published to the ring, awaiting Processor pickup, keyed by
    /// the `(ou, tid)` pair readable from the record header.
    in_ring: HashMap<(u16, u64), VecDeque<u64>>,
    /// Ids past the sink stage, parked until the archive/model
    /// lifecycle stamps the collective stages.
    parked: VecDeque<u64>,
    completed: VecDeque<Trace>,
    capacity: usize,
    stats: TraceStats,
    stage_aggs: [StageAgg; 8],
    /// `(stage index, histogram bucket) → (trace id, value)` — the
    /// exemplar attached to each latency bucket.
    exemplars: BTreeMap<(usize, usize), (u64, f64)>,
    pending: Vec<Completion>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            every: 0,
            seen: 0,
            next_id: 0,
            active: BTreeMap::new(),
            active_capacity: DEFAULT_ACTIVE_TRACE_CAPACITY,
            in_ring: HashMap::new(),
            parked: VecDeque::new(),
            completed: VecDeque::new(),
            capacity: DEFAULT_TRACE_CAPACITY,
            stats: TraceStats::default(),
            stage_aggs: [StageAgg::default(); 8],
            exemplars: BTreeMap::new(),
            pending: Vec::new(),
        }
    }
}

impl Tracer {
    /// Trace 1 in `every` collected markers (0 = off).
    pub fn set_every(&mut self, every: u64) {
        self.every = every;
    }

    pub fn every(&self) -> u64 {
        self.every
    }

    /// Has this tracer ever started a trace? (Merge adoption check.)
    pub fn is_idle(&self) -> bool {
        self.stats.started == 0
    }

    pub fn stats(&self) -> TraceStats {
        let mut s = self.stats;
        s.in_flight = self.active.len() as u64;
        s
    }

    pub fn stage_aggs(&self) -> impl Iterator<Item = (Stage, &StageAgg)> {
        ALL_STAGES.iter().map(|s| (*s, &self.stage_aggs[s.idx()]))
    }

    /// Completed traces, oldest first.
    pub fn completed_iter(&self) -> impl Iterator<Item = &Trace> {
        self.completed.iter()
    }

    /// `(stage, bucket upper bound ns, trace id, value ns)` exemplars.
    pub fn exemplars(&self) -> impl Iterator<Item = (Stage, f64, TraceId, f64)> + '_ {
        self.exemplars
            .iter()
            .map(|((si, b), (id, v))| (ALL_STAGES[*si], bucket_upper(*b), TraceId(*id), *v))
    }

    /// Sampling decision at marker fire time. Returns the id the caller
    /// must carry through the marker state machine.
    pub fn maybe_begin(
        &mut self,
        ou: u16,
        subsystem: u8,
        tid: u64,
        now_ns: f64,
    ) -> Option<TraceId> {
        if self.every == 0 {
            return None;
        }
        let n = self.seen;
        self.seen += 1;
        if !n.is_multiple_of(self.every) {
            return None;
        }
        self.next_id += 1;
        let id = self.next_id;
        self.stats.started += 1;
        if self.active.len() >= self.active_capacity {
            // Drop the oldest in-flight trace; its queue entries are
            // reaped lazily when the stale id surfaces.
            if let Some((&old, _)) = self.active.iter().next() {
                self.active.remove(&old);
                self.stats.dropped += 1;
            }
        }
        self.active.insert(
            id,
            Trace {
                id: TraceId(id),
                ou,
                subsystem,
                tid,
                started_ns: now_ns,
                stages: vec![StageRecord {
                    stage: Stage::Marker,
                    enter_ns: now_ns,
                    exit_ns: now_ns,
                    queue_depth: 0,
                }],
                outcome: None,
                fail_reason: None,
                model_generation: None,
            },
        );
        Some(TraceId(id))
    }

    /// The marker state machine published its record into the ring.
    pub fn on_publish(&mut self, id: TraceId, now_ns: f64, ring_depth: u64) {
        let Some(t) = self.active.get_mut(&id.0) else {
            return;
        };
        let now = t.close_last(now_ns);
        t.push_stage(Stage::RingBuffer, now, now, ring_depth);
        let key = (t.ou, t.tid);
        self.in_ring.entry(key).or_default().push_back(id.0);
    }

    /// The marker state machine died before publishing (reset, backlog,
    /// features error): the trace terminates at the marker stage.
    pub fn on_marker_abort(&mut self, id: TraceId, now_ns: f64, reason: &str) {
        let Some(mut t) = self.active.remove(&id.0) else {
            return;
        };
        t.close_last(now_ns);
        t.fail_reason = Some(reason.to_string());
        self.finish(t, TraceOutcome::Lost);
    }

    /// The ring overwrote its oldest record for `(ou, tid)`.
    pub fn on_ring_evict(&mut self, ou: u16, tid: u64, now_ns: f64) {
        let Some(id) = self.pop_in_ring(ou, tid) else {
            return;
        };
        let Some(mut t) = self.active.remove(&id) else {
            return;
        };
        t.close_last(now_ns);
        t.fail_reason = Some("ring_overwrite".to_string());
        self.finish(t, TraceOutcome::Lost);
    }

    /// The Processor consumed the next `(ou, tid)` record: close the
    /// ring stage, stamp drain + sink. `terminal` completes the trace as
    /// delivered (Discard/CSV sinks); otherwise it parks awaiting the
    /// archive lifecycle. Returns whether a trace was matched (the
    /// caller charges tracing cost only then).
    #[allow(clippy::too_many_arguments)]
    pub fn on_consume(
        &mut self,
        ou: u16,
        tid: u64,
        drain_ns: f64,
        sink_enter_ns: f64,
        sink_exit_ns: f64,
        queue_depth: u64,
        terminal: bool,
    ) -> bool {
        let Some(id) = self.pop_in_ring(ou, tid) else {
            return false;
        };
        let Some(t) = self.active.get_mut(&id) else {
            return false;
        };
        t.close_last(drain_ns);
        t.push_stage(Stage::Drain, drain_ns, sink_enter_ns, queue_depth);
        t.push_stage(Stage::Sink, sink_enter_ns, sink_exit_ns, 0);
        if terminal {
            let t = self.active.remove(&id).unwrap();
            self.finish(t, TraceOutcome::Delivered);
        } else {
            self.parked.push_back(id);
        }
        true
    }

    /// A consumed record failed to decode: the trace dies at the sink.
    pub fn on_decode_error(&mut self, ou: u16, tid: u64, now_ns: f64) {
        let Some(id) = self.pop_in_ring(ou, tid) else {
            return;
        };
        let Some(mut t) = self.active.remove(&id) else {
            return;
        };
        t.close_last(now_ns);
        t.fail_reason = Some("decode_error".to_string());
        self.finish(t, TraceOutcome::Lost);
    }

    /// Collective lifecycle stamp: every parked trace passed through
    /// `stage` during `[enter, exit]` with the given queue depth.
    /// Lifecycle stages are batch operations (a memtable flush, a
    /// dataset scan), so one stamp covers every parked sample.
    pub fn lifecycle_stamp(&mut self, stage: Stage, enter_ns: f64, exit_ns: f64, depth: u64) {
        self.reap_parked();
        for id in &self.parked {
            if let Some(t) = self.active.get_mut(id) {
                if let Some(last) = t.stages.last_mut() {
                    if last.stage == stage {
                        // Re-stamped within the same batch (e.g. two
                        // flushes before a retrain): extend, don't dup.
                        last.exit_ns = exit_ns.max(last.exit_ns);
                        continue;
                    }
                    last.exit_ns = last.exit_ns.max(enter_ns);
                }
                t.push_stage(stage, enter_ns, exit_ns, depth);
            }
        }
    }

    /// A retrain consumed the archive: every parked trace terminates
    /// delivered, tagged with the resulting model generation. Returns
    /// how many traces completed.
    pub fn lifecycle_complete(&mut self, now_ns: f64, generation: u64) -> usize {
        self.reap_parked();
        let ids: Vec<u64> = self.parked.drain(..).collect();
        let mut n = 0;
        for id in ids {
            if let Some(mut t) = self.active.remove(&id) {
                t.push_stage(Stage::ModelGeneration, now_ns, now_ns, 0);
                t.model_generation = Some(generation);
                self.finish(t, TraceOutcome::Delivered);
                n += 1;
            }
        }
        n
    }

    /// Compaction retention retired `n` of the oldest archived samples:
    /// the oldest parked traces terminate as compacted.
    pub fn on_compacted(&mut self, n: u64, now_ns: f64) {
        for _ in 0..n {
            self.reap_parked();
            let Some(id) = self.parked.pop_front() else {
                return;
            };
            if let Some(mut t) = self.active.remove(&id) {
                if let Some(last) = t.stages.last_mut() {
                    last.exit_ns = last.exit_ns.max(now_ns);
                }
                self.finish(t, TraceOutcome::Compacted);
            }
        }
    }

    /// Pop the oldest live id for a key, skipping ids whose trace was
    /// dropped from the active table.
    fn pop_in_ring(&mut self, ou: u16, tid: u64) -> Option<u64> {
        let q = self.in_ring.get_mut(&(ou, tid))?;
        while let Some(id) = q.pop_front() {
            if self.active.contains_key(&id) {
                if q.is_empty() {
                    self.in_ring.remove(&(ou, tid));
                }
                return Some(id);
            }
        }
        self.in_ring.remove(&(ou, tid));
        None
    }

    /// Drop stale (already-dropped) ids from the head of the parked queue.
    fn reap_parked(&mut self) {
        while let Some(id) = self.parked.front() {
            if self.active.contains_key(id) {
                return;
            }
            self.parked.pop_front();
        }
    }

    /// Terminal bookkeeping: aggregates, exemplars, the completed ring,
    /// and the pending metric event the registry flushes.
    fn finish(&mut self, mut t: Trace, outcome: TraceOutcome) {
        t.outcome = Some(outcome);
        self.stats.completed += 1;
        let critical = t.critical_stage().map(|(s, _)| s);
        let mut durs = Vec::with_capacity(t.stages.len());
        for s in &t.stages {
            let d = (s.exit_ns - s.enter_ns).max(0.0);
            durs.push((s.stage, d));
            let agg = &mut self.stage_aggs[s.stage.idx()];
            agg.count += 1;
            agg.total_ns += d;
            agg.queue_sum += s.queue_depth as f64;
            if d >= agg.max_ns {
                agg.max_ns = d;
                agg.max_id = t.id.0;
            }
            self.exemplars
                .entry((s.stage.idx(), bucket_index(d)))
                .or_insert((t.id.0, d));
        }
        if let Some(c) = critical {
            self.stage_aggs[c.idx()].critical += 1;
        }
        self.pending.push(Completion {
            outcome,
            critical,
            stage_durs: durs,
        });
        if self.completed.len() == self.capacity {
            self.completed.pop_front();
            self.stats.ring_evicted += 1;
        }
        self.completed.push_back(t);
    }

    /// Completion events since the last flush (registry-internal).
    pub(crate) fn take_pending(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.pending)
    }

    /// JSON export of the tracer state: stats, per-stage summary with
    /// exemplars, and the full completed-trace ring. `p50p99` supplies
    /// per-stage `(p50, p99)` latency (from the registry histograms).
    pub fn to_json(&self, p50p99: &dyn Fn(Stage) -> (f64, f64)) -> String {
        let st = self.stats();
        let mut out = format!(
            "{{\n  \"every\": {},\n  \"stats\": {{\"started\": {}, \"completed\": {}, \
             \"dropped\": {}, \"in_flight\": {}, \"ring_evicted\": {}}},\n  \"stages\": [",
            self.every, st.started, st.completed, st.dropped, st.in_flight, st.ring_evicted
        );
        let stages: Vec<String> = ALL_STAGES
            .iter()
            .map(|s| {
                let a = &self.stage_aggs[s.idx()];
                let (p50, p99) = p50p99(*s);
                format!(
                    "\n    {{\"stage\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                     \"max_ns\": {}, \"max_trace_id\": {}, \"avg_queue_depth\": {}, \
                     \"critical_count\": {}}}",
                    s.name(),
                    a.count,
                    json_num(p50),
                    json_num(p99),
                    json_num(a.max_ns),
                    a.max_id,
                    json_num(if a.count == 0 {
                        0.0
                    } else {
                        a.queue_sum / a.count as f64
                    }),
                    a.critical,
                )
            })
            .collect();
        out.push_str(&stages.join(","));
        out.push_str("\n  ],\n  \"exemplars\": [");
        let ex: Vec<String> = self
            .exemplars()
            .map(|(s, upper, id, v)| {
                format!(
                    "\n    {{\"stage\": \"{}\", \"bucket_upper_ns\": {}, \"trace_id\": {}, \
                     \"value_ns\": {}}}",
                    s.name(),
                    json_num(upper),
                    id.0,
                    json_num(v),
                )
            })
            .collect();
        out.push_str(&ex.join(","));
        out.push_str("\n  ],\n  \"traces\": [");
        let traces: Vec<String> = self
            .completed
            .iter()
            .map(|t| {
                let stages: Vec<String> = t
                    .stages
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"stage\": \"{}\", \"enter_ns\": {}, \"exit_ns\": {}, \
                             \"queue_depth\": {}}}",
                            s.stage.name(),
                            json_num(s.enter_ns),
                            json_num(s.exit_ns),
                            s.queue_depth,
                        )
                    })
                    .collect();
                format!(
                    "\n    {{\"id\": {}, \"ou\": {}, \"subsystem\": {}, \"tid\": {}, \
                     \"started_ns\": {}, \"outcome\": \"{}\", \"fail_reason\": {}, \
                     \"model_generation\": {}, \"critical_stage\": {}, \"total_ns\": {}, \
                     \"monotone\": {}, \"stages\": [{}]}}",
                    t.id.0,
                    t.ou,
                    t.subsystem,
                    t.tid,
                    json_num(t.started_ns),
                    t.outcome.map(|o| o.name()).unwrap_or("in_flight"),
                    t.fail_reason
                        .as_ref()
                        .map(|r| format!("\"{}\"", json_escape(r)))
                        .unwrap_or_else(|| "null".into()),
                    t.model_generation
                        .map(|g| g.to_string())
                        .unwrap_or_else(|| "null".into()),
                    t.critical_stage()
                        .map(|(s, _)| format!("\"{}\"", s.name()))
                        .unwrap_or_else(|| "null".into()),
                    json_num(t.total_ns()),
                    t.timestamps_monotone(),
                    stages.join(", "),
                )
            })
            .collect();
        out.push_str(&traces.join(","));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(t: &mut Tracer) -> TraceId {
        t.maybe_begin(3, 1, 40, 100.0).expect("sampled")
    }

    #[test]
    fn sampling_respects_every() {
        let mut t = Tracer::default();
        assert!(t.maybe_begin(1, 1, 1, 0.0).is_none(), "off by default");
        t.set_every(4);
        let mut hits = 0;
        for i in 0..16 {
            if t.maybe_begin(1, 1, 1, i as f64).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 4);
        assert_eq!(t.stats().started, 4);
    }

    #[test]
    fn full_delivered_lineage_and_accounting() {
        let mut t = Tracer::default();
        t.set_every(1);
        let id = traced(&mut t);
        t.on_publish(id, 200.0, 5);
        assert!(t.on_consume(3, 40, 300.0, 310.0, 350.0, 4, false));
        t.lifecycle_stamp(Stage::ArchiveMemtable, 400.0, 410.0, 2);
        t.lifecycle_stamp(Stage::SegmentSeal, 420.0, 430.0, 0);
        t.lifecycle_stamp(Stage::Dataset, 440.0, 450.0, 0);
        assert_eq!(t.lifecycle_complete(500.0, 7), 1);
        let st = t.stats();
        assert!(st.closes(), "{st:?}");
        assert_eq!(st.completed, 1);
        assert_eq!(st.in_flight, 0);
        let tr = t.completed_iter().next().unwrap();
        assert_eq!(tr.outcome, Some(TraceOutcome::Delivered));
        assert_eq!(tr.model_generation, Some(7));
        assert_eq!(tr.stages.len(), 8, "{:?}", tr.stages);
        assert!(tr.timestamps_monotone());
        assert_eq!(tr.stages[0].stage, Stage::Marker);
        assert_eq!(tr.stages.last().unwrap().stage, Stage::ModelGeneration);
    }

    #[test]
    fn ring_eviction_is_fifo_per_key_and_lost() {
        let mut t = Tracer::default();
        t.set_every(1);
        let a = t.maybe_begin(3, 1, 40, 0.0).unwrap();
        let b = t.maybe_begin(3, 1, 40, 1.0).unwrap();
        t.on_publish(a, 10.0, 1);
        t.on_publish(b, 11.0, 2);
        t.on_ring_evict(3, 40, 20.0);
        // The *older* publish was evicted.
        assert!(t.on_consume(3, 40, 30.0, 31.0, 32.0, 0, true));
        let outcomes: Vec<_> = t.completed_iter().map(|x| (x.id, x.outcome)).collect();
        assert_eq!(outcomes[0], (a, Some(TraceOutcome::Lost)));
        assert_eq!(outcomes[1], (b, Some(TraceOutcome::Delivered)));
        assert!(t.stats().closes());
    }

    #[test]
    fn marker_abort_terminates_lost() {
        let mut t = Tracer::default();
        t.set_every(1);
        let id = traced(&mut t);
        t.on_marker_abort(id, 150.0, "state_reset");
        let tr = t.completed_iter().next().unwrap();
        assert_eq!(tr.outcome, Some(TraceOutcome::Lost));
        assert_eq!(tr.fail_reason.as_deref(), Some("state_reset"));
        assert!(t.stats().closes());
    }

    #[test]
    fn active_overflow_drops_oldest_and_still_closes() {
        let mut t = Tracer::default();
        t.set_every(1);
        t.active_capacity = 4;
        let ids: Vec<TraceId> = (0..6)
            .map(|i| t.maybe_begin(1, 1, i, i as f64).unwrap())
            .collect();
        let st = t.stats();
        assert_eq!(st.started, 6);
        assert_eq!(st.dropped, 2);
        assert_eq!(st.in_flight, 4);
        assert!(st.closes());
        // Publishing a dropped trace is a no-op; a live one still works.
        t.on_publish(ids[0], 10.0, 0);
        t.on_publish(ids[5], 10.0, 0);
        assert!(!t.on_consume(1, 0, 20.0, 21.0, 22.0, 0, true));
        assert!(t.on_consume(1, 5, 20.0, 21.0, 22.0, 0, true));
        assert!(t.stats().closes());
    }

    #[test]
    fn completed_ring_bounds_and_counts_evictions() {
        let mut t = Tracer::default();
        t.set_every(1);
        t.capacity = 3;
        for i in 0..5u64 {
            let id = t.maybe_begin(1, 1, i, 0.0).unwrap();
            t.on_marker_abort(id, 1.0, "x");
        }
        assert_eq!(t.completed.len(), 3);
        let st = t.stats();
        assert_eq!(st.completed, 5);
        assert_eq!(st.ring_evicted, 2);
        assert!(st.closes());
    }

    #[test]
    fn critical_stage_picks_dominating() {
        let mut t = Tracer::default();
        t.set_every(1);
        let id = traced(&mut t);
        t.on_publish(id, 110.0, 9); // marker: 10 ns
        assert!(t.on_consume(3, 40, 5_110.0, 5_120.0, 5_150.0, 3, true)); // ring: 5000 ns
        let tr = t.completed_iter().next().unwrap();
        assert_eq!(tr.critical_stage().unwrap().0, Stage::RingBuffer);
        let ring_agg = t
            .stage_aggs()
            .find(|(s, _)| *s == Stage::RingBuffer)
            .unwrap()
            .1;
        assert_eq!(ring_agg.critical, 1);
        assert_eq!(ring_agg.max_id, tr.id.0);
    }

    #[test]
    fn json_export_is_shaped() {
        let mut t = Tracer::default();
        t.set_every(1);
        let id = traced(&mut t);
        t.on_publish(id, 200.0, 1);
        assert!(t.on_consume(3, 40, 300.0, 301.0, 320.0, 0, true));
        let j = t.to_json(&|_| (1.0, 2.0));
        for needle in [
            "\"stats\"",
            "\"started\": 1",
            "\"completed\": 1",
            "\"stages\"",
            "\"exemplars\"",
            "\"traces\"",
            "\"outcome\": \"delivered\"",
            "\"monotone\": true",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }
}
