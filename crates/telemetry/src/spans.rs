//! Ring-buffered span storage.
//!
//! Spans are complete intervals (`start_ns`, `dur_ns` in virtual time)
//! recorded after the fact — the simulation always knows both endpoints,
//! so there is no open-span bookkeeping. Storage is a fixed-capacity
//! ring: under sustained load old spans are overwritten, mirroring the
//! no-back-pressure philosophy of the perf ring buffer itself, and the
//! overwrite count is reported so exports can say what they lost.

use std::collections::VecDeque;

/// Default span ring capacity. At ~100 bytes per span this bounds span
/// memory to a few MiB regardless of run length.
pub const DEFAULT_SPAN_CAPACITY: usize = 16 * 1024;

/// One completed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub name: String,
    pub category: String,
    pub start_ns: f64,
    pub dur_ns: f64,
}

/// Fixed-capacity span ring. Overwrites oldest on overflow.
#[derive(Debug, Clone)]
pub struct SpanRing {
    buf: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanRing {
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    pub fn record(&mut self, span: Span) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(span);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(i: usize) -> Span {
        Span {
            name: format!("s{i}"),
            category: "t".into(),
            start_ns: i as f64,
            dur_ns: 1.0,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = SpanRing::with_capacity(4);
        for i in 0..10 {
            r.record(span(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let names: Vec<&str> = r.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = SpanRing::with_capacity(0);
        r.record(span(0));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn eviction_is_strict_fifo_across_multiple_wraps() {
        // Wrap the ring several times over; at every step the survivors
        // must be exactly the newest `capacity` spans, oldest first.
        let mut r = SpanRing::with_capacity(3);
        for i in 0..17 {
            r.record(span(i));
            let names: Vec<&str> = r.iter().map(|s| s.name.as_str()).collect();
            let lo = (i + 1).saturating_sub(3);
            let want: Vec<String> = (lo..=i).map(|j| format!("s{j}")).collect();
            assert_eq!(names, want, "after record {i}");
        }
    }

    #[test]
    fn dropped_counts_every_overflow_exactly() {
        let mut r = SpanRing::with_capacity(1);
        assert_eq!(r.dropped(), 0);
        r.record(span(0));
        assert_eq!(r.dropped(), 0, "filling to capacity drops nothing");
        for i in 1..=100 {
            r.record(span(i));
            assert_eq!(r.dropped(), i as u64);
            assert_eq!(r.len(), 1);
        }
        // Accounting closes: recorded = retained + dropped.
        assert_eq!(101, r.len() as u64 + r.dropped());
    }

    #[test]
    fn iterator_after_wraparound_preserves_order_and_contents() {
        let mut r = SpanRing::with_capacity(4);
        for i in 0..10 {
            r.record(span(i));
        }
        // Contents are the newest four, in insertion order, with their
        // payload fields (not just names) intact.
        let got: Vec<(String, f64)> = r.iter().map(|s| (s.name.clone(), s.start_ns)).collect();
        assert_eq!(
            got,
            vec![
                ("s6".to_string(), 6.0),
                ("s7".to_string(), 7.0),
                ("s8".to_string(), 8.0),
                ("s9".to_string(), 9.0),
            ]
        );
        assert!(!r.is_empty());
        assert_eq!(r.iter().count(), r.len());
    }
}
