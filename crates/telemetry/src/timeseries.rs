//! Windowed time-series store over the metric registry.
//!
//! End-of-run totals hide dynamics: a sampling-rate change mid-run
//! (Fig. 8), the WAL group-commit batch size breathing with load, a
//! ring buffer that only overwrites during a burst. The [`TimeSeries`]
//! captures those by periodically *scraping* the registry's counters
//! into a fixed-capacity ring of windows. Each window stores the
//! **cumulative** counter values at its (virtual) end time, so
//! per-window deltas and rates are exact differences — no sampling — and
//! merging scrapes is never needed.
//!
//! Scrapes are driven by the caller (the workload driver scrapes at its
//! pump cadence; tests scrape explicitly), keeping this module wall-
//! clock-free like the rest of the crate.

use std::collections::{BTreeMap, VecDeque};

use crate::{json_escape, json_num};

/// Default ring capacity: enough for a full figure run at the driver's
/// pump cadence without unbounded growth.
pub const DEFAULT_WINDOW_CAPACITY: usize = 1024;

/// One scrape: cumulative counter values at `end_ns`.
#[derive(Debug, Clone, Default)]
pub struct Window {
    pub end_ns: f64,
    /// Rendered metric key (`name{label="v"}`) -> cumulative value.
    pub counters: BTreeMap<String, u64>,
}

/// Fixed-capacity ring of counter windows.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    capacity: usize,
    windows: VecDeque<Window>,
    evicted: u64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::with_capacity(DEFAULT_WINDOW_CAPACITY)
    }
}

impl TimeSeries {
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Record a scrape. Out-of-order scrapes (`end_ns` earlier than the
    /// last window) are dropped; a scrape at exactly the last window's
    /// time replaces it (idempotent re-scrape).
    pub fn push(&mut self, window: Window) {
        if let Some(last) = self.windows.back() {
            if window.end_ns < last.end_ns {
                return;
            }
            if window.end_ns == last.end_ns {
                *self.windows.back_mut().expect("non-empty") = window;
                return;
            }
        }
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
            self.evicted += 1;
        }
        self.windows.push_back(window);
    }

    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows evicted to respect capacity (oldest-first).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    pub fn window(&self, i: usize) -> Option<&Window> {
        self.windows.get(i)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// Sum of a metric's cumulative value across label sets in window
    /// `i`. Rendered keys are `name` or `name{...}`.
    pub fn total_in_window(&self, name: &str, i: usize) -> u64 {
        self.windows
            .get(i)
            .map(|w| sum_named(&w.counters, name))
            .unwrap_or(0)
    }

    /// Increment of `name` (summed across label sets) during window
    /// `i`, i.e. cumulative(i) − cumulative(i−1); window 0's delta is
    /// its cumulative value.
    pub fn delta(&self, name: &str, i: usize) -> u64 {
        let cur = self.total_in_window(name, i);
        if i == 0 {
            return cur;
        }
        cur.saturating_sub(self.total_in_window(name, i - 1))
    }

    /// Average rate of `name` (summed across label sets) over the whole
    /// retained series, in events per virtual **second**. Needs at
    /// least two windows spanning positive time; otherwise 0.0.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let (Some(first), Some(last)) = (self.windows.front(), self.windows.back()) else {
            return 0.0;
        };
        let dt_ns = last.end_ns - first.end_ns;
        if dt_ns <= 0.0 {
            return 0.0;
        }
        let d = sum_named(&last.counters, name).saturating_sub(sum_named(&first.counters, name));
        d as f64 / (dt_ns / 1e9)
    }

    /// Instantaneous rate of `name` over the **latest** window only
    /// (events per virtual second between the last two scrapes). `None`
    /// with fewer than two windows or a non-positive span — the health
    /// rules treat that as "no signal" rather than a zero rate.
    pub fn latest_rate_per_sec(&self, name: &str) -> Option<f64> {
        let n = self.windows.len();
        if n < 2 {
            return None;
        }
        let (prev, last) = (&self.windows[n - 2], &self.windows[n - 1]);
        let dt_ns = last.end_ns - prev.end_ns;
        if dt_ns <= 0.0 {
            return None;
        }
        let d = sum_named(&last.counters, name).saturating_sub(sum_named(&prev.counters, name));
        Some(d as f64 / (dt_ns / 1e9))
    }

    /// Metric names (label-stripped) present in any window, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .windows
            .iter()
            .flat_map(|w| w.counters.keys())
            .map(|k| base_name(k).to_string())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// JSON export: the windows (cumulative values) plus an overall
    /// per-metric rate summary.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"windows\": [");
        let windows: Vec<String> = self
            .windows
            .iter()
            .map(|w| {
                let counters: Vec<String> = w
                    .counters
                    .iter()
                    .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
                    .collect();
                format!(
                    "\n    {{\"end_ns\": {}, \"counters\": {{{}}}}}",
                    json_num(w.end_ns),
                    counters.join(", "),
                )
            })
            .collect();
        out.push_str(&windows.join(","));
        out.push_str("\n  ],\n  \"rates_per_sec\": {");
        let rates: Vec<String> = self
            .metric_names()
            .iter()
            .map(|n| {
                format!(
                    "\n    \"{}\": {}",
                    json_escape(n),
                    json_num(self.rate_per_sec(n)),
                )
            })
            .collect();
        out.push_str(&rates.join(","));
        out.push_str(&format!("\n  }},\n  \"evicted\": {}\n}}", self.evicted));
        out
    }
}

/// Strip a rendered key's label block: `name{...}` -> `name`.
fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Sum every label set of `name` in one window's counter map.
fn sum_named(counters: &BTreeMap<String, u64>, name: &str) -> u64 {
    counters
        .iter()
        .filter(|(k, _)| base_name(k) == name)
        .map(|(_, v)| v)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(end_ns: f64, pairs: &[(&str, u64)]) -> Window {
        Window {
            end_ns,
            counters: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn deltas_are_window_increments() {
        let mut ts = TimeSeries::default();
        ts.push(win(1000.0, &[("reqs", 10)]));
        ts.push(win(2000.0, &[("reqs", 25)]));
        ts.push(win(3000.0, &[("reqs", 25)]));
        assert_eq!(ts.delta("reqs", 0), 10);
        assert_eq!(ts.delta("reqs", 1), 15);
        assert_eq!(ts.delta("reqs", 2), 0);
    }

    #[test]
    fn rate_spans_first_to_last_window() {
        let mut ts = TimeSeries::default();
        ts.push(win(0.0, &[("reqs", 0)]));
        ts.push(win(2e9, &[("reqs", 100)]));
        assert_eq!(ts.rate_per_sec("reqs"), 50.0);
        // A single window has no span.
        let mut one = TimeSeries::default();
        one.push(win(5.0, &[("reqs", 3)]));
        assert_eq!(one.rate_per_sec("reqs"), 0.0);
    }

    #[test]
    fn label_sets_sum_under_one_name() {
        let mut ts = TimeSeries::default();
        ts.push(win(
            1.0,
            &[("d{sub=\"ee\"}", 4), ("d{sub=\"net\"}", 6), ("other", 1)],
        ));
        assert_eq!(ts.total_in_window("d", 0), 10);
        assert_eq!(
            ts.metric_names(),
            vec!["d".to_string(), "other".to_string()]
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut ts = TimeSeries::with_capacity(2);
        ts.push(win(1.0, &[("c", 1)]));
        ts.push(win(2.0, &[("c", 2)]));
        ts.push(win(3.0, &[("c", 3)]));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.evicted(), 1);
        assert_eq!(ts.window(0).unwrap().end_ns, 2.0);
    }

    #[test]
    fn out_of_order_dropped_and_same_time_replaces() {
        let mut ts = TimeSeries::default();
        ts.push(win(10.0, &[("c", 1)]));
        ts.push(win(5.0, &[("c", 99)])); // dropped
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.total_in_window("c", 0), 1);
        ts.push(win(10.0, &[("c", 7)])); // re-scrape replaces
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.total_in_window("c", 0), 7);
    }

    #[test]
    fn eviction_preserves_deltas_and_rates_across_wraparound() {
        // A capacity-4 ring scraped 10 times: the retained suffix must
        // still produce exact deltas and a first-to-last rate, with the
        // evicted count telling the caller the prefix is gone.
        let mut ts = TimeSeries::with_capacity(4);
        for i in 0..10u64 {
            ts.push(win(i as f64 * 1e9, &[("c", i * 100)]));
        }
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.evicted(), 6);
        // Windows 6..=9 remain; window 0 of the ring is cumulative 600.
        assert_eq!(ts.total_in_window("c", 0), 600);
        assert_eq!(ts.delta("c", 0), 600); // no predecessor retained
        assert_eq!(ts.delta("c", 1), 100);
        assert_eq!(ts.rate_per_sec("c"), 100.0);
        assert_eq!(ts.latest_rate_per_sec("c"), Some(100.0));
    }

    #[test]
    fn zero_elapsed_span_reports_zero_rate() {
        // Two scrapes at the same virtual instant: the second replaces
        // the first, leaving a single window — rate must be 0, not a
        // division by zero.
        let mut ts = TimeSeries::default();
        ts.push(win(5.0, &[("c", 1)]));
        ts.push(win(5.0, &[("c", 9)]));
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.rate_per_sec("c"), 0.0);
        assert_eq!(ts.latest_rate_per_sec("c"), None);
    }

    #[test]
    fn latest_rate_uses_only_last_two_windows() {
        let mut ts = TimeSeries::default();
        ts.push(win(0.0, &[("c", 0)]));
        ts.push(win(1e9, &[("c", 1_000)]));
        ts.push(win(2e9, &[("c", 1_010)]));
        // Overall rate averages the burst away; the latest rate doesn't.
        assert_eq!(ts.rate_per_sec("c"), 505.0);
        assert_eq!(ts.latest_rate_per_sec("c"), Some(10.0));
        let mut one = TimeSeries::default();
        one.push(win(1.0, &[("c", 5)]));
        assert_eq!(one.latest_rate_per_sec("c"), None);
    }

    #[test]
    fn json_shape() {
        let mut ts = TimeSeries::default();
        ts.push(win(0.0, &[("c", 0)]));
        ts.push(win(1e9, &[("c", 8)]));
        let j = ts.to_json();
        for needle in [
            "\"windows\"",
            "\"rates_per_sec\"",
            "\"evicted\"",
            "\"c\": 8",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }
}
