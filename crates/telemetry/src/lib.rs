//! Self-telemetry for the TScout reproduction.
//!
//! TScout's accuracy story (paper §5.3, §6) depends on *accounting for
//! every sample*: how many collections began, how many records survived
//! the ring buffer, how many were lost and where. This crate is the
//! shared language every layer uses to report that — a dependency-free
//! metrics registry (counters, gauges, log-bucketed latency histograms
//! with percentile estimation) plus a ring-buffered span tracer.
//!
//! Design points:
//!
//! - **Zero dependencies.** Only `std`. The whole workspace must build
//!   offline; telemetry cannot be the thing that breaks that.
//! - **Virtual-time native.** The simulation has its own clocks, so
//!   nothing here reads wall time: all durations and span timestamps are
//!   passed in by the caller in (virtual) nanoseconds.
//! - **One registry per simulated world.** `Telemetry` is a cheap-clone
//!   handle (`Arc<Mutex<Registry>>`). The `Kernel` owns the canonical
//!   handle and every component attached to it (TScout, Processor,
//!   Database) clones it, so a whole simulation aggregates into one
//!   registry while parallel tests stay isolated.
//! - **Exportable.** Prometheus-style text exposition
//!   ([`Registry::to_prometheus`]), chrome://tracing JSON for spans
//!   ([`Registry::spans_to_chrome_json`]), and a combined JSON snapshot
//!   ([`Registry::snapshot_json`]) that the bench binaries write to
//!   `results/telemetry_<fig>.json`.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod actions;
mod docs;
mod drift;
mod health;
mod histogram;
mod metrics;
mod profile;
mod sketch;
mod spans;
mod stmt;
mod timeseries;
mod trace;

pub use actions::{ActionLog, ActionRecord, ActionState, ACTION_LOG_CAPACITY};
pub use docs::{is_documented, metric_help, metric_table_markdown, METRIC_DOCS};
pub use drift::{
    DriftChannel, DriftRegistry, DriftScore, OuDrift, DEFAULT_MIN_LIVE_SAMPLES,
    DEFAULT_REFERENCE_SAMPLES,
};
pub use health::{
    default_rules, Alert, HealthEngine, HealthState, Rule, Selector, Signals, ALERT_CAPACITY,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{MetricKey, Registry};
pub use profile::{
    Attribution, FoldedEntry, FrameGuard, Profiler, DEFAULT_PROFILE_PERIOD_NS, OTHER_STACK,
};
pub use sketch::Sketch;
pub use spans::{Span, SpanRing, DEFAULT_SPAN_CAPACITY};
pub use stmt::{StmtEntry, StmtStats, DEFAULT_STMT_CAP};
pub use timeseries::{TimeSeries, Window, DEFAULT_WINDOW_CAPACITY};
pub use trace::{
    FlightRecorderArm, Stage, StageAgg, StageRecord, Trace, TraceId, TraceOutcome, TraceStats,
    Tracer, ALL_STAGES, DEFAULT_ACTIVE_TRACE_CAPACITY, DEFAULT_TRACE_CAPACITY,
};

use std::sync::{Arc, Mutex, PoisonError};

/// Cheap-clone handle to a shared [`Registry`].
///
/// All recording methods take `&self` and lock internally; the lock is
/// uncontended in the single-threaded simulation, so the overhead is one
/// atomic pair per record.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<Registry>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.lock();
        f.debug_struct("Telemetry")
            .field("metrics", &reg.len())
            .field("spans", &reg.spans().len())
            .finish()
    }
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        // A panic while holding the lock only loses telemetry, never
        // correctness; recover rather than propagate poisoning.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Add `v` to the counter `name{labels}`.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.lock().counter_add(name, labels, v);
    }

    /// Increment the counter `name{labels}` by one.
    pub fn counter_inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Read a counter back (0 if never written).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.lock().counter_value(name, labels)
    }

    /// Sum of all counters sharing `name`, across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock().counter_total(name)
    }

    /// Set the gauge `name{labels}`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lock().gauge_set(name, labels, v);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water marks).
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lock().gauge_max(name, labels, v);
    }

    /// Add `delta` (possibly negative) to the gauge `name{labels}` —
    /// occupancy gauges that several owners update incrementally.
    pub fn gauge_add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        self.lock().gauge_add(name, labels, delta);
    }

    /// Read a gauge back (0.0 if never written).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.lock().gauge_value(name, labels)
    }

    /// Record one observation into the histogram `name{labels}`.
    pub fn hist_record(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lock().hist_record(name, labels, v);
    }

    /// Register a histogram without recording an observation (see
    /// [`Registry::hist_declare`]).
    pub fn hist_declare(&self, name: &str, labels: &[(&str, &str)]) {
        self.lock().hist_declare(name, labels);
    }

    /// Snapshot a histogram (None if never written).
    pub fn hist_snapshot(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        self.lock().hist_snapshot(name, labels)
    }

    /// Record a completed span with explicit virtual timestamps.
    pub fn span(&self, name: &str, category: &str, start_ns: f64, dur_ns: f64) {
        self.lock().record_span(name, category, start_ns, dur_ns);
    }

    /// Run the closure with the registry locked (bulk export/merge).
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        f(&mut self.lock())
    }

    /// Prometheus text exposition of all metrics.
    pub fn to_prometheus(&self) -> String {
        self.lock().to_prometheus()
    }

    /// Combined JSON snapshot (metrics + span summary).
    pub fn snapshot_json(&self) -> String {
        self.lock().snapshot_json()
    }

    /// chrome://tracing ("trace event format") JSON for recorded spans.
    pub fn spans_to_chrome_json(&self) -> String {
        self.lock().spans_to_chrome_json()
    }

    /// Scrape current counter values into the registry's time series as
    /// a window ending at virtual time `now_ns` (see [`TimeSeries`]).
    pub fn scrape_window(&self, now_ns: f64) {
        self.lock().scrape_window(now_ns);
    }

    /// Number of scraped time-series windows currently retained.
    pub fn timeseries_len(&self) -> usize {
        self.lock().timeseries().len()
    }

    /// Average rate of a counter (summed across label sets) over the
    /// retained time series, in events per virtual second.
    pub fn timeseries_rate(&self, name: &str) -> f64 {
        self.lock().timeseries().rate_per_sec(name)
    }

    /// JSON export of the scraped time series.
    pub fn timeseries_json(&self) -> String {
        self.lock().timeseries_json()
    }

    /// Feed one decoded training sample into the per-OU drift channels
    /// (see [`DriftRegistry::observe_sample`]).
    pub fn observe_ou_sample(&self, ou: &str, subsystem: &str, target_ns: f64, feature_norm: f64) {
        self.lock()
            .observe_ou_sample(ou, subsystem, target_ns, feature_norm);
    }

    /// Feed one live-model residual pair for an OU (see
    /// [`DriftRegistry::observe_residual`]).
    pub fn observe_residual(&self, ou: &str, predicted_ns: f64, actual_ns: f64) {
        self.lock().observe_residual(ou, predicted_ns, actual_ns);
    }

    /// One full observability turn: evaluate drift, scrape a counter
    /// window, run the health rules. Returns this tick's health
    /// transitions (see [`Registry::observability_tick`]).
    pub fn observability_tick(&self, now_ns: f64) -> Vec<Alert> {
        self.lock().observability_tick(now_ns)
    }

    /// JSON export of drift + health state (see [`Registry::health_json`]).
    pub fn health_json(&self) -> String {
        self.lock().health_json()
    }

    /// Fold one executed statement into the statement-stats registry
    /// (see [`Registry::stmt_record`]).
    pub fn stmt_record(
        &self,
        fingerprint: &str,
        actual_ns: f64,
        rows: u64,
        ou_ns: &[(&str, f64)],
        predicted_ns: Option<f64>,
    ) {
        self.lock()
            .stmt_record(fingerprint, actual_ns, rows, ou_ns, predicted_ns);
    }

    /// Total statements folded into the stats registry (drives the
    /// driver's pump-cadence accounting charge).
    pub fn stmt_recorded(&self) -> u64 {
        self.lock().stmts().recorded()
    }

    /// Enable lineage tracing: trace 1 in `every` collected markers
    /// (0 disables).
    pub fn trace_set_every(&self, every: u64) {
        self.lock().tracer_mut().set_every(every);
    }

    /// Current trace sampling divisor (0 = off).
    pub fn trace_every(&self) -> u64 {
        self.lock().tracer().every()
    }

    /// Sampling decision at marker fire time (see
    /// [`Registry::trace_begin`]).
    pub fn trace_begin(&self, ou: u16, subsystem: u8, tid: u64, now_ns: f64) -> Option<TraceId> {
        self.lock().trace_begin(ou, subsystem, tid, now_ns)
    }

    /// The traced marker's record was published into the ring.
    pub fn trace_publish(&self, id: TraceId, now_ns: f64, ring_depth: u64) {
        self.lock().trace_publish(id, now_ns, ring_depth);
    }

    /// The traced marker died before publishing.
    pub fn trace_marker_abort(&self, id: TraceId, now_ns: f64, reason: &str) {
        self.lock().trace_marker_abort(id, now_ns, reason);
    }

    /// The ring overwrote its oldest `(ou, tid)` record.
    pub fn trace_ring_evict(&self, ou: u16, tid: u64, now_ns: f64) {
        self.lock().trace_ring_evict(ou, tid, now_ns);
    }

    /// Processor-side drain + sink stamp (see [`Registry::trace_consume`]).
    #[allow(clippy::too_many_arguments)]
    pub fn trace_consume(
        &self,
        ou: u16,
        tid: u64,
        drain_ns: f64,
        sink_enter_ns: f64,
        sink_exit_ns: f64,
        queue_depth: u64,
        terminal: bool,
    ) -> bool {
        self.lock().trace_consume(
            ou,
            tid,
            drain_ns,
            sink_enter_ns,
            sink_exit_ns,
            queue_depth,
            terminal,
        )
    }

    /// A traced record failed to decode at the Processor.
    pub fn trace_decode_error(&self, ou: u16, tid: u64, now_ns: f64) {
        self.lock().trace_decode_error(ou, tid, now_ns);
    }

    /// Collective lifecycle stamp for parked traces (archive memtable,
    /// segment seal, dataset stages).
    pub fn trace_lifecycle_stamp(&self, stage: Stage, enter_ns: f64, exit_ns: f64, depth: u64) {
        self.lock()
            .trace_lifecycle_stamp(stage, enter_ns, exit_ns, depth);
    }

    /// Retrain completion: parked traces terminate delivered. Returns
    /// how many completed.
    pub fn trace_lifecycle_complete(&self, now_ns: f64, generation: u64) -> usize {
        self.lock().trace_lifecycle_complete(now_ns, generation)
    }

    /// Compaction retention retired `n` archived samples.
    pub fn trace_compacted(&self, n: u64, now_ns: f64) {
        self.lock().trace_compacted(n, now_ns);
    }

    /// Exact trace accounting (see [`TraceStats`]).
    pub fn trace_stats(&self) -> TraceStats {
        self.lock().trace_stats()
    }

    /// JSON export of the tracer (see [`Registry::trace_json`]).
    pub fn trace_json(&self) -> String {
        self.lock().trace_json()
    }

    /// Arm the on-CRITICAL flight recorder (see
    /// [`Registry::arm_flight_recorder`]).
    pub fn arm_flight_recorder(&self, dir: std::path::PathBuf, fig: &str) {
        self.lock().arm_flight_recorder(dir, fig);
    }

    /// Whether a flight-recorder output directory is armed.
    pub fn flight_recorder_armed(&self) -> bool {
        self.lock().flight_recorder_armed()
    }

    /// Armed flight-recorder directory and fig name (see
    /// [`Registry::flight_recorder_target`]).
    pub fn flight_recorder_target(&self) -> Option<(std::path::PathBuf, String)> {
        self.lock().flight_recorder_target()
    }

    /// Write a flight-recorder bundle if `alerts` contains a fired
    /// CRITICAL transition (see [`Registry::flight_record`]).
    pub fn flight_record(
        &self,
        now_ns: f64,
        alerts: &[Alert],
        profile_folded: &str,
    ) -> Option<std::path::PathBuf> {
        self.lock().flight_record(now_ns, alerts, profile_folded)
    }

    /// Append one action record to the action log; returns its assigned
    /// id (see [`ActionLog::append`]).
    pub fn action_append(&self, record: ActionRecord) -> u64 {
        self.lock().actions_mut().append(record)
    }

    /// Close a pending action record with its observed outcome; returns
    /// the updated record (see [`ActionLog::observe`]).
    pub fn action_observe(
        &self,
        id: u64,
        observed: f64,
        observed_at_ns: f64,
        err_pct: f64,
        regressed: bool,
    ) -> Option<ActionRecord> {
        self.lock()
            .actions_mut()
            .observe(id, observed, observed_at_ns, err_pct, regressed)
    }

    /// Snapshot of all retained action records (oldest first).
    pub fn actions_snapshot(&self) -> Vec<ActionRecord> {
        self.lock().actions().iter().cloned().collect()
    }

    /// JSON export of the action log (see [`ActionLog::to_json`]).
    pub fn actions_json(&self) -> String {
        self.lock().actions().to_json()
    }

    /// Write a flight-recorder bundle for a regressed action-engine
    /// intervention (see [`Registry::flight_record_action`]).
    pub fn flight_record_action(
        &self,
        now_ns: f64,
        action_id: u64,
        profile_folded: &str,
    ) -> Option<std::path::PathBuf> {
        self.lock()
            .flight_record_action(now_ns, action_id, profile_folded)
    }

    /// Rebaseline every OU's drift channels and zero the sticky score
    /// gauges (see [`Registry::drift_rebaseline_all`]).
    pub fn drift_rebaseline_all(&self) -> usize {
        self.lock().drift_rebaseline_all()
    }

    /// Merge another handle's registry into this one (counters add,
    /// gauges take max, histograms add bucket-wise, spans append).
    pub fn absorb(&self, other: &Telemetry) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let theirs = other.lock().clone();
        self.lock().merge_from(&theirs);
    }
}

/// Minimal JSON string escaping for export paths (metric names, label
/// values, span names — all ASCII in practice, but stay correct).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 for JSON (no NaN/Inf — clamp to null-safe 0).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_counters_round_trip() {
        let t = Telemetry::new();
        t.counter_inc("events", &[("sub", "ee")]);
        t.counter_add("events", &[("sub", "ee")], 4);
        t.counter_inc("events", &[("sub", "net")]);
        assert_eq!(t.counter_value("events", &[("sub", "ee")]), 5);
        assert_eq!(t.counter_value("events", &[("sub", "net")]), 1);
        assert_eq!(t.counter_value("events", &[("sub", "wal")]), 0);
        assert_eq!(t.counter_total("events"), 6);
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::new();
        let u = t.clone();
        u.counter_inc("x", &[]);
        assert_eq!(t.counter_value("x", &[]), 1);
    }

    #[test]
    fn gauges_set_and_max() {
        let t = Telemetry::new();
        t.gauge_set("depth", &[], 3.0);
        t.gauge_max("depth", &[], 2.0);
        assert_eq!(t.gauge_value("depth", &[]), 3.0);
        t.gauge_max("depth", &[], 9.0);
        assert_eq!(t.gauge_value("depth", &[]), 9.0);
    }

    #[test]
    fn gauge_add_accumulates_and_goes_negative() {
        let t = Telemetry::new();
        t.gauge_add("buffered", &[], 5.0);
        t.gauge_add("buffered", &[], 2.0);
        t.gauge_add("buffered", &[], -6.0);
        assert_eq!(t.gauge_value("buffered", &[]), 1.0);
    }

    #[test]
    fn absorb_merges_counters_and_spans() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.counter_add("n", &[], 2);
        b.counter_add("n", &[], 3);
        b.span("txn", "db", 0.0, 100.0);
        a.absorb(&b);
        assert_eq!(a.counter_value("n", &[]), 5);
        assert_eq!(a.with_registry(|r| r.spans().len()), 1);
        // Self-absorb must not deadlock or double.
        a.absorb(&a.clone());
        assert_eq!(a.counter_value("n", &[]), 5);
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let t = Telemetry::new();
        t.counter_inc("a_total", &[("k", "v")]);
        t.gauge_set("g", &[], 1.5);
        t.hist_record("lat_ns", &[], 123.0);
        t.span("s", "c", 10.0, 5.0);
        let s = t.snapshot_json();
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        for needle in [
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"spans\"",
            "a_total",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
