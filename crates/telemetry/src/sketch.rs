//! Mergeable streaming distribution sketches.
//!
//! A [`Sketch`] summarizes one stream of non-negative observations — an
//! OU's elapsed-time targets, a feature-vector norm — in bounded memory:
//! the same 513-slot log-linear bucket layout the latency histograms use
//! (see `histogram.rs`) plus exact first/second moments and extremes.
//! Two sketches over the *same* fixed bucketing are directly comparable,
//! which is what the drift detectors in `drift.rs` exploit: PSI and
//! KS-distance reduce to a single pass over aligned bucket counts.
//!
//! Error bounds (documented so the health rules can be calibrated):
//!
//! - **Quantiles**: values ≥ 1 land in log-linear buckets with
//!   `SUB_BUCKETS = 8` linear slices per octave, so a quantile estimate
//!   is off by at most one sub-bucket span — a worst-case *relative*
//!   error of `1/SUB_BUCKETS = 12.5%`. Values in `[0, 1)` share one
//!   underflow bucket and report 1.0; the estimate is clamped to the
//!   observed min/max so sparse tails stay honest.
//! - **Mean / variance**: exact (running sums, no bucketing error),
//!   up to f64 rounding.
//! - **KS**: computed on full-resolution bucket proportions, so it is
//!   exact for the bucketed distributions; shifts smaller than one
//!   sub-bucket (< 12.5% relative) are invisible by construction.
//! - **PSI**: computed on *octave-coarsened* bins (underflow + one bin
//!   per power-of-two octave, 65 bins). Fine bins make PSI explode on
//!   noise — a few percent of jitter pushing boundary-straddling mass
//!   into a sub-bucket the reference left empty contributes
//!   `p·ln(p/ε)`, which alone can exceed every alert threshold. Octave
//!   bins give PSI a deliberate noise floor (multiplicative shifts
//!   confined to one octave, < 2×, may be invisible) while real
//!   regime changes still light up; pair with KS when sub-octave
//!   sensitivity matters.

use crate::histogram::{bucket_index, bucket_upper, BUCKETS, OCTAVES, SUB_BUCKETS};

/// Bucket-proportion floor used when a PSI term's numerator or
/// denominator would otherwise be zero (standard epsilon smoothing; keeps
/// PSI finite when one side has an empty bucket the other populates).
const PSI_EPSILON: f64 = 1e-4;

/// A bounded-memory summary of one observation stream.
#[derive(Debug, Clone)]
pub struct Sketch {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for Sketch {
    fn default() -> Self {
        Sketch {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Sketch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. NaN is ignored; negative and sub-1 values
    /// land in the shared underflow bucket (moments stay exact).
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance from the running moments, floored at 0 to
    /// absorb f64 cancellation on near-constant streams.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let m = self.sum / n;
        (self.sum_sq / n - m * m).max(0.0)
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Quantile estimate with ≤ 12.5% relative error (see module docs).
    /// `q` is clamped to [0,1]; NaN is treated as 0; empty reports 0.0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another sketch into this one (bucket-wise; moments add).
    /// Mergeability is what lets a reference window absorb several live
    /// windows, or per-run sketches fold into a process-wide one.
    pub fn merge_from(&mut self, other: &Sketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clear all state (the drift detector resets its live window after
    /// each evaluation).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Proportion of mass per octave-coarsened bin: bin 0 is the
    /// underflow bucket, bins 1..=OCTAVES aggregate each octave's
    /// sub-buckets. PSI's working resolution (see module docs).
    fn octave_proportions(&self) -> Vec<f64> {
        let n = self.count as f64;
        let mut bins = vec![0.0; 1 + OCTAVES];
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bin = if i == 0 { 0 } else { 1 + (i - 1) / SUB_BUCKETS };
            bins[bin] += c as f64 / n;
        }
        bins
    }

    /// Population Stability Index of `self` (live) against `other`
    /// (reference): `Σ (p_i − q_i) · ln(p_i / q_i)` over octave-bin
    /// proportions, with epsilon smoothing for one-sided empty bins and
    /// both-empty bins skipped. 0 when either side is empty.
    ///
    /// Conventional reading: < 0.1 stable, 0.1–0.25 moderate shift,
    /// > 0.25 significant shift.
    pub fn psi(&self, other: &Sketch) -> f64 {
        if self.count == 0 || other.count == 0 {
            return 0.0;
        }
        let ps = self.octave_proportions();
        let qs = other.octave_proportions();
        let mut psi = 0.0;
        for (p, q) in ps.iter().zip(&qs) {
            if *p == 0.0 && *q == 0.0 {
                continue;
            }
            let p = p.max(PSI_EPSILON);
            let q = q.max(PSI_EPSILON);
            psi += (p - q) * (p / q).ln();
        }
        psi
    }

    /// Kolmogorov–Smirnov distance against `other`: the maximum absolute
    /// difference between the two bucketed CDFs, in [0, 1]. 0 when
    /// either side is empty.
    pub fn ks_distance(&self, other: &Sketch) -> f64 {
        if self.count == 0 || other.count == 0 {
            return 0.0;
        }
        let n_p = self.count as f64;
        let n_q = other.count as f64;
        let (mut cdf_p, mut cdf_q, mut ks) = (0.0f64, 0.0f64, 0.0f64);
        for (cp, cq) in self.counts.iter().zip(&other.counts) {
            cdf_p += *cp as f64 / n_p;
            cdf_q += *cq as f64 / n_q;
            ks = ks.max((cdf_p - cdf_q).abs());
        }
        ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(lo: u64, hi: u64) -> Sketch {
        let mut s = Sketch::new();
        for v in lo..hi {
            s.insert(v as f64);
        }
        s
    }

    #[test]
    fn moments_are_exact() {
        let mut s = Sketch::new();
        for v in [2.0, 4.0, 6.0, 8.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 5.0); // E[x^2]=30, mean^2=25
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 8.0);
        assert!((s.std_dev() - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantile_error_within_documented_bound() {
        let s = filled(1, 10_001);
        for (q, exact) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() / exact <= 0.125 + 1e-9,
                "q={q}: est={est} exact={exact}"
            );
        }
    }

    #[test]
    fn empty_sketch_is_zeroed_and_safe() {
        let s = Sketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.psi(&filled(1, 100)), 0.0);
        assert_eq!(filled(1, 100).psi(&s), 0.0);
        assert_eq!(s.ks_distance(&s), 0.0);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = filled(1, 5_000);
        let b = filled(5_000, 10_001);
        a.merge_from(&b);
        let whole = filled(1, 10_001);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean(), whole.mean());
        assert_eq!(a.quantile(0.5), whole.quantile(0.5));
        assert!(a.psi(&whole).abs() < 1e-12, "merged == whole, PSI ~ 0");
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = filled(1, 100);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.sum(), 0.0);
        assert_eq!(s.quantile(0.9), 0.0);
    }

    #[test]
    fn psi_zero_for_identical_and_large_for_shifted() {
        let a = filled(1_000, 2_000);
        let b = filled(1_000, 2_000);
        assert!(a.psi(&b).abs() < 1e-12);
        // 16x shift moves every observation several octaves.
        let shifted = filled(16_000, 32_000);
        assert!(shifted.psi(&a) > 1.0, "psi={}", shifted.psi(&a));
        assert!(shifted.ks_distance(&a) > 0.99);
    }

    #[test]
    fn psi_detects_partial_mixture_shift() {
        // Reference: pure [1000, 2000). Live: half the mass moved 8x up.
        let reference = filled(1_000, 2_000);
        let mut live = filled(1_000, 1_500);
        for v in 8_000..8_500 {
            live.insert(v as f64);
        }
        let psi = live.psi(&reference);
        assert!(psi > 0.25, "half-mass shift should be significant: {psi}");
        let ks = live.ks_distance(&reference);
        assert!((0.4..=0.6).contains(&ks), "ks={ks}");
    }

    #[test]
    fn small_jitter_stays_below_alert_band() {
        // ±3% multiplicative jitter around the same center must not read
        // as drift (intra-octave shifts are invisible to PSI by design).
        let mut a = Sketch::new();
        let mut b = Sketch::new();
        for i in 0..2_000u64 {
            let base = 5_000.0 + (i % 97) as f64;
            a.insert(base);
            b.insert(base * (1.0 + 0.03 * ((i % 7) as f64 - 3.0) / 3.0));
        }
        assert!(b.psi(&a) < 0.1, "psi={}", b.psi(&a));
    }

    #[test]
    fn nan_ignored_negative_goes_to_underflow() {
        let mut s = Sketch::new();
        s.insert(f64::NAN);
        assert!(s.is_empty());
        s.insert(-5.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), -5.0);
        assert!(s.quantile(0.5).is_finite());
    }
}
