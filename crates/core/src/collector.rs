//! The TScout runtime: markers, Collector orchestration, collection modes.
//!
//! [`TScout::deploy`] performs the paper's Setup Phase: it takes the
//! marker metadata (which subsystems to instrument, with which probes),
//! code-generates the Collector BPF programs, loads them through the
//! verifier, and attaches them to the kernel tracepoints the markers
//! compile into.
//!
//! At runtime the DBMS calls [`TScout::ou_begin`] / [`TScout::ou_end`] /
//! [`TScout::ou_features`] at its marker sites. Sampling is decided at
//! `BEGIN` (one bit test — the user-space flag of §5.3, exposed to the
//! DBMS as [`TScout::should_collect`] so it can skip feature
//! aggregation); when a marker triple is sampled, the configured
//! collection mode gathers metrics:
//!
//! * [`CollectionMode::KernelContinuous`] — TScout's design: the marker
//!   fires its tracepoint (one mode switch) and the Collector programs
//!   run in the BPF VM, reading per-CPU perf counters and kernel structs
//!   directly.
//! * [`CollectionMode::UserToggle`] — the user-space baseline that
//!   toggles per-task perf counters around each OU: enable + disable +
//!   read syscalls per sample (§6.2's slowest method).
//! * [`CollectionMode::UserContinuous`] — counters stay enabled (so
//!   every context switch pays PMU save/restore) and each sample costs a
//!   single group-read syscall at each boundary.
//!
//! User-space modes ship finished records through a *serialized* emission
//! path (a shared buffer guarded by one lock), which is what caps their
//! aggregate data-generation rate in Fig. 6; the kernel mode publishes
//! through the per-CPU perf ring buffer instead.

use std::collections::{BTreeMap, HashMap};

use tscout_bpf::maps::MapDef;
use tscout_bpf::vm::HelperWorld;
use tscout_bpf::{LoadError, Loader, MapId};
use tscout_kernel::pmu::ALL_COUNTERS;
use tscout_kernel::task::{Ioac, TcpSock};
use tscout_kernel::tracepoint::TracepointId;
use tscout_kernel::{Kernel, PmuReading, SyscallKind, TaskId};
use tscout_telemetry::{Telemetry, TraceId};

use crate::codegen::{self, encode_ctx, ProbeLayout, CTX_BYTES};
use crate::data::{
    decode_record, encode_record, split_record, RawRecord, TrainingPoint, MAX_PAYLOAD_WORDS,
};
use crate::ou::{OuId, OuRegistry, Subsystem};
use crate::sampling::Sampler;

/// Probe selection per subsystem (re-export of the codegen layout).
pub type ProbeSet = ProbeLayout;

impl ProbeLayout {
    pub fn all() -> Self {
        ProbeLayout {
            cpu: true,
            disk: true,
            net: true,
        }
    }

    pub fn cpu_only() -> Self {
        ProbeLayout {
            cpu: true,
            disk: false,
            net: false,
        }
    }

    pub fn cpu_net() -> Self {
        ProbeLayout {
            cpu: true,
            disk: false,
            net: true,
        }
    }

    pub fn cpu_disk() -> Self {
        ProbeLayout {
            cpu: true,
            disk: true,
            net: false,
        }
    }
}

/// How metrics are gathered for sampled OUs (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionMode {
    /// Kernel-level probes via BPF with continuously-enabled per-CPU
    /// counters — the TScout approach.
    KernelContinuous,
    /// User-level probes toggling per-task perf counters per OU.
    UserToggle,
    /// User-level probes with continuously-enabled per-task counters.
    UserContinuous,
}

/// Deploy-time configuration (the Setup Phase inputs).
#[derive(Debug, Clone)]
pub struct TsConfig {
    pub mode: CollectionMode,
    pub subsystems: BTreeMap<Subsystem, ProbeSet>,
    /// Perf ring buffer capacity (records). Bounded: the Collector
    /// overwrites when the Processor falls behind.
    pub ring_capacity: usize,
    pub sampler_seed: u64,
    /// Lineage tracing: assign a `TraceId` to 1 in `trace_every`
    /// *collected* markers and follow it through every pipeline stage
    /// (0 = off). The id travels out of band — record bytes are
    /// bit-identical with tracing on or off.
    pub trace_every: u64,
    /// Run the load-time optimizer on every collector program (on by
    /// default). Optimized programs must re-verify and emit
    /// bit-identical samples; turning this off trades collection
    /// overhead for a byte-for-byte codegen instruction stream.
    pub optimize: bool,
}

impl TsConfig {
    pub fn new(mode: CollectionMode) -> Self {
        TsConfig {
            mode,
            subsystems: BTreeMap::new(),
            ring_capacity: 4096,
            sampler_seed: 0x7511,
            trace_every: 0,
            optimize: true,
        }
    }

    /// Enable collection for a subsystem with the given probe set.
    pub fn enable_subsystem(&mut self, s: Subsystem, probes: ProbeSet) -> &mut Self {
        self.subsystems.insert(s, probes);
        self
    }

    /// Enable all six subsystems with every kernel probe (the maximum-
    /// impact configuration of §6.2).
    pub fn enable_all_subsystems(&mut self) -> &mut Self {
        for s in crate::ou::ALL_SUBSYSTEMS {
            self.subsystems.insert(s, ProbeSet::all());
        }
        self
    }
}

/// Deploy-time errors.
#[derive(Debug)]
pub enum TsError {
    Load(LoadError),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::Load(e) => write!(f, "failed to load collector program: {e}"),
        }
    }
}

impl std::error::Error for TsError {}

/// Runtime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsStats {
    /// Marker events observed (sampled or not).
    pub marker_events: u64,
    /// BEGIN events that passed the sampling check.
    pub sampled_events: u64,
    /// Records published toward the Processor.
    pub samples_emitted: u64,
    /// Marker-order violations that reset collection state (§5.1).
    pub state_machine_errors: u64,
    /// User-mode samples dropped because the emission path was backlogged.
    pub user_emit_drops: u64,
    /// Total BPF instructions interpreted.
    pub bpf_insns: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Began,
    Ended,
}

#[derive(Debug, Clone)]
struct UserSnapshot {
    start_ns: u64,
    pmu: [PmuReading; 7],
    ioac: Ioac,
    tcp: TcpSock,
}

#[derive(Debug, Clone)]
struct InFlight {
    ou: OuId,
    subsystem: Subsystem,
    collected: bool,
    phase: Phase,
    snap: Option<UserSnapshot>,
    /// User-mode END result: (start, elapsed, metrics).
    done: Option<(u64, u64, Vec<u64>)>,
    /// Lineage trace id when this collection was sampled for tracing.
    trace: Option<TraceId>,
}

#[derive(Debug, Default)]
struct TaskState {
    inflight: Vec<InFlight>,
}

#[derive(Debug, Clone, Copy)]
struct BpfRt {
    depth_map: MapId,
    begin_map: MapId,
    done_map: MapId,
    tp_begin: TracepointId,
    tp_end: TracepointId,
    tp_feat: TracepointId,
}

#[derive(Debug, Clone, Copy)]
struct SubsysRt {
    probes: ProbeSet,
    bpf: Option<BpfRt>,
}

#[derive(Debug, Clone, Copy)]
enum Marker {
    Begin,
    End,
    Features,
}

/// Exact sample accounting totals, read back from telemetry counters.
///
/// After a full ring drain (and with no triples in flight),
/// `begun == delivered + lost` holds exactly, per subsystem and in
/// aggregate — the paper's §5.3 requirement that TScout *knows* how many
/// samples it loses, rather than estimating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossTotals {
    /// Samples that passed the sampling check at `BEGIN`.
    pub begun: u64,
    /// Records handed to the Processor by `drain_ring`.
    pub delivered: u64,
    /// Samples lost anywhere between `BEGIN` and delivery (ring
    /// overwrites, emission backlog, marker state resets, BPF errors).
    pub lost: u64,
}

/// The deployed TScout framework instance.
#[derive(Debug)]
pub struct TScout {
    pub config: TsConfig,
    pub registry: OuRegistry,
    pub sampler: Sampler,
    pub stats: TsStats,
    /// Cloned from the kernel at deploy time — metrics land in the same
    /// registry as the kernel's and the DBMS's.
    pub telemetry: Telemetry,
    loader: Loader,
    ring: MapId,
    subsys: BTreeMap<Subsystem, SubsysRt>,
    tasks: HashMap<TaskId, TaskState>,
    enabled: bool,
    /// Most recent marker-side virtual timestamp. Ring evictions are
    /// discovered lazily (at the next push or drain) with no Kernel in
    /// scope, so their traces are closed at this time instead.
    last_now: f64,
}

/// Bridges BPF helper calls to the simulated kernel, charging the
/// per-helper costs to the task that hit the tracepoint.
struct KernelWorld<'a> {
    k: &'a mut Kernel,
    task: TaskId,
}

impl HelperWorld for KernelWorld<'_> {
    fn ktime_ns(&mut self) -> u64 {
        self.k.now(self.task) as u64
    }

    fn current_pid_tgid(&mut self) -> u64 {
        self.task.as_u64()
    }

    fn perf_event_read(&mut self, idx: u64) -> Option<[u64; 3]> {
        let kind = tscout_kernel::CounterKind::from_index(idx as usize)?;
        let ns = self.k.cost.pmu_read_kernel_ns;
        let _f = self
            .k
            .profile_frame(self.task, "helper:perf_event_read", false);
        self.k.charge_overhead(self.task, ns);
        let r = self.k.task(self.task).pmu.read(kind);
        Some([r.value, r.time_enabled, r.time_running])
    }

    fn read_task_io(&mut self) -> [u64; 4] {
        let _f = self
            .k
            .profile_frame(self.task, "helper:read_task_io", false);
        self.k.charge_overhead(self.task, 35.0);
        let io = self.k.task(self.task).ioac;
        [
            io.read_bytes,
            io.write_bytes,
            io.read_syscalls,
            io.write_syscalls,
        ]
    }

    fn read_tcp_sock(&mut self) -> [u64; 4] {
        let _f = self
            .k
            .profile_frame(self.task, "helper:read_tcp_sock", false);
        self.k.charge_overhead(self.task, 35.0);
        let t = self.k.task(self.task).tcp;
        [t.bytes_sent, t.bytes_received, t.segs_out, t.segs_in]
    }
}

impl TScout {
    /// Setup Phase: codegen, verify, load, and attach the Collector.
    pub fn deploy(kernel: &mut Kernel, config: TsConfig) -> Result<TScout, TsError> {
        let mut loader = Loader::new();
        loader.set_optimize(config.optimize);
        // Program executions show up in folded profiles as
        // `bpf:prog:<name>` frames when the kernel's profiler is enabled.
        loader.set_profiler(kernel.profiler.clone());
        let ring = loader.maps.create(MapDef::perf_event_array(
            "tscout_ring",
            config.ring_capacity,
        ));

        let mut subsys = BTreeMap::new();
        for (&s, &probes) in &config.subsystems {
            let bpf = if config.mode == CollectionMode::KernelContinuous {
                let depth_map =
                    loader
                        .maps
                        .create(MapDef::hash(&format!("{s}_depth"), 8, 8, 1 << 10));
                let begin_map = loader.maps.create(MapDef::hash(
                    &format!("{s}_begin"),
                    8,
                    probes.snap_words() * 8,
                    1 << 14,
                ));
                let done_map = loader.maps.create(MapDef::hash(
                    &format!("{s}_done"),
                    8,
                    probes.done_words() * 8,
                    1 << 10,
                ));
                let p_begin = loader
                    .load(
                        &format!("{s}_begin"),
                        codegen::gen_begin(&probes, depth_map, begin_map),
                        CTX_BYTES,
                    )
                    .map_err(TsError::Load)?;
                let p_end = loader
                    .load(
                        &format!("{s}_end"),
                        codegen::gen_end(&probes, depth_map, begin_map, done_map),
                        CTX_BYTES,
                    )
                    .map_err(TsError::Load)?;
                let p_feat = loader
                    .load(
                        &format!("{s}_features"),
                        codegen::gen_features(&probes, done_map, ring),
                        CTX_BYTES,
                    )
                    .map_err(TsError::Load)?;

                let tp_begin = kernel.tracepoints.register("tscout", &format!("{s}_begin"));
                let tp_end = kernel.tracepoints.register("tscout", &format!("{s}_end"));
                let tp_feat = kernel
                    .tracepoints
                    .register("tscout", &format!("{s}_features"));
                kernel.tracepoints.attach(tp_begin, p_begin);
                kernel.tracepoints.attach(tp_end, p_end);
                kernel.tracepoints.attach(tp_feat, p_feat);
                Some(BpfRt {
                    depth_map,
                    begin_map,
                    done_map,
                    tp_begin,
                    tp_end,
                    tp_feat,
                })
            } else {
                None
            };
            subsys.insert(s, SubsysRt { probes, bpf });
        }

        let sampler = Sampler::new(config.sampler_seed);
        let ts = TScout {
            config,
            registry: OuRegistry::new(),
            sampler,
            stats: TsStats::default(),
            telemetry: kernel.telemetry.clone(),
            loader,
            ring,
            subsys,
            tasks: HashMap::new(),
            enabled: true,
            last_now: 0.0,
        };
        if ts.config.trace_every > 0 {
            ts.telemetry.trace_set_every(ts.config.trace_every);
        }
        ts.publish_bpf_telemetry();
        Ok(ts)
    }

    /// Tear down: detach and unload every Collector program (dynamic
    /// feature selection, §5.4 — modify config, then `deploy` again).
    pub fn teardown(mut self, kernel: &mut Kernel) -> TsConfig {
        for rt in self.subsys.values() {
            if let Some(bpf) = rt.bpf {
                for tp in [bpf.tp_begin, bpf.tp_end, bpf.tp_feat] {
                    for prog in kernel.tracepoints.attached_programs(tp).to_vec() {
                        kernel.tracepoints.detach(tp, prog);
                        self.loader.unload(prog);
                    }
                }
            }
        }
        self.config
    }

    /// Register an OU (Setup Phase marker metadata).
    pub fn register_ou(&mut self, name: &str, s: Subsystem, n_features: usize) -> OuId {
        self.registry.register(name, s, n_features)
    }

    /// Per-thread initialization: enables continuous counters when the
    /// mode requires them.
    pub fn register_thread(&mut self, kernel: &mut Kernel, task: TaskId) {
        if matches!(
            self.config.mode,
            CollectionMode::KernelContinuous | CollectionMode::UserContinuous
        ) {
            kernel.perf_enable_all_free(task);
        }
        self.tasks.entry(task).or_default();
    }

    /// Whether context switches for this deployment pay the PMU
    /// save/restore tax (per-task continuous counters; §6.2).
    pub fn pmu_cs_tax(&self) -> bool {
        self.config.mode == CollectionMode::UserContinuous
    }

    /// Adjust a subsystem's sampling rate at runtime (§5.3 / §6.3).
    pub fn set_sampling_rate(&mut self, s: Subsystem, rate: u8) {
        self.sampler.set_rate(s, rate);
        self.telemetry.counter_inc(
            "tscout_sampling_rate_changes_total",
            &[("subsystem", s.name())],
        );
        self.telemetry.gauge_set(
            "tscout_sampling_rate",
            &[("subsystem", s.name())],
            rate as f64,
        );
    }

    /// Globally pause/resume collection without unloading anything.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// The user-space flag (§3.1): true while the innermost in-flight OU
    /// on this thread is being collected, so the DBMS can skip feature
    /// aggregation otherwise.
    pub fn should_collect(&self, task: TaskId) -> bool {
        self.tasks
            .get(&task)
            .and_then(|t| t.inflight.last())
            .map(|f| f.collected)
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Sample accounting (the telemetry side of §5.3)
    // ------------------------------------------------------------------

    fn ou_label(&self, ou: OuId) -> String {
        self.registry
            .get(ou)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("ou{}", ou.0))
    }

    fn mark_begun(&self, subsystem: Subsystem, ou: OuId) {
        let o = self.ou_label(ou);
        self.telemetry.counter_inc(
            "tscout_samples_begun_total",
            &[("subsystem", subsystem.name())],
        );
        self.telemetry
            .counter_inc("tscout_ou_samples_begun_total", &[("ou", &o)]);
    }

    fn mark_lost(&self, subsystem: Subsystem, ou: OuId, reason: &str) {
        let o = self.ou_label(ou);
        self.telemetry.counter_inc(
            "tscout_samples_lost_total",
            &[("subsystem", subsystem.name()), ("reason", reason)],
        );
        self.telemetry
            .counter_inc("tscout_ou_samples_lost_total", &[("ou", &o)]);
    }

    /// Parse subsystem + OU + emitting thread out of an encoded record's
    /// header (word 0 is the OU id, word 1 the tid, word 2 the subsystem
    /// index) without a full decode.
    fn record_ids(bytes: &[u8]) -> (Option<Subsystem>, Option<OuId>, u64) {
        let word = |i: usize| {
            bytes
                .get(i * 8..i * 8 + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        let s = word(2).and_then(|i| Subsystem::from_index(i as usize));
        let ou = word(0).map(|id| OuId(id as u16));
        let tid = word(1).unwrap_or(0);
        (s, ou, tid)
    }

    /// Harvest records the ring buffer overwrote since the last call and
    /// attribute each loss to its subsystem and OU. Called on every path
    /// that pushes to the ring, so the bounded eviction queue never
    /// overflows and the accounting stays exact.
    fn account_ring_evictions(&mut self) {
        let evicted = self.loader.maps.ring_take_evicted(self.ring);
        for bytes in evicted {
            let (s, ou, tid) = Self::record_ids(&bytes);
            let s = s.unwrap_or(Subsystem::ExecutionEngine);
            let ou = ou.unwrap_or(OuId(u16::MAX));
            self.mark_lost(s, ou, "ring_overwrite");
            self.telemetry.trace_ring_evict(ou.0, tid, self.last_now);
        }
    }

    /// Export the BPF substrate's own counters (ring, map ops, verifier)
    /// as gauges. Cheap; called at deploy and on every drain.
    pub fn publish_bpf_telemetry(&self) {
        let t = &self.telemetry;
        let rs = self.loader.maps.ring_stats(self.ring);
        t.gauge_set("tscout_ring_produced", &[], rs.produced as f64);
        t.gauge_set("tscout_ring_dropped", &[], rs.dropped as f64);
        t.gauge_set("tscout_ring_bytes", &[], rs.bytes as f64);
        t.gauge_max("tscout_ring_occupancy_hwm", &[], rs.hwm as f64);
        t.gauge_set("tscout_ring_capacity", &[], rs.capacity as f64);
        let ops = self.loader.maps.op_stats();
        t.gauge_set("tscout_map_lookups", &[], ops.lookups as f64);
        t.gauge_set("tscout_map_updates", &[], ops.updates as f64);
        t.gauge_set("tscout_map_deletes", &[], ops.deletes as f64);
        t.gauge_set("tscout_map_stack_pushes", &[], ops.pushes as f64);
        t.gauge_set("tscout_map_stack_pops", &[], ops.pops as f64);
        t.gauge_set("tscout_ring_pushes", &[], ops.ring_pushes as f64);
        t.gauge_set("tscout_ring_drained", &[], ops.ring_drained as f64);
        let v = self.loader.verify_totals();
        t.gauge_set("tscout_verify_insns", &[], v.insns as f64);
        t.gauge_set("tscout_verify_insns_visited", &[], v.insns_visited as f64);
        t.gauge_set("tscout_verify_states", &[], v.states_explored as f64);
        t.gauge_set("tscout_verify_states_pruned", &[], v.states_pruned as f64);
        t.gauge_set("tscout_verify_peak_depth", &[], v.peak_depth as f64);
        t.gauge_set("tscout_verify_paths", &[], v.paths_completed as f64);
        t.gauge_set("tscout_verify_runs", &[], self.loader.verify_runs() as f64);
        t.gauge_set(
            "tscout_bpf_insns_executed",
            &[],
            self.stats.bpf_insns as f64,
        );
        let o = self.loader.opt_totals();
        t.gauge_set("tscout_opt_insns_before", &[], o.insns_before as f64);
        t.gauge_set("tscout_opt_insns_after", &[], o.insns_after as f64);
        t.gauge_set("tscout_opt_iterations", &[], o.iterations as f64);
        t.gauge_set("tscout_opt_loops_unrolled", &[], o.loops_unrolled as f64);
        t.gauge_set(
            "tscout_opt_fallbacks_total",
            &[],
            self.loader.opt_fallbacks() as f64,
        );
        for (i, pass) in tscout_bpf::PASS_NAMES.iter().enumerate() {
            t.gauge_set(
                "tscout_opt_insns_removed_total",
                &[("pass", pass)],
                o.removed[i] as f64,
            );
            t.gauge_set(
                "tscout_opt_insns_rewritten_total",
                &[("pass", pass)],
                o.rewritten[i] as f64,
            );
        }
    }

    /// Exact begun/delivered/lost totals across all subsystems.
    pub fn loss_totals(&self) -> LossTotals {
        LossTotals {
            begun: self.telemetry.counter_total("tscout_samples_begun_total"),
            delivered: self
                .telemetry
                .counter_total("tscout_samples_delivered_total"),
            lost: self.telemetry.counter_total("tscout_samples_lost_total"),
        }
    }

    // ------------------------------------------------------------------
    // Markers
    // ------------------------------------------------------------------

    /// `BEGIN` marker: decide sampling and start metric collection.
    pub fn ou_begin(&mut self, k: &mut Kernel, task: TaskId, ou: OuId) {
        self.stats.marker_events += 1;
        self.telemetry
            .counter_inc("tscout_marker_events_total", &[("marker", "begin")]);
        // Root frame: marker handling is collection-side work, so its
        // virtual time re-bases under `tscout;...` even though it runs
        // in the middle of a DBMS stack.
        let _root = k.profile_frame(task, "tscout", true);
        let _marker = k.profile_frame(task, "collector:begin", false);
        k.charge_overhead(task, k.cost.sampling_check_ns);
        let Some(def) = self.registry.get(ou) else {
            return;
        };
        let subsystem = def.subsystem;
        let configured = self.subsys.contains_key(&subsystem);
        let collected =
            self.enabled && configured && self.sampler.decide(task.0 as usize, subsystem);

        let mut snap = None;
        let mut trace = None;
        if collected {
            self.stats.sampled_events += 1;
            self.mark_begun(subsystem, ou);
            // Lineage sampling happens at marker fire time. The id lives
            // in a side table keyed by (ou, tid) — never in the record —
            // and the (virtual) cost is charged on the Processor's clock,
            // so sample bytes are identical with tracing on or off.
            self.last_now = k.now(task);
            trace = self.telemetry.trace_begin(
                ou.0,
                subsystem.index() as u8,
                task.as_u64(),
                self.last_now,
            );
            match self.config.mode {
                CollectionMode::KernelContinuous => {
                    let r0 = self.fire(k, task, subsystem, Marker::Begin, ou, 0, &[]);
                    if r0 != 0 {
                        self.mark_lost(subsystem, ou, "begin_error");
                        if let Some(id) = trace {
                            self.telemetry
                                .trace_marker_abort(id, k.now(task), "begin_error");
                        }
                        self.state_machine_reset(k, task);
                        return;
                    }
                }
                CollectionMode::UserToggle => {
                    k.task_mut(task).pmu.reset();
                    k.perf_enable_all(task); // ioctl ENABLE
                    k.syscall(task, SyscallKind::Generic); // io/net stats read
                    snap = Some(self.user_snapshot(k, task, /*read_pmu=*/ false));
                }
                CollectionMode::UserContinuous => {
                    let pmu = k.perf_read_user(task); // one group-read syscall
                    k.syscall(task, SyscallKind::Generic);
                    let mut s = self.user_snapshot(k, task, false);
                    s.pmu = pmu;
                    snap = Some(s);
                }
            }
        }
        self.tasks.entry(task).or_default().inflight.push(InFlight {
            ou,
            subsystem,
            collected,
            phase: Phase::Began,
            snap,
            done: None,
            trace,
        });
    }

    /// `END` marker: stop metric collection and compute deltas.
    pub fn ou_end(&mut self, k: &mut Kernel, task: TaskId, ou: OuId) {
        self.stats.marker_events += 1;
        self.telemetry
            .counter_inc("tscout_marker_events_total", &[("marker", "end")]);
        let _root = k.profile_frame(task, "tscout", true);
        let _marker = k.profile_frame(task, "collector:end", false);
        k.charge_overhead(task, k.cost.sampling_check_ns);
        let ok = matches!(
            self.tasks.get(&task).and_then(|t| t.inflight.last()),
            Some(top) if top.ou == ou && top.phase == Phase::Began
        );
        if !ok {
            self.state_machine_reset(k, task);
            return;
        }
        let (collected, subsystem) = {
            let top = self
                .tasks
                .get_mut(&task)
                .unwrap()
                .inflight
                .last_mut()
                .unwrap();
            top.phase = Phase::Ended;
            (top.collected, top.subsystem)
        };
        if !collected {
            return;
        }
        match self.config.mode {
            CollectionMode::KernelContinuous => {
                let r0 = self.fire(k, task, subsystem, Marker::End, ou, 0, &[]);
                if r0 != 0 {
                    self.state_machine_reset(k, task);
                }
            }
            CollectionMode::UserToggle => {
                // The OU ends *here*; the toggling syscalls below are
                // instrumentation overhead, not OU time.
                let end_ns = k.now(task) as u64;
                k.perf_disable_all(task); // ioctl DISABLE
                let pmu = k.perf_read_user(task); // read syscall
                k.syscall(task, SyscallKind::Generic); // io/net stats
                self.user_finish(k, task, subsystem, pmu, /*delta_pmu=*/ false, end_ns);
            }
            CollectionMode::UserContinuous => {
                let end_ns = k.now(task) as u64;
                let pmu = k.perf_read_user(task);
                k.syscall(task, SyscallKind::Generic);
                self.user_finish(k, task, subsystem, pmu, true, end_ns);
            }
        }
    }

    /// `FEATURES` marker: attach input features (and user-level metrics
    /// such as the memory probe's bytes) and emit the sample.
    pub fn ou_features(
        &mut self,
        k: &mut Kernel,
        task: TaskId,
        ou: OuId,
        features: &[u64],
        user_metrics: &[u64],
    ) {
        let mut payload = Vec::with_capacity(features.len() + user_metrics.len());
        payload.extend_from_slice(features);
        payload.extend_from_slice(user_metrics);
        self.features_common(k, task, ou, 0, &payload);
    }

    /// Vectorized `FEATURES` for fused pipelines (§5.2): one metrics
    /// sample covers several OUs; each group is `(ou, features)`.
    pub fn ou_features_vec(
        &mut self,
        k: &mut Kernel,
        task: TaskId,
        pipeline_ou: OuId,
        groups: &[(OuId, Vec<u64>)],
    ) {
        let mut payload = Vec::new();
        for (ou, feats) in groups {
            payload.push(ou.as_u64());
            payload.push(feats.len() as u64);
            payload.extend_from_slice(feats);
        }
        self.features_common(k, task, pipeline_ou, groups.len() as u64, &payload);
    }

    fn features_common(
        &mut self,
        k: &mut Kernel,
        task: TaskId,
        ou: OuId,
        flags: u64,
        payload: &[u64],
    ) {
        self.stats.marker_events += 1;
        self.telemetry
            .counter_inc("tscout_marker_events_total", &[("marker", "features")]);
        let _root = k.profile_frame(task, "tscout", true);
        let _marker = k.profile_frame(task, "collector:features", false);
        k.charge_overhead(task, k.cost.sampling_check_ns);
        let ok = matches!(
            self.tasks.get(&task).and_then(|t| t.inflight.last()),
            Some(top) if top.ou == ou && top.phase == Phase::Ended
        );
        if !ok {
            self.state_machine_reset(k, task);
            return;
        }
        let top = self.tasks.get_mut(&task).unwrap().inflight.pop().unwrap();
        if !top.collected {
            return;
        }
        match self.config.mode {
            CollectionMode::KernelContinuous => {
                let before = self.stats.samples_emitted;
                let r0 = self.fire(k, task, top.subsystem, Marker::Features, ou, flags, payload);
                self.last_now = k.now(task);
                // The FEATURES program is the one that publishes; a sample
                // that produced no ring record is lost right here.
                if self.stats.samples_emitted == before {
                    self.mark_lost(top.subsystem, ou, "features_error");
                    if let Some(id) = top.trace {
                        self.telemetry
                            .trace_marker_abort(id, self.last_now, "features_error");
                    }
                } else if let Some(id) = top.trace {
                    self.telemetry
                        .trace_publish(id, self.last_now, self.ring_len() as u64);
                }
                self.account_ring_evictions();
                if r0 != 0 {
                    self.state_machine_reset(k, task);
                }
            }
            CollectionMode::UserToggle | CollectionMode::UserContinuous => {
                let Some((start, elapsed, metrics)) = top.done else {
                    self.mark_lost(top.subsystem, ou, "no_end_snapshot");
                    if let Some(id) = top.trace {
                        self.telemetry
                            .trace_marker_abort(id, k.now(task), "no_end_snapshot");
                    }
                    return;
                };
                let mut p = payload.to_vec();
                p.truncate(MAX_PAYLOAD_WORDS);
                let rec = RawRecord {
                    ou: ou.as_u64(),
                    tid: task.as_u64(),
                    subsystem: top.subsystem.index() as u64,
                    flags,
                    start_ns: start,
                    elapsed_ns: elapsed,
                    metrics,
                    payload: p,
                };
                self.emit_user(k, task, &rec, top.trace);
            }
        }
    }

    // ------------------------------------------------------------------
    // Mode internals
    // ------------------------------------------------------------------

    fn user_snapshot(&self, k: &Kernel, task: TaskId, read_pmu: bool) -> UserSnapshot {
        let t = k.task(task);
        let mut pmu = [PmuReading {
            value: 0,
            time_enabled: 0,
            time_running: 0,
        }; 7];
        if read_pmu {
            for c in ALL_COUNTERS {
                pmu[c.index()] = t.pmu.read(c);
            }
        }
        UserSnapshot {
            start_ns: t.clock_ns as u64,
            pmu,
            ioac: t.ioac,
            tcp: t.tcp,
        }
    }

    fn user_finish(
        &mut self,
        k: &mut Kernel,
        task: TaskId,
        subsystem: Subsystem,
        pmu_end: [PmuReading; 7],
        delta_pmu: bool,
        end_ns: u64,
    ) {
        let probes = self.subsys[&subsystem].probes;
        let now = end_ns;
        let cur_io = k.task(task).ioac;
        let cur_tcp = k.task(task).tcp;
        let top = self
            .tasks
            .get_mut(&task)
            .unwrap()
            .inflight
            .last_mut()
            .unwrap();
        let Some(snap) = &top.snap else { return };
        let mut metrics = Vec::with_capacity(probes.metric_words());
        if probes.cpu {
            for c in ALL_COUNTERS {
                let end = pmu_end[c.index()].normalized();
                let begin = if delta_pmu {
                    snap.pmu[c.index()].normalized()
                } else {
                    0.0
                };
                metrics.push((end - begin).max(0.0) as u64);
            }
        }
        if probes.disk {
            metrics.push(cur_io.read_bytes - snap.ioac.read_bytes);
            metrics.push(cur_io.write_bytes - snap.ioac.write_bytes);
            metrics.push(cur_io.read_syscalls - snap.ioac.read_syscalls);
            metrics.push(cur_io.write_syscalls - snap.ioac.write_syscalls);
        }
        if probes.net {
            metrics.push(cur_tcp.bytes_sent - snap.tcp.bytes_sent);
            metrics.push(cur_tcp.bytes_received - snap.tcp.bytes_received);
            metrics.push(cur_tcp.segs_out - snap.tcp.segs_out);
            metrics.push(cur_tcp.segs_in - snap.tcp.segs_in);
        }
        top.done = Some((snap.start_ns, now - snap.start_ns, metrics));
    }

    /// Serialized user-space emission: all threads funnel through one
    /// lock-guarded copy path before the record reaches the Processor.
    /// When the path is backlogged the sample is *dropped* rather than
    /// queued — TScout never applies back pressure to the DBMS (§3) —
    /// which is what caps the user-space methods' aggregate data rate at
    /// roughly `1 / user_emit_lock_ns` (Fig. 6).
    fn emit_user(&mut self, k: &mut Kernel, task: TaskId, rec: &RawRecord, trace: Option<TraceId>) {
        let _frame = k.profile_frame(task, "emit:user", false);
        // The emitting thread pays an asynchronous hand-off (write syscall
        // + record copy into the staging buffer)...
        k.syscall(task, SyscallKind::Generic);
        k.charge_overhead(task, 1_800.0);
        let now = k.now(task);
        self.last_now = now;
        let hold = k.cost.user_emit_lock_ns;
        if k.user_emit_path.free_at() - now > 24.0 * hold {
            // ...but the serialized delivery path drains at 1/hold; past a
            // bounded backlog the staging buffer overflows and the sample
            // is dropped (no back pressure, §3).
            self.stats.user_emit_drops += 1;
            let s =
                Subsystem::from_index(rec.subsystem as usize).unwrap_or(Subsystem::ExecutionEngine);
            self.mark_lost(s, OuId(rec.ou as u16), "emit_backlog");
            if let Some(id) = trace {
                self.telemetry.trace_marker_abort(id, now, "emit_backlog");
            }
            return;
        }
        let bytes = encode_record(rec);
        k.user_emit_path.acquire(now, hold);
        let _ = self.loader.maps.ring_push(self.ring, &bytes);
        self.stats.samples_emitted += 1;
        if let Some(id) = trace {
            self.telemetry
                .trace_publish(id, now, self.ring_len() as u64);
        }
        self.account_ring_evictions();
    }

    /// Fire a marker tracepoint and run the attached Collector programs.
    #[allow(clippy::too_many_arguments)]
    fn fire(
        &mut self,
        k: &mut Kernel,
        task: TaskId,
        subsystem: Subsystem,
        which: Marker,
        ou: OuId,
        flags: u64,
        payload: &[u64],
    ) -> u64 {
        let Some(bpf) = self.subsys.get(&subsystem).and_then(|r| r.bpf) else {
            return 0;
        };
        let tp = match which {
            Marker::Begin => bpf.tp_begin,
            Marker::End => bpf.tp_end,
            Marker::Features => bpf.tp_feat,
        };
        let progs = k.fire_tracepoint(task, tp);
        if progs.is_empty() {
            return 0;
        }
        let ctx = encode_ctx(
            ou.as_u64(),
            task.as_u64(),
            subsystem.index() as u64,
            flags,
            payload,
        );
        let mut result = 0;
        for prog in progs {
            // Held across both the VM run (helper charges land inside)
            // and the post-run instruction-cost charge below.
            let _prog_frame = self.loader.profile_scope(task.0 as usize, prog);
            let _vm_frame = k.profile_frame(task, "bpf:vm", false);
            let run = {
                let mut world = KernelWorld { k, task };
                self.loader.run(prog, &ctx, &mut world)
            };
            match run {
                Ok((r0, stats)) => {
                    let ns = stats.insns as f64 * k.cost.bpf_insn_ns
                        + stats.ring_publishes as f64 * k.cost.ringbuf_publish_ns;
                    k.charge_overhead(task, ns);
                    self.stats.bpf_insns += stats.insns;
                    self.stats.samples_emitted += stats.ring_publishes;
                    if r0 != 0 {
                        result = r0;
                    }
                }
                Err(_) => result = u64::MAX,
            }
        }
        result
    }

    /// §5.1: on out-of-order markers, reset collection for the thread,
    /// discard intermediate results, and count the error.
    fn state_machine_reset(&mut self, k: &mut Kernel, task: TaskId) {
        self.stats.state_machine_errors += 1;
        self.telemetry
            .counter_inc("tscout_state_machine_resets_total", &[]);
        // Every collected sample still in flight on this thread dies with
        // the reset — attribute each one before discarding.
        let discarded: Vec<(Subsystem, OuId, Option<TraceId>)> = self
            .tasks
            .get(&task)
            .map(|t| {
                t.inflight
                    .iter()
                    .filter(|f| f.collected)
                    .map(|f| (f.subsystem, f.ou, f.trace))
                    .collect()
            })
            .unwrap_or_default();
        for (s, ou, trace) in discarded {
            self.mark_lost(s, ou, "state_reset");
            if let Some(id) = trace {
                self.telemetry
                    .trace_marker_abort(id, k.now(task), "state_reset");
            }
        }
        if let Some(t) = self.tasks.get_mut(&task) {
            t.inflight.clear();
        }
        let tid = task.as_u64().to_le_bytes();
        for rt in self.subsys.values() {
            if let Some(bpf) = rt.bpf {
                let _ = self.loader.maps.delete(bpf.done_map, &tid);
                let _ = self.loader.maps.delete(bpf.depth_map, &tid);
                for d in 0u64..64 {
                    let bkey = ((task.as_u64() << 8) | d).to_le_bytes();
                    let _ = self.loader.maps.delete(bpf.begin_map, &bkey);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Processor-facing surface
    // ------------------------------------------------------------------

    /// Drain up to `max` raw records from the ring buffer. Every drained
    /// record is counted as *delivered* toward its subsystem and OU; ring
    /// overwrites that happened since the last drain are attributed as
    /// losses first.
    pub fn drain_ring(&mut self, max: usize) -> Vec<Vec<u8>> {
        self.account_ring_evictions();
        let raw = self.loader.maps.ring_drain(self.ring, max);
        for bytes in &raw {
            let (s, ou, _tid) = Self::record_ids(bytes);
            let s = s.unwrap_or(Subsystem::ExecutionEngine);
            let o = ou
                .map(|o| self.ou_label(o))
                .unwrap_or_else(|| "unknown".into());
            self.telemetry
                .counter_inc("tscout_samples_delivered_total", &[("subsystem", s.name())]);
            self.telemetry
                .counter_inc("tscout_ou_samples_delivered_total", &[("ou", &o)]);
        }
        self.publish_bpf_telemetry();
        raw
    }

    /// Current ring occupancy.
    pub fn ring_len(&self) -> usize {
        self.loader.maps.ring_len(self.ring)
    }

    /// Records lost to ring overwrites so far.
    pub fn ring_dropped(&self) -> u64 {
        self.loader.maps.ring_dropped(self.ring)
    }

    /// Ring capacity configured at deploy time.
    pub fn ring_capacity(&self) -> usize {
        self.config.ring_capacity
    }

    /// Convenience: drain everything and decode into training points
    /// (bypasses the Processor's cost accounting; meant for tests and
    /// offline analysis).
    pub fn drain_decoded(&mut self) -> Vec<TrainingPoint> {
        let raw = self.drain_ring(usize::MAX);
        raw.iter()
            .filter_map(|b| decode_record(b))
            .flat_map(|r| split_record(&r, &self.registry))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscout_kernel::HardwareProfile;

    fn setup(mode: CollectionMode) -> (Kernel, TScout, TaskId, OuId) {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 5);
        k.noise_frac = 0.0;
        let mut cfg = TsConfig::new(mode);
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::all());
        let mut ts = TScout::deploy(&mut k, cfg).unwrap();
        let ou = ts.register_ou("seq_scan", Subsystem::ExecutionEngine, 2);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
        let task = k.create_task();
        ts.register_thread(&mut k, task);
        (k, ts, task, ou)
    }

    fn one_ou(k: &mut Kernel, ts: &mut TScout, task: TaskId, ou: OuId) {
        ts.ou_begin(k, task, ou);
        k.charge_cpu(task, 100_000.0, 1 << 16);
        ts.ou_end(k, task, ou);
        ts.ou_features(k, task, ou, &[1000, 64], &[4096]);
    }

    #[test]
    fn kernel_mode_end_to_end() {
        let (mut k, mut ts, task, ou) = setup(CollectionMode::KernelContinuous);
        one_ou(&mut k, &mut ts, task, ou);
        assert_eq!(ts.stats.samples_emitted, 1);
        assert_eq!(ts.stats.state_machine_errors, 0);
        assert!(ts.stats.bpf_insns > 100, "collector must actually run BPF");
        let pts = ts.drain_decoded();
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.ou_name, "seq_scan");
        assert_eq!(p.features, vec![1000.0, 64.0]);
        assert_eq!(p.user_metrics, vec![4096]);
        assert!(p.elapsed_ns > 0);
        assert_eq!(p.metrics.len(), 15);
        // CPU instructions metric should be near the charged 100k.
        let instr = p.metrics[1] as f64;
        assert!(
            (instr - 100_000.0).abs() / 100_000.0 < 0.05,
            "instr {instr}"
        );
    }

    #[test]
    fn user_modes_end_to_end() {
        for mode in [CollectionMode::UserToggle, CollectionMode::UserContinuous] {
            let (mut k, mut ts, task, ou) = setup(mode);
            one_ou(&mut k, &mut ts, task, ou);
            let pts = ts.drain_decoded();
            assert_eq!(pts.len(), 1, "{mode:?}");
            let instr = pts[0].metrics[1] as f64;
            assert!(
                (instr - 100_000.0).abs() / 100_000.0 < 0.25,
                "{mode:?} instr {instr}"
            );
        }
    }

    #[test]
    fn unsampled_ous_cost_almost_nothing() {
        let (mut k, mut ts, task, ou) = setup(CollectionMode::KernelContinuous);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 0);
        let before = k.now(task);
        ts.ou_begin(&mut k, task, ou);
        ts.ou_end(&mut k, task, ou);
        ts.ou_features(&mut k, task, ou, &[1], &[]);
        let overhead = k.now(task) - before;
        assert!(overhead < 50.0, "sampling-off overhead {overhead} ns");
        assert_eq!(ts.stats.samples_emitted, 0);
    }

    #[test]
    fn kernel_mode_is_cheaper_per_sample_than_user_toggle() {
        let cost = |mode| {
            let (mut k, mut ts, task, ou) = setup(mode);
            let before = k.now(task);
            ts.ou_begin(&mut k, task, ou);
            ts.ou_end(&mut k, task, ou);
            ts.ou_features(&mut k, task, ou, &[1, 2], &[]);
            k.now(task) - before
        };
        let kernel = cost(CollectionMode::KernelContinuous);
        let toggle = cost(CollectionMode::UserToggle);
        assert!(
            toggle > 1.5 * kernel,
            "toggle {toggle} should far exceed kernel {kernel}"
        );
    }

    #[test]
    fn out_of_order_markers_reset_state() {
        let (mut k, mut ts, task, ou) = setup(CollectionMode::KernelContinuous);
        // END without BEGIN.
        ts.ou_end(&mut k, task, ou);
        assert_eq!(ts.stats.state_machine_errors, 1);
        // Recovery: a full triple still works afterwards.
        one_ou(&mut k, &mut ts, task, ou);
        assert_eq!(ts.drain_decoded().len(), 1);
    }

    #[test]
    fn features_for_wrong_ou_resets() {
        let (mut k, mut ts, task, ou) = setup(CollectionMode::KernelContinuous);
        let other = ts.register_ou("filter", Subsystem::ExecutionEngine, 1);
        ts.ou_begin(&mut k, task, ou);
        ts.ou_end(&mut k, task, ou);
        ts.ou_features(&mut k, task, other, &[1], &[]);
        assert_eq!(ts.stats.state_machine_errors, 1);
        assert_eq!(ts.drain_decoded().len(), 0);
    }

    #[test]
    fn nested_ous_both_collected() {
        let (mut k, mut ts, task, outer) = setup(CollectionMode::KernelContinuous);
        let inner = ts.register_ou("hash_join", Subsystem::ExecutionEngine, 1);
        ts.ou_begin(&mut k, task, outer);
        k.charge_cpu(task, 10_000.0, 4096);
        ts.ou_begin(&mut k, task, inner);
        k.charge_cpu(task, 30_000.0, 4096);
        ts.ou_end(&mut k, task, inner);
        ts.ou_features(&mut k, task, inner, &[7], &[]);
        k.charge_cpu(task, 10_000.0, 4096);
        ts.ou_end(&mut k, task, outer);
        ts.ou_features(&mut k, task, outer, &[9, 9], &[]);
        let pts = ts.drain_decoded();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].ou_name, "hash_join");
        assert_eq!(pts[1].ou_name, "seq_scan");
        assert!(
            pts[1].elapsed_ns > pts[0].elapsed_ns,
            "outer OU encloses inner"
        );
    }

    #[test]
    fn fused_pipeline_emits_vectorized_features() {
        let (mut k, mut ts, task, pipe) = setup(CollectionMode::KernelContinuous);
        let idx = ts.register_ou("idx_lookup", Subsystem::ExecutionEngine, 2);
        let filt = ts.register_ou("filter2", Subsystem::ExecutionEngine, 1);
        ts.ou_begin(&mut k, task, pipe);
        k.charge_cpu(task, 90_000.0, 4096);
        ts.ou_end(&mut k, task, pipe);
        ts.ou_features_vec(
            &mut k,
            task,
            pipe,
            &[(idx, vec![100, 3]), (filt, vec![200])],
        );
        let pts = ts.drain_decoded();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].ou_name, "idx_lookup");
        assert_eq!(pts[1].ou_name, "filter2");
        let total: u64 = pts.iter().map(|p| p.elapsed_ns).sum();
        assert!(total > 0);
    }

    #[test]
    fn should_collect_reflects_sampling() {
        let (mut k, mut ts, task, ou) = setup(CollectionMode::KernelContinuous);
        ts.ou_begin(&mut k, task, ou);
        assert!(ts.should_collect(task));
        ts.ou_end(&mut k, task, ou);
        ts.ou_features(&mut k, task, ou, &[1, 2], &[]);
        assert!(!ts.should_collect(task));

        ts.set_sampling_rate(Subsystem::ExecutionEngine, 0);
        ts.ou_begin(&mut k, task, ou);
        assert!(!ts.should_collect(task));
    }

    #[test]
    fn disabled_subsystem_collects_nothing() {
        let (mut k, mut ts, task, _) = setup(CollectionMode::KernelContinuous);
        let wal = ts.register_ou("log_serialize", Subsystem::LogSerializer, 1);
        ts.ou_begin(&mut k, task, wal);
        ts.ou_end(&mut k, task, wal);
        ts.ou_features(&mut k, task, wal, &[5], &[]);
        assert_eq!(ts.stats.samples_emitted, 0);
        assert_eq!(ts.stats.state_machine_errors, 0);
    }

    #[test]
    fn teardown_detaches_everything() {
        let (mut k, ts, task, _ou) = setup(CollectionMode::KernelContinuous);
        let cfg = ts.teardown(&mut k);
        assert_eq!(cfg.subsystems.len(), 1);
        // Firing the tracepoints is now free (NOP again).
        let tp = k
            .tracepoints
            .lookup("tscout", "execution_engine_begin")
            .unwrap();
        let before = k.now(task);
        assert!(k.fire_tracepoint(task, tp).is_empty());
        assert_eq!(k.now(task), before);
    }

    #[test]
    fn loss_accounting_is_exact_under_ring_pressure() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 5);
        k.noise_frac = 0.0;
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.ring_capacity = 4;
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
        let mut ts = TScout::deploy(&mut k, cfg).unwrap();
        let ou = ts.register_ou("scan", Subsystem::ExecutionEngine, 1);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
        let task = k.create_task();
        ts.register_thread(&mut k, task);
        for i in 0..50 {
            ts.ou_begin(&mut k, task, ou);
            k.charge_cpu(task, 1000.0, 64);
            ts.ou_end(&mut k, task, ou);
            ts.ou_features(&mut k, task, ou, &[i], &[]);
        }
        ts.drain_ring(usize::MAX);
        let lt = ts.loss_totals();
        assert_eq!(lt.begun, 50);
        assert_eq!(lt.delivered, 4);
        assert_eq!(lt.lost, 46);
        assert_eq!(lt.delivered + lt.lost, lt.begun);
        // All losses here are ring overwrites, attributed to the right
        // subsystem and OU.
        assert_eq!(
            ts.telemetry.counter_value(
                "tscout_samples_lost_total",
                &[
                    ("subsystem", "execution_engine"),
                    ("reason", "ring_overwrite")
                ],
            ),
            46
        );
        assert_eq!(
            ts.telemetry
                .counter_value("tscout_ou_samples_lost_total", &[("ou", "scan")]),
            46
        );
    }

    #[test]
    fn state_resets_count_inflight_samples_as_lost() {
        let (mut k, mut ts, task, ou) = setup(CollectionMode::KernelContinuous);
        // BEGIN then a wrong-OU FEATURES: the in-flight sample dies.
        let other = ts.register_ou("other", Subsystem::ExecutionEngine, 1);
        ts.ou_begin(&mut k, task, ou);
        ts.ou_end(&mut k, task, ou);
        ts.ou_features(&mut k, task, other, &[1], &[]);
        ts.drain_ring(usize::MAX);
        let lt = ts.loss_totals();
        assert_eq!(lt.begun, 1);
        assert_eq!(lt.delivered, 0);
        assert_eq!(lt.lost, 1);
        assert_eq!(
            ts.telemetry.counter_value(
                "tscout_samples_lost_total",
                &[("subsystem", "execution_engine"), ("reason", "state_reset")],
            ),
            1
        );
    }

    #[test]
    fn ring_overwrites_under_pressure() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 5);
        k.noise_frac = 0.0;
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.ring_capacity = 4;
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
        let mut ts = TScout::deploy(&mut k, cfg).unwrap();
        let ou = ts.register_ou("scan", Subsystem::ExecutionEngine, 1);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
        let task = k.create_task();
        ts.register_thread(&mut k, task);
        for i in 0..10 {
            ts.ou_begin(&mut k, task, ou);
            k.charge_cpu(task, 1000.0, 64);
            ts.ou_end(&mut k, task, ou);
            ts.ou_features(&mut k, task, ou, &[i], &[]);
        }
        assert_eq!(ts.ring_len(), 4);
        assert_eq!(ts.ring_dropped(), 6);
        // The newest samples survive (overwrite-oldest).
        let pts = ts.drain_decoded();
        assert_eq!(pts[0].features, vec![6.0]);
    }
}
