//! The Processor: user-space extraction and archival of training data
//! (paper §3.2).
//!
//! The Processor drains finished samples from the Collector's perf ring
//! buffer, transforms them (type conversion, fused-pipeline
//! de-aggregation), and writes them to an output target. It runs as its
//! own (virtual) task so its throughput is bounded: when the DBMS
//! generates samples faster than the Processor's per-sample cost allows,
//! the ring fills and the Collector overwrites — data is dropped without
//! back pressure, exactly the design property of §3. A feedback hook
//! recommends lowering the sampling rate when that happens.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use tscout_archive::{Archive, ArchiveOptions};
use tscout_kernel::{Kernel, TaskId};
use tscout_telemetry::Telemetry;

use crate::collector::TScout;
use crate::data::{decode_record, split_record, TrainingPoint};
use crate::ou::{Subsystem, ALL_SUBSYSTEMS};

/// One subsystem's loss-feedback verdict from
/// [`Processor::subsystem_feedback`]: the current sampling rate, the
/// rate the Processor recommends, and the losses that motivated it.
#[derive(Debug, Clone)]
pub struct SubsystemFeedback {
    pub subsystem: Subsystem,
    /// The subsystem's sampling rate right now.
    pub current: u8,
    /// Recommended rate: halved when the subsystem lost samples since
    /// the last check, unchanged otherwise.
    pub recommended: u8,
    /// New losses attributed to this subsystem since the last check.
    pub loss_delta: u64,
}

/// Where processed training data goes.
#[derive(Debug)]
pub enum Sink {
    /// Keep decoded points in memory (model training pipelines).
    Memory(Vec<TrainingPoint>),
    /// Append CSV rows to a file on local disk.
    Csv(BufWriter<File>),
    /// Append into the persistent columnar training-data archive.
    /// Memory stays bounded: full memtables flush to segment files as
    /// part of `append` (see `tscout-archive`).
    Archive(Archive),
    /// Count only (overhead experiments).
    Discard,
}

impl Sink {
    /// Open a CSV sink, writing the header row.
    pub fn csv(path: &Path) -> std::io::Result<Sink> {
        let mut w = BufWriter::new(File::create(path)?);
        writeln!(
            w,
            "ou,subsystem,tid,start_ns,elapsed_ns,metrics,features,user_metrics"
        )?;
        Ok(Sink::Csv(w))
    }

    /// Open (or recover) an archive sink rooted at `dir`.
    pub fn archive(
        dir: &Path,
        opts: ArchiveOptions,
        telemetry: Telemetry,
    ) -> Result<Sink, tscout_archive::ArchiveError> {
        Ok(Sink::Archive(Archive::open(dir, opts, telemetry)?))
    }
}

/// The user-space Processor component.
#[derive(Debug)]
pub struct Processor {
    /// The Processor's own kernel task (it consumes CPU too).
    pub task: TaskId,
    pub sink: Sink,
    /// Samples fully processed.
    pub processed: u64,
    /// Ring records that failed to decode (overwritten mid-read etc.).
    pub malformed: u64,
    /// Cloned from the kernel at construction.
    pub telemetry: Telemetry,
    /// Lineage tracing: park consumed traces for the archive/model
    /// lifecycle even on a non-archive sink. The driver sets this when a
    /// `ModelLifecycle` stages points through the in-memory sink before
    /// archiving them.
    pub trace_parks: bool,
    /// Lost-sample total at the last `recommended_rate` check.
    last_lost: u64,
    /// Per-subsystem lost-sample totals at the last
    /// `subsystem_feedback` check, indexed by `Subsystem::index()`.
    last_lost_by_subsystem: [u64; ALL_SUBSYSTEMS.len()],
}

fn join<T: std::fmt::Display>(xs: &[T]) -> String {
    xs.iter()
        .map(std::string::ToString::to_string)
        .collect::<Vec<_>>()
        .join("|")
}

/// The `(ou, tid)` lineage key from a raw record header (words 0 and 1),
/// readable even when the full decode fails.
fn record_key(bytes: &[u8]) -> (u16, u64) {
    let word = |i: usize| {
        bytes
            .get(i * 8..i * 8 + 8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    };
    (
        word(0).map(|w| w as u16).unwrap_or(u16::MAX),
        word(1).unwrap_or(0),
    )
}

impl Processor {
    pub fn new(kernel: &mut Kernel, sink: Sink) -> Processor {
        Processor {
            task: kernel.create_task(),
            sink,
            processed: 0,
            malformed: 0,
            telemetry: kernel.telemetry.clone(),
            trace_parks: false,
            last_lost: 0,
            last_lost_by_subsystem: [0; ALL_SUBSYSTEMS.len()],
        }
    }

    /// Process ring records until the Processor's virtual clock reaches
    /// `until_ns` or the ring is empty. Returns samples processed.
    ///
    /// The per-sample transform cost comes from the kernel cost model, so
    /// a single-threaded Processor saturates at
    /// `1 / processor_per_sample_ns` samples per second — the Fig. 6
    /// plateau.
    pub fn poll(&mut self, kernel: &mut Kernel, ts: &mut TScout, until_ns: f64) -> usize {
        let _root = kernel.profile_frame(self.task, "tscout", true);
        let _frame = kernel.profile_frame(self.task, "processor:poll", false);
        let start_ns = kernel.now(self.task);
        let mut n = 0;
        while kernel.now(self.task) < until_ns {
            let recs = ts.drain_ring(1);
            if recs.is_empty() {
                kernel.advance_to(self.task, until_ns);
                break;
            }
            let drained_at = kernel.now(self.task);
            kernel.charge_overhead(self.task, kernel.cost.processor_per_sample_ns);
            self.consume(kernel, &recs[0], ts, drained_at);
            n += 1;
        }
        let dur = kernel.now(self.task) - start_ns;
        self.telemetry.hist_record("processor_poll_ns", &[], dur);
        self.telemetry
            .span("processor_poll", "processor", start_ns, dur);
        n
    }

    /// Drain and process everything regardless of virtual time (offline
    /// analysis / end-of-run flush). Still charges the Processor's task.
    pub fn drain_all(&mut self, kernel: &mut Kernel, ts: &mut TScout) -> usize {
        let _root = kernel.profile_frame(self.task, "tscout", true);
        let _frame = kernel.profile_frame(self.task, "processor:drain", false);
        let start_ns = kernel.now(self.task);
        let mut n = 0;
        loop {
            let recs = ts.drain_ring(64);
            if recs.is_empty() {
                let dur = kernel.now(self.task) - start_ns;
                self.telemetry.hist_record("processor_drain_ns", &[], dur);
                self.telemetry
                    .span("processor_drain_all", "processor", start_ns, dur);
                return n;
            }
            for r in &recs {
                let drained_at = kernel.now(self.task);
                kernel.charge_overhead(self.task, kernel.cost.processor_per_sample_ns);
                self.consume(kernel, r, ts, drained_at);
                n += 1;
            }
        }
    }

    fn consume(&mut self, kernel: &mut Kernel, bytes: &[u8], ts: &TScout, drained_at: f64) {
        let (tr_ou, tr_tid) = record_key(bytes);
        let Some(raw) = decode_record(bytes) else {
            self.malformed += 1;
            self.telemetry
                .counter_inc("processor_decode_errors_total", &[]);
            self.telemetry
                .trace_decode_error(tr_ou, tr_tid, kernel.now(self.task));
            return;
        };
        let points = split_record(&raw, &ts.registry);
        if points.is_empty() {
            self.malformed += 1;
            self.telemetry
                .counter_inc("processor_decode_errors_total", &[]);
            self.telemetry
                .trace_decode_error(tr_ou, tr_tid, kernel.now(self.task));
            return;
        }
        let sink_enter = kernel.now(self.task);
        // De-aggregation fan-out: fused-pipeline records expand into one
        // point per constituent OU (§5.2).
        self.telemetry.counter_inc("processor_records_total", &[]);
        self.telemetry
            .counter_add("processor_points_total", &[], points.len() as u64);
        self.telemetry
            .hist_record("processor_deagg_fanout", &[], points.len() as f64);
        {
            // Data-quality observability: fold every point into its OU's
            // drift sketches (target = elapsed time, feature = L2 norm of
            // the feature vector) before the sink consumes it.
            let _frame = kernel.profile_frame(self.task, "processor:sketch", false);
            kernel.charge_overhead(
                self.task,
                kernel.cost.sketch_per_sample_ns * points.len() as f64,
            );
            for p in &points {
                let norm = p.features.iter().map(|f| f * f).sum::<f64>().sqrt();
                self.telemetry.observe_ou_sample(
                    &p.ou_name,
                    p.subsystem.name(),
                    p.elapsed_ns as f64,
                    norm,
                );
            }
        }
        for p in points {
            match &mut self.sink {
                Sink::Memory(v) => v.push(p),
                Sink::Csv(w) => {
                    let _ = writeln!(
                        w,
                        "{},{},{},{},{},{},{},{}",
                        p.ou_name,
                        p.subsystem,
                        p.tid,
                        p.start_ns,
                        p.elapsed_ns,
                        join(&p.metrics),
                        join(&p.features),
                        join(&p.user_metrics),
                    );
                }
                Sink::Archive(a) => {
                    // Columnar encode + (possible) memtable flush happens
                    // inside append; templates are assigned post-hoc from
                    // the query trace, so inline archival stores 0.
                    let _frame = kernel.profile_frame(self.task, "processor:archive", false);
                    kernel.charge_overhead(self.task, kernel.cost.archive_per_sample_ns);
                    if let Err(e) = a.append(p.to_sample(0)) {
                        self.telemetry
                            .counter_inc("archive_append_errors_total", &[]);
                        debug_assert!(false, "archive append failed: {e}");
                    }
                }
                Sink::Discard => {}
            }
        }
        self.processed += 1;
        // Stamp the drain + sink stages on this record's trace (if it
        // carries one). Only the archive sink continues the lineage into
        // the memtable/segment/dataset lifecycle; the others terminate
        // delivered here. Tracing cost — the id assignment plus one
        // enter/exit record per marker/ring/drain/sink stage — lands on
        // the Processor's clock so sample bytes never shift.
        let terminal = !self.trace_parks && !matches!(self.sink, Sink::Archive(_));
        let traced = self.telemetry.trace_consume(
            tr_ou,
            tr_tid,
            drained_at,
            sink_enter,
            kernel.now(self.task),
            ts.ring_len() as u64,
            terminal,
        );
        if traced {
            let _frame = kernel.profile_frame(self.task, "processor:trace", false);
            kernel.charge_overhead(
                self.task,
                kernel.cost.trace_begin_ns + 4.0 * kernel.cost.trace_stage_record_ns,
            );
        }
        self.telemetry.gauge_set(
            "processor_buffered_samples",
            &[],
            self.buffered_samples() as f64,
        );
    }

    /// Decoded samples currently held in Processor memory: the in-memory
    /// sink's backlog, or the archive's unflushed memtables. This is the
    /// quantity the archive pipeline bounds (DESIGN.md §2.4).
    pub fn buffered_samples(&self) -> usize {
        match &self.sink {
            Sink::Memory(v) => v.len(),
            Sink::Archive(a) => a.buffered_samples(),
            _ => 0,
        }
    }

    /// Borrow the archive sink, if that is what this Processor writes to.
    pub fn archive(&self) -> Option<&Archive> {
        match &self.sink {
            Sink::Archive(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable access to the archive sink (sealing, compaction, scans at
    /// retraining points).
    pub fn archive_mut(&mut self) -> Option<&mut Archive> {
        match &mut self.sink {
            Sink::Archive(a) => Some(a),
            _ => None,
        }
    }

    /// Feedback mechanism (§3.2), driven by the exact lost-sample
    /// accounting: when *any* samples were lost since the last check —
    /// ring overwrites, emission backlog, marker resets — recommend
    /// halving the sampling rate; otherwise the current rate is
    /// sustainable. The Processor remembers the last-seen loss total
    /// itself, so callers just poll.
    pub fn recommended_rate(&mut self, ts: &TScout, current: u8) -> u8 {
        let lost = ts.loss_totals().lost;
        let new_losses = lost.saturating_sub(self.last_lost);
        self.last_lost = lost;
        if new_losses > 0 {
            self.telemetry
                .counter_inc("processor_rate_reductions_total", &[]);
            (current / 2).max(1)
        } else {
            current
        }
    }

    /// Per-subsystem refinement of [`Processor::recommended_rate`]: the
    /// loss counters are already attributed per subsystem
    /// (`tscout_samples_lost_total{subsystem,reason}`), so the feedback
    /// can lower exactly the subsystem that is losing data instead of
    /// punishing all six. One entry per subsystem; `recommended <
    /// current` only where new losses landed since the last check. The
    /// action engine's `loss_backoff` policy actuates these verdicts.
    pub fn subsystem_feedback(&mut self, ts: &TScout) -> Vec<SubsystemFeedback> {
        let mut out = Vec::with_capacity(ALL_SUBSYSTEMS.len());
        for s in ALL_SUBSYSTEMS {
            let total: u64 = self.telemetry.with_registry(|r| {
                r.counters_named("tscout_samples_lost_total")
                    .iter()
                    .filter(|(k, _)| {
                        k.labels
                            .iter()
                            .any(|(lk, lv)| lk == "subsystem" && lv == s.name())
                    })
                    .map(|(_, v)| v)
                    .sum()
            });
            let idx = s.index();
            let loss_delta = total.saturating_sub(self.last_lost_by_subsystem[idx]);
            self.last_lost_by_subsystem[idx] = total;
            let current = ts.sampler.rate(s);
            let recommended = if loss_delta > 0 && current > 1 {
                self.telemetry.counter_inc(
                    "processor_rate_reductions_total",
                    &[("subsystem", s.name())],
                );
                (current / 2).max(1)
            } else {
                current
            };
            out.push(SubsystemFeedback {
                subsystem: s,
                current,
                recommended,
                loss_delta,
            });
        }
        out
    }

    /// Take the in-memory points (empties the sink).
    pub fn take_points(&mut self) -> Vec<TrainingPoint> {
        match &mut self.sink {
            Sink::Memory(v) => std::mem::take(v),
            _ => Vec::new(),
        }
    }

    /// Flush file-backed sinks (CSV buffers; archive memtables down to
    /// the active segment file).
    pub fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.sink {
            Sink::Csv(w) => w.flush()?,
            Sink::Archive(a) => {
                a.flush()
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                self.telemetry
                    .gauge_set("processor_buffered_samples", &[], 0.0);
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{CollectionMode, ProbeSet, TsConfig};
    use crate::ou::Subsystem;
    use tscout_kernel::HardwareProfile;

    fn harness() -> (Kernel, TScout, TaskId, crate::ou::OuId) {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 3);
        k.noise_frac = 0.0;
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
        let mut ts = TScout::deploy(&mut k, cfg).unwrap();
        let ou = ts.register_ou("scan", Subsystem::ExecutionEngine, 1);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
        let t = k.create_task();
        ts.register_thread(&mut k, t);
        (k, ts, t, ou)
    }

    fn emit(k: &mut Kernel, ts: &mut TScout, t: TaskId, ou: crate::ou::OuId, n: usize) {
        for i in 0..n {
            ts.ou_begin(k, t, ou);
            k.charge_cpu(t, 5_000.0, 64);
            ts.ou_end(k, t, ou);
            ts.ou_features(k, t, ou, &[i as u64], &[]);
        }
    }

    #[test]
    fn poll_respects_virtual_time_budget() {
        let (mut k, mut ts, t, ou) = harness();
        emit(&mut k, &mut ts, t, ou, 50);
        let mut p = Processor::new(&mut k, Sink::Memory(Vec::new()));
        // Give the Processor time for exactly ~10 samples.
        let budget = 10.0 * k.cost.processor_per_sample_ns;
        let n = p.poll(&mut k, &mut ts, budget);
        assert!((9..=11).contains(&n), "processed {n}");
        assert_eq!(ts.ring_len(), 50 - n);
    }

    #[test]
    fn drain_all_empties_ring() {
        let (mut k, mut ts, t, ou) = harness();
        emit(&mut k, &mut ts, t, ou, 20);
        let mut p = Processor::new(&mut k, Sink::Memory(Vec::new()));
        assert_eq!(p.drain_all(&mut k, &mut ts), 20);
        assert_eq!(ts.ring_len(), 0);
        let pts = p.take_points();
        assert_eq!(pts.len(), 20);
        assert_eq!(pts[3].features, vec![3.0]);
        assert_eq!(p.take_points().len(), 0, "take empties the sink");
    }

    #[test]
    fn csv_sink_writes_rows() {
        let dir = std::env::temp_dir().join("tscout_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let (mut k, mut ts, t, ou) = harness();
        emit(&mut k, &mut ts, t, ou, 3);
        let mut p = Processor::new(&mut k, Sink::csv(&path).unwrap());
        p.drain_all(&mut k, &mut ts);
        p.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert!(lines[0].starts_with("ou,subsystem"));
        assert!(lines[1].starts_with("scan,execution_engine"));
    }

    #[test]
    fn malformed_records_are_counted_not_fatal() {
        let (mut k, mut ts, _, _) = harness();
        let mut p = Processor::new(&mut k, Sink::Discard);
        p.consume(&mut k, &[1, 2, 3], &ts, 0.0);
        assert_eq!(p.malformed, 1);
        assert_eq!(p.processed, 0);
        let _ = &mut ts;
    }

    #[test]
    fn archive_sink_persists_samples_and_reports_backlog() {
        let dir = std::env::temp_dir().join(format!("tscout_proc_arch_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (mut k, mut ts, t, ou) = harness();
        emit(&mut k, &mut ts, t, ou, 25);
        let sink = Sink::archive(&dir, ArchiveOptions::default(), k.telemetry.clone()).unwrap();
        let mut p = Processor::new(&mut k, sink);
        assert_eq!(p.drain_all(&mut k, &mut ts), 25);
        assert_eq!(p.buffered_samples(), 25);
        assert_eq!(
            p.telemetry.gauge_value("processor_buffered_samples", &[]),
            25.0
        );
        p.flush().unwrap();
        assert_eq!(p.buffered_samples(), 0);
        let a = p.archive_mut().unwrap();
        a.seal().unwrap();
        let back: Vec<_> = a.scan_ou("scan").collect();
        assert_eq!(back.len(), 25);
        assert_eq!(back[3].features, vec![3.0]);
        assert_eq!(back[3].template, 0, "inline archival is untagged");
        // The archive frame showed up in the profiler under the root.
        assert!(
            k.telemetry
                .counter_value("archive_bytes_written_total", &[])
                > 0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn feedback_recommends_lower_rate_on_drops() {
        let (mut k, mut ts, t, ou) = harness();
        let mut p = Processor::new(&mut k, Sink::Discard);
        assert_eq!(p.recommended_rate(&ts, 40), 40);
        // Overflow the ring (capacity 4096) to force drops.
        emit(&mut k, &mut ts, t, ou, 5000);
        assert!(ts.ring_dropped() > 0);
        assert_eq!(p.recommended_rate(&ts, 40), 20);
        // Telemetry has attributed the losses by now; with no new losses
        // since the last check, the rate holds steady.
        assert_eq!(p.recommended_rate(&ts, 20), 20);
    }

    #[test]
    fn subsystem_feedback_targets_only_the_losing_subsystem() {
        let (mut k, mut ts, t, ou) = harness();
        let mut p = Processor::new(&mut k, Sink::Discard);
        // Quiet start: every subsystem holds its current rate.
        for f in p.subsystem_feedback(&ts) {
            assert_eq!(f.recommended, f.current);
            assert_eq!(f.loss_delta, 0);
        }
        // Overflow the ring: losses land on execution_engine only.
        emit(&mut k, &mut ts, t, ou, 5000);
        assert!(ts.ring_dropped() > 0);
        let fb = p.subsystem_feedback(&ts);
        for f in &fb {
            if f.subsystem == Subsystem::ExecutionEngine {
                assert!(f.loss_delta > 0);
                assert_eq!(f.current, 100);
                assert_eq!(f.recommended, 50);
            } else {
                assert_eq!(f.recommended, f.current, "{:?}", f.subsystem);
                assert_eq!(f.loss_delta, 0);
            }
        }
        assert_eq!(
            p.telemetry.counter_value(
                "processor_rate_reductions_total",
                &[("subsystem", "execution_engine")],
            ),
            1
        );
        // No new losses since: everything holds.
        ts.drain_ring(usize::MAX);
        let fb = p.subsystem_feedback(&ts);
        assert!(fb.iter().all(|f| f.recommended == f.current));
    }
}
