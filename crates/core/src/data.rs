//! The training-data wire format and decoded sample types.
//!
//! A *record* is the fixed-size struct the Collector's FEATURES program
//! assembles on its BPF stack and publishes through `perf_event_output`
//! (paper §3.2: "the Collector packages the features and metrics together
//! into a struct (sample data point)"). The layout, in little-endian u64
//! words:
//!
//! | word        | contents                                             |
//! |-------------|------------------------------------------------------|
//! | 0           | OU id                                                |
//! | 1           | thread id                                            |
//! | 2           | subsystem index                                      |
//! | 3           | flags (`0` = plain OU; `n > 0` = fused pipeline with `n` OU feature groups, §5.2) |
//! | 4           | OU start time (ns)                                   |
//! | 5           | OU elapsed time (ns)                                 |
//! | 6           | number of metric words `M` (fixed per subsystem)     |
//! | 7           | number of valid payload words                        |
//! | 8 .. 8+M    | metrics (probe order: CPU×7, disk×4, net×4 as configured) |
//! | 8+M .. 8+M+32 | payload (features, then user-level metrics; zero-padded) |
//!
//! The record length is a compile-time constant per subsystem so the BPF
//! verifier can bounds-check the `perf_event_output` call.

use crate::ou::{OuRegistry, Subsystem};

/// Header words before the metrics block.
pub const HEADER_WORDS: usize = 8;
/// Fixed payload capacity in words.
pub const MAX_PAYLOAD_WORDS: usize = 32;

/// Record size in bytes for a subsystem collecting `m` metric words.
pub fn record_bytes(m: usize) -> usize {
    (HEADER_WORDS + m + MAX_PAYLOAD_WORDS) * 8
}

/// A decoded wire record, before OU-schema interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    pub ou: u64,
    pub tid: u64,
    pub subsystem: u64,
    pub flags: u64,
    pub start_ns: u64,
    pub elapsed_ns: u64,
    pub metrics: Vec<u64>,
    pub payload: Vec<u64>,
}

/// Decode a wire record. Returns `None` on malformed input (truncated or
/// internally inconsistent) — the Processor drops such records rather than
/// crashing, since ring overwrites are legal.
pub fn decode_record(bytes: &[u8]) -> Option<RawRecord> {
    if !bytes.len().is_multiple_of(8) || bytes.len() < HEADER_WORDS * 8 {
        return None;
    }
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let m = words[6] as usize;
    let n_payload = words[7] as usize;
    if n_payload > MAX_PAYLOAD_WORDS || words.len() != HEADER_WORDS + m + MAX_PAYLOAD_WORDS {
        return None;
    }
    Some(RawRecord {
        ou: words[0],
        tid: words[1],
        subsystem: words[2],
        flags: words[3],
        start_ns: words[4],
        elapsed_ns: words[5],
        metrics: words[HEADER_WORDS..HEADER_WORDS + m].to_vec(),
        payload: words[HEADER_WORDS + m..HEADER_WORDS + m + n_payload].to_vec(),
    })
}

/// Encode a record (used by the user-space collection modes, which build
/// the identical struct without BPF).
pub fn encode_record(r: &RawRecord) -> Vec<u8> {
    let m = r.metrics.len();
    let mut words = Vec::with_capacity(HEADER_WORDS + m + MAX_PAYLOAD_WORDS);
    words.extend_from_slice(&[
        r.ou,
        r.tid,
        r.subsystem,
        r.flags,
        r.start_ns,
        r.elapsed_ns,
        m as u64,
        r.payload.len() as u64,
    ]);
    words.extend_from_slice(&r.metrics);
    words.extend_from_slice(&r.payload);
    words.resize(HEADER_WORDS + m + MAX_PAYLOAD_WORDS, 0);
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// A fully decoded training data point: the Processor's output, and the
/// input to the behavior models (paper §2.1: "Each data point in a
/// training corpus contains input features and its corresponding output
/// metrics").
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingPoint {
    pub ou: u16,
    pub ou_name: String,
    pub subsystem: Subsystem,
    pub tid: u32,
    pub start_ns: u64,
    /// The primary target metric: OU execution time.
    pub elapsed_ns: u64,
    /// Kernel-probe metrics, in the subsystem's configured probe order.
    pub metrics: Vec<u64>,
    /// OU input features (first `n_features` payload words).
    pub features: Vec<f64>,
    /// User-level probe metrics (remaining payload words, e.g. the memory
    /// probe's bytes-allocated).
    pub user_metrics: Vec<u64>,
}

impl TrainingPoint {
    /// Convert to the archive's storage form. The query template is not
    /// part of the wire record — it is assigned post-hoc from the
    /// driver's query trace — so the caller supplies it (0 = untagged /
    /// background work).
    pub fn to_sample(&self, template: u32) -> tscout_archive::Sample {
        tscout_archive::Sample {
            ou: self.ou,
            ou_name: self.ou_name.clone(),
            subsystem: self.subsystem.index() as u8,
            tid: self.tid,
            template,
            start_ns: self.start_ns,
            elapsed_ns: self.elapsed_ns,
            metrics: self.metrics.clone(),
            features: self.features.clone(),
            user_metrics: self.user_metrics.clone(),
        }
    }
}

/// Split a raw record into training points using the OU registry's
/// feature schemas. Plain records produce one point; fused-pipeline
/// records (flags = n groups) produce one point per OU, with the shared
/// metrics and elapsed time apportioned by each group's declared weight —
/// the paper's "breaking apart which portion of the metrics corresponds
/// to which OU" using offline models (§5.2/§6). The weight is the group's
/// first feature (its tuple count), a proxy for per-OU work.
pub fn split_record(raw: &RawRecord, registry: &OuRegistry) -> Vec<TrainingPoint> {
    let Some(subsystem) = Subsystem::from_index(raw.subsystem as usize) else {
        return Vec::new();
    };
    if raw.flags == 0 {
        let (ou_name, n_features) = match registry.get(crate::ou::OuId(raw.ou as u16)) {
            Some(def) => (def.name.clone(), def.n_features.min(raw.payload.len())),
            None => (format!("ou_{}", raw.ou), raw.payload.len()),
        };
        return vec![TrainingPoint {
            ou: raw.ou as u16,
            ou_name,
            subsystem,
            tid: raw.tid as u32,
            start_ns: raw.start_ns,
            elapsed_ns: raw.elapsed_ns,
            metrics: raw.metrics.clone(),
            features: raw.payload[..n_features]
                .iter()
                .map(|w| *w as f64)
                .collect(),
            user_metrics: raw.payload[n_features..].to_vec(),
        }];
    }

    // Fused pipeline: payload = n groups of [ou_id, n_feat, feats...].
    let mut groups: Vec<(u64, Vec<u64>)> = Vec::new();
    let mut i = 0usize;
    for _ in 0..raw.flags {
        if i + 2 > raw.payload.len() {
            return Vec::new(); // malformed; drop
        }
        let ou = raw.payload[i];
        let n = raw.payload[i + 1] as usize;
        if i + 2 + n > raw.payload.len() {
            return Vec::new();
        }
        groups.push((ou, raw.payload[i + 2..i + 2 + n].to_vec()));
        i += 2 + n;
    }
    let total_weight: f64 = groups
        .iter()
        .map(|(_, f)| f.first().copied().unwrap_or(1).max(1) as f64)
        .sum();
    groups
        .into_iter()
        .map(|(ou, feats)| {
            let w = feats.first().copied().unwrap_or(1).max(1) as f64 / total_weight;
            let ou_name = registry
                .get(crate::ou::OuId(ou as u16))
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("ou_{ou}"));
            TrainingPoint {
                ou: ou as u16,
                ou_name,
                subsystem,
                tid: raw.tid as u32,
                start_ns: raw.start_ns,
                elapsed_ns: (raw.elapsed_ns as f64 * w) as u64,
                metrics: raw.metrics.iter().map(|m| (*m as f64 * w) as u64).collect(),
                features: feats.iter().map(|w| *w as f64).collect(),
                user_metrics: Vec::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ou::{OuRegistry, Subsystem};

    fn raw() -> RawRecord {
        RawRecord {
            ou: 3,
            tid: 17,
            subsystem: Subsystem::ExecutionEngine.index() as u64,
            flags: 0,
            start_ns: 1000,
            elapsed_ns: 250,
            metrics: vec![10, 20, 30],
            payload: vec![5, 6, 7, 4096],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = raw();
        let bytes = encode_record(&r);
        assert_eq!(bytes.len(), record_bytes(3));
        let d = decode_record(&bytes).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn decode_rejects_truncated() {
        let bytes = encode_record(&raw());
        assert!(decode_record(&bytes[..bytes.len() - 8]).is_none());
        assert!(decode_record(&bytes[..17]).is_none());
        assert!(decode_record(&[]).is_none());
    }

    #[test]
    fn decode_rejects_inconsistent_payload_count() {
        let mut bytes = encode_record(&raw());
        // Corrupt n_payload to exceed capacity.
        bytes[7 * 8..8 * 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(decode_record(&bytes).is_none());
    }

    #[test]
    fn split_plain_record_uses_feature_schema() {
        let mut reg = OuRegistry::new();
        // id 0..3 so that "ou 3" resolves.
        for n in ["a", "b", "c"] {
            reg.register(n, Subsystem::ExecutionEngine, 1);
        }
        let scan = reg.register("seq_scan", Subsystem::ExecutionEngine, 3);
        assert_eq!(scan.0, 3);
        let pts = split_record(&raw(), &reg);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.ou_name, "seq_scan");
        assert_eq!(p.features, vec![5.0, 6.0, 7.0]);
        assert_eq!(p.user_metrics, vec![4096]); // memory probe word
        assert_eq!(p.elapsed_ns, 250);
    }

    #[test]
    fn split_fused_record_apportions_metrics() {
        let mut reg = OuRegistry::new();
        let a = reg.register("idx_lookup", Subsystem::ExecutionEngine, 2);
        let b = reg.register("filter", Subsystem::ExecutionEngine, 1);
        let r = RawRecord {
            ou: a.as_u64(),
            tid: 1,
            subsystem: 0,
            flags: 2,
            start_ns: 0,
            elapsed_ns: 900,
            metrics: vec![300],
            // group 1: ou=a, 2 feats [100, 8]; group 2: ou=b, 1 feat [200]
            payload: vec![a.as_u64(), 2, 100, 8, b.as_u64(), 1, 200],
        };
        let pts = split_record(&r, &reg);
        assert_eq!(pts.len(), 2);
        // Weights 100:200 → elapsed 300/600, metric 100/200.
        assert_eq!(pts[0].elapsed_ns, 300);
        assert_eq!(pts[1].elapsed_ns, 600);
        assert_eq!(pts[0].metrics, vec![100]);
        assert_eq!(pts[1].metrics, vec![200]);
        assert_eq!(pts[0].features, vec![100.0, 8.0]);
        assert_eq!(pts[1].features, vec![200.0]);
    }

    #[test]
    fn split_malformed_fused_record_drops() {
        let reg = OuRegistry::new();
        let r = RawRecord {
            ou: 0,
            tid: 1,
            subsystem: 0,
            flags: 3, // claims 3 groups
            start_ns: 0,
            elapsed_ns: 1,
            metrics: vec![],
            payload: vec![0, 5, 1], // but group 1 claims 5 features
        };
        assert!(split_record(&r, &reg).is_empty());
    }

    #[test]
    fn split_unknown_subsystem_drops() {
        let reg = OuRegistry::new();
        let mut r = raw();
        r.subsystem = 99;
        assert!(split_record(&r, &reg).is_empty());
    }
}
