//! # TScout — training data collection for self-driving DBMSs
//!
//! A Rust reproduction of the TScout framework (Butrovich et al.,
//! *"Tastes Great! Less Filling! High Performance and Accurate Training
//! Data Collection for Self-Driving Database Management Systems"*,
//! SIGMOD 2022).
//!
//! TScout collects *training data* — operating-unit (OU) input features
//! paired with low-level hardware metrics — from a DBMS while it executes
//! a production workload. The pieces map one-to-one onto the paper:
//!
//! * **Markers** (§3.1): the DBMS annotates each OU with a
//!   `BEGIN`/`END`/`FEATURES` triple. The marker API lives on [`TScout`]
//!   ([`TScout::ou_begin`], [`TScout::ou_end`], [`TScout::ou_features`]);
//!   marker sites register kernel tracepoints at deploy time.
//! * **Codegen** (§3.1): [`codegen`] emits *real BPF bytecode* (for the
//!   `tscout-bpf` VM) per subsystem, tailored to the probe set the
//!   developer selected. Loops are unrolled; the programs pass the
//!   verifier and run a few hundred instructions, as in the paper.
//! * **Collector** (§3.2): the loaded BPF programs plus their maps — a
//!   depth-aware begin map (which subsumes the paper's stack-map handling
//!   of recursive operators, §5.2), a done map, and the perf-event ring
//!   buffer toward user space.
//! * **Probes** (§4): CPU (perf counters with multiplexing
//!   normalization), network (`tcp_sock`), and disk (`task_struct`
//!   `ioac`) are kernel-level; memory is the user-level probe whose
//!   values the DBMS reports at the `FEATURES` marker.
//! * **Processor** (§3.2): a user-space component that drains the ring
//!   buffer, decodes and de-aggregates samples (operator fusion, §5.2),
//!   and archives [`TrainingPoint`]s.
//! * **Sampling** (§5.3): per-subsystem 100-bit sampling fields with
//!   shuffled bits and per-thread offsets, adjustable at runtime.
//! * **Collection modes** (§6.2): [`CollectionMode::KernelContinuous`]
//!   (the TScout design), plus the [`CollectionMode::UserToggle`] and
//!   [`CollectionMode::UserContinuous`] baselines the paper compares
//!   against.
//!
//! ## Quick start
//!
//! ```
//! use tscout_kernel::{HardwareProfile, Kernel};
//! use tscout::{CollectionMode, ProbeSet, Subsystem, TScout, TsConfig};
//!
//! let mut kernel = Kernel::new(HardwareProfile::server_2x20());
//! let mut config = TsConfig::new(CollectionMode::KernelContinuous);
//! config.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
//! let mut ts = TScout::deploy(&mut kernel, config).unwrap();
//!
//! let ou = ts.register_ou("seq_scan", Subsystem::ExecutionEngine, 2);
//! ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
//!
//! let worker = kernel.create_task();
//! ts.ou_begin(&mut kernel, worker, ou);
//! kernel.charge_cpu(worker, 50_000.0, 1 << 16); // the OU's work
//! ts.ou_end(&mut kernel, worker, ou);
//! ts.ou_features(&mut kernel, worker, ou, &[1000, 8], &[4096]);
//!
//! let samples = ts.drain_decoded();
//! assert_eq!(samples.len(), 1);
//! assert!(samples[0].elapsed_ns > 0);
//! ```
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod codegen;
pub mod collector;
pub mod data;
pub mod ou;
pub mod processor;
pub mod sampling;

pub use collector::{CollectionMode, LossTotals, ProbeSet, TScout, TsConfig, TsError, TsStats};
pub use data::{decode_record, encode_record, RawRecord, TrainingPoint, MAX_PAYLOAD_WORDS};
pub use ou::{OuDef, OuId, OuRegistry, Subsystem, ALL_SUBSYSTEMS};
pub use processor::{Processor, Sink, SubsystemFeedback};
pub use sampling::Sampler;
