//! Operating units (OUs) and DBMS subsystems.
//!
//! An OU is "a discrete component in the DBMS" (paper §2.1): a unit of
//! work small enough to model accurately — a sequential scan, a hash-join
//! build, serializing a log buffer. OUs are grouped into *subsystems*
//! because OUs in a subsystem share input-feature schemas and sampling
//! configuration (§5.3).

use std::fmt;

/// DBMS subsystems, as used throughout the paper's evaluation
/// (execution engine, networking, log serializer, disk writer) plus the
/// background subsystems NoisePage also instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subsystem {
    ExecutionEngine,
    Networking,
    LogSerializer,
    DiskWriter,
    GarbageCollector,
    Transactions,
}

/// All subsystems, in stable order.
pub const ALL_SUBSYSTEMS: [Subsystem; 6] = [
    Subsystem::ExecutionEngine,
    Subsystem::Networking,
    Subsystem::LogSerializer,
    Subsystem::DiskWriter,
    Subsystem::GarbageCollector,
    Subsystem::Transactions,
];

impl Subsystem {
    pub fn index(self) -> usize {
        match self {
            Subsystem::ExecutionEngine => 0,
            Subsystem::Networking => 1,
            Subsystem::LogSerializer => 2,
            Subsystem::DiskWriter => 3,
            Subsystem::GarbageCollector => 4,
            Subsystem::Transactions => 5,
        }
    }

    pub fn from_index(i: usize) -> Option<Self> {
        ALL_SUBSYSTEMS.get(i).copied()
    }

    pub fn name(self) -> &'static str {
        match self {
            Subsystem::ExecutionEngine => "execution_engine",
            Subsystem::Networking => "networking",
            Subsystem::LogSerializer => "log_serializer",
            Subsystem::DiskWriter => "disk_writer",
            Subsystem::GarbageCollector => "garbage_collector",
            Subsystem::Transactions => "transactions",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of a registered OU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OuId(pub u16);

impl OuId {
    pub fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

/// Metadata the developer declares per OU at annotation time (§3.1).
#[derive(Debug, Clone)]
pub struct OuDef {
    pub id: OuId,
    pub name: String,
    pub subsystem: Subsystem,
    /// Number of input features the `FEATURES` marker reports. Payload
    /// words beyond this count are user-level metrics (e.g. the memory
    /// probe, §4.2).
    pub n_features: usize,
}

/// Registry of all annotated OUs — the marker metadata TScout extracts
/// from the DBMS during its Setup Phase.
#[derive(Debug, Default)]
pub struct OuRegistry {
    defs: Vec<OuDef>,
}

impl OuRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an OU. Registering the same name again returns the
    /// existing id (markers may appear in multiple code paths).
    pub fn register(&mut self, name: &str, subsystem: Subsystem, n_features: usize) -> OuId {
        if let Some(d) = self.defs.iter().find(|d| d.name == name) {
            return d.id;
        }
        let id = OuId(self.defs.len() as u16);
        self.defs.push(OuDef {
            id,
            name: name.into(),
            subsystem,
            n_features,
        });
        id
    }

    pub fn get(&self, id: OuId) -> Option<&OuDef> {
        self.defs.get(id.0 as usize)
    }

    pub fn by_name(&self, name: &str) -> Option<&OuDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    pub fn len(&self) -> usize {
        self.defs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &OuDef> {
        self.defs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = OuRegistry::new();
        let scan = r.register("seq_scan", Subsystem::ExecutionEngine, 3);
        let log = r.register("log_serialize", Subsystem::LogSerializer, 2);
        assert_ne!(scan, log);
        assert_eq!(r.get(scan).unwrap().name, "seq_scan");
        assert_eq!(r.by_name("log_serialize").unwrap().id, log);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn reregistering_returns_same_id() {
        let mut r = OuRegistry::new();
        let a = r.register("x", Subsystem::Networking, 1);
        let b = r.register("x", Subsystem::Networking, 1);
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn subsystem_index_round_trip() {
        for (i, s) in ALL_SUBSYSTEMS.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Subsystem::from_index(i), Some(*s));
        }
        assert_eq!(Subsystem::from_index(6), None);
    }
}
