//! Per-subsystem adjustable sampling (paper §5.3).
//!
//! "TS maintains a 100-bit field for each subsystem to represent its
//! sampling rate. [...] a rate of 20% will have 20 random bits set to one.
//! The random distribution of ones reduces the burstiness of collection.
//! [...] each thread maintains offsets to index into the bit fields. On a
//! candidate collection event, the thread checks the bit value at its
//! offset, uses the value to enable or disable training data for the
//! event, and then increments the offset until it wraps around to zero."

use crate::ou::Subsystem;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Width of the sampling bit field.
pub const FIELD_BITS: usize = 100;

#[derive(Debug, Clone)]
struct Field {
    bits: [bool; FIELD_BITS],
    rate: u8,
}

/// The per-subsystem sampler.
#[derive(Debug)]
pub struct Sampler {
    fields: [Field; 6],
    /// Per-thread, per-subsystem offsets. Indexed by a small thread slot.
    offsets: Vec<[usize; 6]>,
    rng: StdRng,
    /// When false, bits are set contiguously from the start instead of
    /// shuffled — the ablation configuration showing why shuffling matters
    /// (burstiness → tail latency).
    pub shuffle: bool,
}

impl Sampler {
    pub fn new(seed: u64) -> Self {
        Sampler {
            fields: std::array::from_fn(|_| Field {
                bits: [false; FIELD_BITS],
                rate: 0,
            }),
            offsets: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            shuffle: true,
        }
    }

    /// Set a subsystem's sampling rate in percent (0–100). Rebuilds the
    /// bit field; existing thread offsets are preserved.
    pub fn set_rate(&mut self, subsystem: Subsystem, rate: u8) {
        let rate = rate.min(100);
        let field = &mut self.fields[subsystem.index()];
        field.rate = rate;
        field.bits = [false; FIELD_BITS];
        if self.shuffle {
            // Floyd-style sample of `rate` distinct positions.
            let mut chosen = 0usize;
            while chosen < rate as usize {
                let pos = self.rng.random_range(0..FIELD_BITS);
                if !field.bits[pos] {
                    field.bits[pos] = true;
                    chosen += 1;
                }
            }
        } else {
            for bit in field.bits.iter_mut().take(rate as usize) {
                *bit = true;
            }
        }
    }

    pub fn rate(&self, subsystem: Subsystem) -> u8 {
        self.fields[subsystem.index()].rate
    }

    fn slot(&mut self, thread: usize) -> &mut [usize; 6] {
        if thread >= self.offsets.len() {
            self.offsets.resize(thread + 1, [0; 6]);
        }
        &mut self.offsets[thread]
    }

    /// The per-event sampling decision: read the bit at this thread's
    /// offset and advance the offset (wrapping).
    pub fn decide(&mut self, thread: usize, subsystem: Subsystem) -> bool {
        let idx = subsystem.index();
        let off = {
            let slot = self.slot(thread);
            let off = slot[idx];
            slot[idx] = (off + 1) % FIELD_BITS;
            off
        };
        self.fields[idx].bits[off]
    }

    /// Number of set bits — always exactly the rate.
    pub fn set_bits(&self, subsystem: Subsystem) -> usize {
        self.fields[subsystem.index()]
            .bits
            .iter()
            .filter(|b| **b)
            .count()
    }

    /// Longest run of consecutive `true` bits (burstiness measure used by
    /// the sampling-shuffle ablation).
    pub fn longest_run(&self, subsystem: Subsystem) -> usize {
        let bits = &self.fields[subsystem.index()].bits;
        let mut best = 0;
        let mut cur = 0;
        for &b in bits {
            if b {
                cur += 1;
                best = best.max(cur);
            } else {
                cur = 0;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_sets_exact_bit_count() {
        let mut s = Sampler::new(1);
        for rate in [0u8, 1, 20, 50, 99, 100] {
            s.set_rate(Subsystem::ExecutionEngine, rate);
            assert_eq!(s.set_bits(Subsystem::ExecutionEngine), rate as usize);
        }
    }

    #[test]
    fn rate_above_100_clamps() {
        let mut s = Sampler::new(1);
        s.set_rate(Subsystem::Networking, 250);
        assert_eq!(s.rate(Subsystem::Networking), 100);
        assert_eq!(s.set_bits(Subsystem::Networking), 100);
    }

    #[test]
    fn decisions_over_full_cycle_match_rate() {
        let mut s = Sampler::new(7);
        s.set_rate(Subsystem::LogSerializer, 37);
        let hits = (0..FIELD_BITS)
            .filter(|_| s.decide(0, Subsystem::LogSerializer))
            .count();
        assert_eq!(hits, 37);
    }

    #[test]
    fn zero_and_full_rates() {
        let mut s = Sampler::new(7);
        s.set_rate(Subsystem::DiskWriter, 0);
        assert!((0..300).all(|_| !s.decide(0, Subsystem::DiskWriter)));
        s.set_rate(Subsystem::DiskWriter, 100);
        assert!((0..300).all(|_| s.decide(0, Subsystem::DiskWriter)));
    }

    #[test]
    fn threads_have_independent_offsets() {
        let mut s = Sampler::new(3);
        s.set_rate(Subsystem::ExecutionEngine, 50);
        // Walk thread 0 forward; thread 1 should start from offset 0.
        let t0_first = s.decide(0, Subsystem::ExecutionEngine);
        for _ in 0..13 {
            s.decide(0, Subsystem::ExecutionEngine);
        }
        let t1_first = s.decide(1, Subsystem::ExecutionEngine);
        assert_eq!(t0_first, t1_first, "both read bit 0 first");
    }

    #[test]
    fn subsystems_are_independent() {
        let mut s = Sampler::new(3);
        s.set_rate(Subsystem::ExecutionEngine, 100);
        s.set_rate(Subsystem::Networking, 0);
        assert!(s.decide(0, Subsystem::ExecutionEngine));
        assert!(!s.decide(0, Subsystem::Networking));
    }

    #[test]
    fn shuffled_field_is_less_bursty_than_contiguous() {
        let mut shuffled = Sampler::new(11);
        shuffled.set_rate(Subsystem::ExecutionEngine, 30);
        let mut contiguous = Sampler::new(11);
        contiguous.shuffle = false;
        contiguous.set_rate(Subsystem::ExecutionEngine, 30);
        assert_eq!(contiguous.longest_run(Subsystem::ExecutionEngine), 30);
        assert!(shuffled.longest_run(Subsystem::ExecutionEngine) < 30);
    }

    #[test]
    fn deterministic_for_seed() {
        let pattern = |seed| {
            let mut s = Sampler::new(seed);
            s.set_rate(Subsystem::ExecutionEngine, 40);
            (0..FIELD_BITS)
                .map(|_| s.decide(0, Subsystem::ExecutionEngine))
                .collect::<Vec<_>>()
        };
        assert_eq!(pattern(9), pattern(9));
    }
}
