//! Codegen: turns marker metadata into BPF Collector programs (paper §3.1).
//!
//! "After the developer adds markers to the DBMS's source code, TS extracts
//! their embedded metadata [...] TS then generates the source code for a
//! BPF program to create the Collector component." Our codegen skips the
//! C-source intermediate and emits bytecode for the `tscout-bpf` VM
//! directly. Per-counter work is emitted as *bounded loops* — the
//! range-tracking verifier proves their trip counts and accepts the back
//! edges — which keeps the programs a fraction of the size of the
//! BCC-era fully-unrolled form. [`CodegenOptions::unroll_loops`] restores
//! full unrolling (the strategy required under a no-back-edge verifier);
//! both modes produce bit-identical samples.
//!
//! Three programs are generated per subsystem:
//!
//! * **BEGIN** — snapshots the enabled probes into the *begin* map, keyed
//!   by `(tid, depth)`. The depth counter makes nested/recursive OUs work
//!   (paper §5.2): a second `BEGIN` from the same thread pushes a deeper
//!   snapshot instead of clobbering the first.
//! * **END** — pops the matching snapshot, re-reads the probes, computes
//!   normalized deltas (including the perf multiplexing normalization of
//!   §4.1, done in integer math: `Δvalue · Δenabled / Δrunning`), and
//!   parks them in the *done* map keyed by tid.
//! * **FEATURES** — merges the done-map metrics with the feature payload
//!   from the marker context and publishes the finished sample to the
//!   perf ring buffer via `perf_event_output`.
//!
//! Each program returns 0 on success and 1 when markers arrive out of
//! order (END without BEGIN, FEATURES without END) — the Collector's
//! strict state machine (§5.1): the user-space side counts the error and
//! discards intermediate state.

use crate::data::{HEADER_WORDS, MAX_PAYLOAD_WORDS};
use tscout_bpf::asm::ProgramBuilder;
use tscout_bpf::insn::{self, AluOp, Cond, Helper, Size};
use tscout_bpf::{Insn, MapId};

use insn::{R0, R1, R10, R2, R3, R4, R5, R6, R7, R8, R9};

/// Loop-emission strategy for the generated Collector programs.
///
/// The default emits bounded loops: a counter register walks the
/// per-counter / per-word blocks and the verifier proves the trip count
/// by constant-propagating the counter through the back edge. Setting
/// `unroll_loops` replays the historical strategy of stamping every
/// iteration out inline, which a verifier without back-edge support
/// requires. Both strategies execute the identical sequence of stores
/// and helper calls, so the published samples are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodegenOptions {
    /// Emit fully unrolled per-counter blocks instead of bounded loops.
    pub unroll_loops: bool,
}

/// Which kernel-level probes a subsystem collects (paper Fig. 3: the
/// developer ticks CPU/memory/disk/network per subsystem). Memory is
/// always a *user-level* probe (§4.2) and therefore has no kernel flag:
/// its values arrive in the FEATURES payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeLayout {
    pub cpu: bool,
    pub disk: bool,
    pub net: bool,
}

/// Number of perf counters the CPU probe reads.
pub const CPU_COUNTERS: usize = 7;
/// Words per counter in a snapshot: value, time_enabled, time_running.
const SNAP_WORDS_PER_COUNTER: usize = 3;

impl ProbeLayout {
    /// Snapshot words: ktime + 3 per counter + 4 io + 4 net.
    pub fn snap_words(&self) -> usize {
        1 + if self.cpu {
            CPU_COUNTERS * SNAP_WORDS_PER_COUNTER
        } else {
            0
        } + if self.disk { 4 } else { 0 }
            + if self.net { 4 } else { 0 }
    }

    /// Word offset of the disk block within a snapshot.
    fn disk_word(&self) -> usize {
        1 + if self.cpu {
            CPU_COUNTERS * SNAP_WORDS_PER_COUNTER
        } else {
            0
        }
    }

    /// Word offset of the net block within a snapshot.
    fn net_word(&self) -> usize {
        self.disk_word() + if self.disk { 4 } else { 0 }
    }

    /// Metric words in the finished record: 7 CPU + 4 disk + 4 net.
    pub fn metric_words(&self) -> usize {
        (if self.cpu { CPU_COUNTERS } else { 0 })
            + if self.disk { 4 } else { 0 }
            + if self.net { 4 } else { 0 }
    }

    /// Done-map value words: start, elapsed, then metrics.
    pub fn done_words(&self) -> usize {
        2 + self.metric_words()
    }

    /// Human-readable metric names, in record order.
    pub fn metric_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        if self.cpu {
            names.extend([
                "cpu_cycles",
                "instructions",
                "ref_cycles",
                "cache_references",
                "cache_misses",
                "branches",
                "branch_misses",
            ]);
        }
        if self.disk {
            names.extend([
                "disk_read_bytes",
                "disk_write_bytes",
                "disk_read_sys",
                "disk_write_sys",
            ]);
        }
        if self.net {
            names.extend([
                "net_bytes_sent",
                "net_bytes_recv",
                "net_segs_out",
                "net_segs_in",
            ]);
        }
        names
    }
}

/// Marker-context layout (the tracepoint arguments serialized for BPF):
/// words `[ou, tid, subsystem, flags, n_payload, payload × 32]`.
pub const CTX_WORDS: usize = 5 + MAX_PAYLOAD_WORDS;
/// Declared BPF context size in bytes.
pub const CTX_BYTES: usize = CTX_WORDS * 8;

/// Serialize a marker context for the Collector programs.
pub fn encode_ctx(ou: u64, tid: u64, subsystem: u64, flags: u64, payload: &[u64]) -> Vec<u8> {
    let n = payload.len().min(MAX_PAYLOAD_WORDS);
    let mut words = [0u64; CTX_WORDS];
    words[0] = ou;
    words[1] = tid;
    words[2] = subsystem;
    words[3] = flags;
    words[4] = n as u64;
    words[5..5 + n].copy_from_slice(&payload[..n]);
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

// Stack frame offsets shared by the generated programs.
const OFF_TID_KEY: i32 = -8; // 8-byte map key: tid
const OFF_BKEY: i32 = -16; // 8-byte begin-map key: (tid << 8) | depth
const OFF_SCRATCH: i32 = -24; // 8-byte scratch value (depth writeback)

fn snap_base(probes: &ProbeLayout) -> i32 {
    -(24 + probes.snap_words() as i32 * 8)
}

fn snap_off(probes: &ProbeLayout, word: usize) -> i32 {
    snap_base(probes) + word as i32 * 8
}

/// Emit `for counter in 0..n { body }` as a guarded bounded loop:
///
/// ```text
///         mov  counter, 0
/// top:    jge  counter, n, after
///         <body>
///         add  counter, 1
///         ja   top
/// after:
/// ```
///
/// The verifier constant-propagates `counter` around the back edge, so
/// each traversal is concrete and the trip budget proves termination.
fn emit_counted_loop(
    b: &mut ProgramBuilder,
    counter: insn::Reg,
    n: usize,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    b.mov_imm(counter, 0);
    let top = b.label();
    let after = b.label();
    b.bind(top);
    b.jump_if_imm(Cond::Ge, counter, n as i64, after);
    body(b);
    b.alu_imm(AluOp::Add, counter, 1);
    b.jump(top);
    b.bind(after);
}

/// Emit the probe-snapshot block: ktime + enabled probes onto the stack.
/// Clobbers R0–R5 (plus R9 as the loop counter unless unrolling);
/// preserves R6–R8.
fn emit_snapshot(b: &mut ProgramBuilder, probes: &ProbeLayout, opts: CodegenOptions) {
    b.call(Helper::KtimeGetNs);
    b.store_reg(Size::B8, R10, snap_off(probes, 0), R0);
    if probes.cpu {
        if opts.unroll_loops {
            for i in 0..CPU_COUNTERS {
                b.mov_imm(R1, i as i64);
                b.mov_reg(R2, R10);
                b.alu_imm(
                    AluOp::Add,
                    R2,
                    snap_off(probes, 1 + SNAP_WORDS_PER_COUNTER * i) as i64,
                );
                b.call(Helper::PerfEventReadBuf);
            }
        } else {
            // R9 walks the counter index; the 24-byte out-buffer slides
            // with it. The helper clobbers R1–R5, so everything but the
            // counter is rebuilt per iteration.
            emit_counted_loop(b, R9, CPU_COUNTERS, |b| {
                b.mov_reg(R1, R9);
                b.mov_reg(R3, R9);
                b.alu_imm(AluOp::Mul, R3, (SNAP_WORDS_PER_COUNTER * 8) as i64);
                b.mov_reg(R2, R10);
                b.alu_imm(AluOp::Add, R2, snap_off(probes, 1) as i64);
                b.alu_reg(AluOp::Add, R2, R3);
                b.call(Helper::PerfEventReadBuf);
            });
        }
    }
    if probes.disk {
        b.mov_reg(R1, R10);
        b.alu_imm(AluOp::Add, R1, snap_off(probes, probes.disk_word()) as i64);
        b.call(Helper::ReadTaskIo);
    }
    if probes.net {
        b.mov_reg(R1, R10);
        b.alu_imm(AluOp::Add, R1, snap_off(probes, probes.net_word()) as i64);
        b.call(Helper::ReadTcpSock);
    }
}

/// Load `tid` from the context into R6 and store it as the tid map key.
fn emit_tid_key(b: &mut ProgramBuilder) {
    b.load(Size::B8, R6, R1, 8); // ctx word 1 = tid
    b.store_reg(Size::B8, R10, OFF_TID_KEY, R6);
}

/// `R2 = fp + off` (pointer argument setup).
fn fp_ptr(b: &mut ProgramBuilder, reg: insn::Reg, off: i32) {
    b.mov_reg(reg, R10);
    b.alu_imm(AluOp::Add, reg, off as i64);
}

/// Generate the BEGIN program with default options (bounded loops).
pub fn gen_begin(probes: &ProbeLayout, depth_map: MapId, begin_map: MapId) -> Vec<Insn> {
    gen_begin_with(probes, depth_map, begin_map, CodegenOptions::default())
}

/// Generate the BEGIN program.
pub fn gen_begin_with(
    probes: &ProbeLayout,
    depth_map: MapId,
    begin_map: MapId,
    opts: CodegenOptions,
) -> Vec<Insn> {
    let mut b = ProgramBuilder::new();
    emit_tid_key(&mut b);

    // R7 = current depth (0 when absent).
    b.load_map(R1, depth_map);
    fp_ptr(&mut b, R2, OFF_TID_KEY);
    b.call(Helper::MapLookup);
    b.mov_imm(R7, 0);
    let no_depth = b.label();
    b.jump_if_imm(Cond::Eq, R0, 0, no_depth);
    b.load(Size::B8, R7, R0, 0);
    b.bind(no_depth);

    emit_snapshot(&mut b, probes, opts);

    // bkey = (tid << 8) | depth.
    b.mov_reg(R8, R6);
    b.alu_imm(AluOp::Lsh, R8, 8);
    b.alu_reg(AluOp::Or, R8, R7);
    b.store_reg(Size::B8, R10, OFF_BKEY, R8);

    // begin[bkey] = snapshot.
    b.load_map(R1, begin_map);
    fp_ptr(&mut b, R2, OFF_BKEY);
    fp_ptr(&mut b, R3, snap_base(probes));
    b.mov_imm(R4, 0);
    b.call(Helper::MapUpdate);

    // depth[tid] = depth + 1.
    b.alu_imm(AluOp::Add, R7, 1);
    b.store_reg(Size::B8, R10, OFF_SCRATCH, R7);
    b.load_map(R1, depth_map);
    fp_ptr(&mut b, R2, OFF_TID_KEY);
    fp_ptr(&mut b, R3, OFF_SCRATCH);
    b.mov_imm(R4, 0);
    b.call(Helper::MapUpdate);

    b.mov_imm(R0, 0);
    b.exit();
    b.resolve()
        .expect("begin codegen produced invalid assembly")
}

/// Generate the END program with default options (bounded loops).
pub fn gen_end(
    probes: &ProbeLayout,
    depth_map: MapId,
    begin_map: MapId,
    done_map: MapId,
) -> Vec<Insn> {
    gen_end_with(
        probes,
        depth_map,
        begin_map,
        done_map,
        CodegenOptions::default(),
    )
}

/// Generate the END program.
pub fn gen_end_with(
    probes: &ProbeLayout,
    depth_map: MapId,
    begin_map: MapId,
    done_map: MapId,
    opts: CodegenOptions,
) -> Vec<Insn> {
    let done_base = snap_base(probes) - probes.done_words() as i32 * 8;
    let done_off = |w: usize| done_base + w as i32 * 8;

    let mut b = ProgramBuilder::new();
    let err = b.label();
    emit_tid_key(&mut b);

    // depth must exist and be > 0.
    b.load_map(R1, depth_map);
    fp_ptr(&mut b, R2, OFF_TID_KEY);
    b.call(Helper::MapLookup);
    b.jump_if_imm(Cond::Eq, R0, 0, err);
    b.load(Size::B8, R7, R0, 0);
    b.jump_if_imm(Cond::Eq, R7, 0, err);
    b.alu_imm(AluOp::Sub, R7, 1);
    b.store_reg(Size::B8, R10, OFF_SCRATCH, R7);
    b.load_map(R1, depth_map);
    fp_ptr(&mut b, R2, OFF_TID_KEY);
    fp_ptr(&mut b, R3, OFF_SCRATCH);
    b.mov_imm(R4, 0);
    b.call(Helper::MapUpdate);

    // bkey and snapshot lookup.
    b.mov_reg(R8, R6);
    b.alu_imm(AluOp::Lsh, R8, 8);
    b.alu_reg(AluOp::Or, R8, R7);
    b.store_reg(Size::B8, R10, OFF_BKEY, R8);
    b.load_map(R1, begin_map);
    fp_ptr(&mut b, R2, OFF_BKEY);
    b.call(Helper::MapLookup);
    b.jump_if_imm(Cond::Eq, R0, 0, err);
    b.mov_reg(R8, R0); // R8 = begin snapshot pointer

    // Fresh snapshot of the probes.
    emit_snapshot(&mut b, probes, opts);

    // done[0] = start; done[1] = now - start.
    b.load(Size::B8, R2, R8, 0);
    b.store_reg(Size::B8, R10, done_off(0), R2);
    b.load(Size::B8, R3, R10, snap_off(probes, 0));
    b.alu_reg(AluOp::Sub, R3, R2);
    b.store_reg(Size::B8, R10, done_off(1), R3);

    let mut done_w = 2usize;
    if probes.cpu {
        if opts.unroll_loops {
            for i in 0..CPU_COUNTERS {
                let vw = 1 + SNAP_WORDS_PER_COUNTER * i;
                // Δvalue
                b.load(Size::B8, R2, R10, snap_off(probes, vw));
                b.load(Size::B8, R3, R8, (vw * 8) as i32);
                b.alu_reg(AluOp::Sub, R2, R3);
                // Δenabled
                b.load(Size::B8, R3, R10, snap_off(probes, vw + 1));
                b.load(Size::B8, R4, R8, ((vw + 1) * 8) as i32);
                b.alu_reg(AluOp::Sub, R3, R4);
                // Δrunning
                b.load(Size::B8, R4, R10, snap_off(probes, vw + 2));
                b.load(Size::B8, R5, R8, ((vw + 2) * 8) as i32);
                b.alu_reg(AluOp::Sub, R4, R5);
                // normalized = Δvalue · Δenabled / Δrunning (0 when Δrunning = 0)
                b.alu_reg(AluOp::Mul, R2, R3);
                b.alu_reg(AluOp::Div, R2, R4);
                b.store_reg(Size::B8, R10, done_off(done_w + i), R2);
            }
        } else {
            // Loop form of the same computation. Per counter i: R1 walks
            // the done slot (stride 8), R3/R4 walk the fresh/begin
            // counter blocks (stride 24). No helper calls inside, so
            // R0–R5 are free scratch; R9 is the counter.
            emit_counted_loop(&mut b, R9, CPU_COUNTERS, |b| {
                b.mov_reg(R0, R9);
                b.alu_imm(AluOp::Lsh, R0, 3); // 8·i
                b.mov_reg(R1, R10);
                b.alu_reg(AluOp::Add, R1, R0); // done slot base
                b.mov_reg(R2, R0);
                b.alu_imm(AluOp::Mul, R2, SNAP_WORDS_PER_COUNTER as i64); // 24·i
                b.mov_reg(R3, R10);
                b.alu_reg(AluOp::Add, R3, R2); // fresh counter block base
                b.mov_reg(R4, R8);
                b.alu_reg(AluOp::Add, R4, R2); // begin counter block base
                                               // Δvalue
                b.load(Size::B8, R0, R3, snap_off(probes, 1));
                b.load(Size::B8, R5, R4, 8);
                b.alu_reg(AluOp::Sub, R0, R5);
                // Δenabled
                b.load(Size::B8, R2, R3, snap_off(probes, 2));
                b.load(Size::B8, R5, R4, 16);
                b.alu_reg(AluOp::Sub, R2, R5);
                b.alu_reg(AluOp::Mul, R0, R2);
                // Δrunning
                b.load(Size::B8, R2, R3, snap_off(probes, 3));
                b.load(Size::B8, R5, R4, 24);
                b.alu_reg(AluOp::Sub, R2, R5);
                b.alu_reg(AluOp::Div, R0, R2);
                b.store_reg(Size::B8, R1, done_off(2), R0);
            });
        }
        done_w += CPU_COUNTERS;
    }
    // The disk and net blocks are contiguous in both the snapshot and the
    // done record, so one loop covers whichever subset is enabled.
    let io_words = if probes.disk { 4 } else { 0 } + if probes.net { 4 } else { 0 };
    if io_words > 0 {
        let first_word = probes.disk_word();
        if opts.unroll_loops {
            for j in 0..io_words {
                let w = first_word + j;
                b.load(Size::B8, R2, R10, snap_off(probes, w));
                b.load(Size::B8, R3, R8, (w * 8) as i32);
                b.alu_reg(AluOp::Sub, R2, R3);
                b.store_reg(Size::B8, R10, done_off(done_w + j), R2);
            }
        } else {
            emit_counted_loop(&mut b, R9, io_words, |b| {
                b.mov_reg(R0, R9);
                b.alu_imm(AluOp::Lsh, R0, 3); // 8·k
                b.mov_reg(R1, R10);
                b.alu_reg(AluOp::Add, R1, R0);
                b.mov_reg(R2, R8);
                b.alu_reg(AluOp::Add, R2, R0);
                b.load(Size::B8, R3, R1, snap_off(probes, first_word));
                b.load(Size::B8, R4, R2, (first_word * 8) as i32);
                b.alu_reg(AluOp::Sub, R3, R4);
                b.store_reg(Size::B8, R1, done_off(done_w), R3);
            });
        }
        done_w += io_words;
    }
    debug_assert_eq!(done_w, probes.done_words());

    // done[tid] = deltas; delete begin[bkey].
    b.load_map(R1, done_map);
    fp_ptr(&mut b, R2, OFF_TID_KEY);
    fp_ptr(&mut b, R3, done_base);
    b.mov_imm(R4, 0);
    b.call(Helper::MapUpdate);
    b.load_map(R1, begin_map);
    fp_ptr(&mut b, R2, OFF_BKEY);
    b.call(Helper::MapDelete);

    b.mov_imm(R0, 0);
    b.exit();
    b.bind(err);
    b.mov_imm(R0, 1);
    b.exit();
    b.resolve().expect("end codegen produced invalid assembly")
}

/// Generate the FEATURES program with default options (bounded loops).
pub fn gen_features(probes: &ProbeLayout, done_map: MapId, ring_map: MapId) -> Vec<Insn> {
    gen_features_with(probes, done_map, ring_map, CodegenOptions::default())
}

/// Generate the FEATURES program. `metric_words` must match the probe
/// layout used for BEGIN/END.
pub fn gen_features_with(
    probes: &ProbeLayout,
    done_map: MapId,
    ring_map: MapId,
    opts: CodegenOptions,
) -> Vec<Insn> {
    let m = probes.metric_words();
    let rec_words = HEADER_WORDS + m + MAX_PAYLOAD_WORDS;
    let rec_bytes = rec_words * 8;
    let rec_base = -(8 + rec_bytes as i32);
    let rec_off = |w: usize| rec_base + w as i32 * 8;

    let mut b = ProgramBuilder::new();
    let err = b.label();

    b.mov_reg(R9, R1); // preserve ctx pointer across calls
    emit_tid_key(&mut b);

    b.load_map(R1, done_map);
    fp_ptr(&mut b, R2, OFF_TID_KEY);
    b.call(Helper::MapLookup);
    b.jump_if_imm(Cond::Eq, R0, 0, err);
    b.mov_reg(R8, R0); // R8 = done-map deltas

    // Header: ou, tid, subsystem, flags, start, elapsed, M, n_payload.
    for (rec_w, ctx_byte) in [(0usize, 0i32), (2, 16), (3, 24), (7, 32)] {
        b.load(Size::B8, R2, R9, ctx_byte);
        b.store_reg(Size::B8, R10, rec_off(rec_w), R2);
    }
    b.store_reg(Size::B8, R10, rec_off(1), R6);
    b.load(Size::B8, R2, R8, 0);
    b.store_reg(Size::B8, R10, rec_off(4), R2);
    b.load(Size::B8, R2, R8, 8);
    b.store_reg(Size::B8, R10, rec_off(5), R2);
    b.store_imm(Size::B8, R10, rec_off(6), m as i64);

    // Metrics from the done map, then the full payload copy (the
    // zero-padded context keeps the latter branch-free). No helper calls
    // inside either loop, so R0–R5 are scratch; R7 is the counter (R6 =
    // tid, R8 = done pointer, R9 = ctx pointer stay live).
    if opts.unroll_loops {
        for i in 0..m {
            b.load(Size::B8, R2, R8, ((2 + i) * 8) as i32);
            b.store_reg(Size::B8, R10, rec_off(HEADER_WORDS + i), R2);
        }
        for j in 0..MAX_PAYLOAD_WORDS {
            b.load(Size::B8, R2, R9, ((5 + j) * 8) as i32);
            b.store_reg(Size::B8, R10, rec_off(HEADER_WORDS + m + j), R2);
        }
    } else {
        if m > 0 {
            emit_counted_loop(&mut b, R7, m, |b| {
                b.mov_reg(R0, R7);
                b.alu_imm(AluOp::Lsh, R0, 3); // 8·i
                b.mov_reg(R1, R8);
                b.alu_reg(AluOp::Add, R1, R0);
                b.load(Size::B8, R2, R1, 16); // done[2 + i]
                b.mov_reg(R3, R10);
                b.alu_reg(AluOp::Add, R3, R0);
                b.store_reg(Size::B8, R3, rec_off(HEADER_WORDS), R2);
            });
        }
        emit_counted_loop(&mut b, R7, MAX_PAYLOAD_WORDS, |b| {
            b.mov_reg(R0, R7);
            b.alu_imm(AluOp::Lsh, R0, 3); // 8·j
            b.mov_reg(R1, R9);
            b.alu_reg(AluOp::Add, R1, R0);
            b.load(Size::B8, R2, R1, 40); // ctx word 5 + j
            b.mov_reg(R3, R10);
            b.alu_reg(AluOp::Add, R3, R0);
            b.store_reg(Size::B8, R3, rec_off(HEADER_WORDS + m), R2);
        });
    }

    // Publish and clean up.
    b.load_map(R1, ring_map);
    fp_ptr(&mut b, R2, rec_base);
    b.mov_imm(R3, rec_bytes as i64);
    b.call(Helper::PerfEventOutput);
    b.load_map(R1, done_map);
    fp_ptr(&mut b, R2, OFF_TID_KEY);
    b.call(Helper::MapDelete);

    b.mov_imm(R0, 0);
    b.exit();
    b.bind(err);
    b.mov_imm(R0, 1);
    b.exit();
    b.resolve()
        .expect("features codegen produced invalid assembly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscout_bpf::maps::MapDef;
    use tscout_bpf::{verify, MapRegistry};

    fn all_probes() -> ProbeLayout {
        ProbeLayout {
            cpu: true,
            disk: true,
            net: true,
        }
    }

    fn setup(probes: &ProbeLayout) -> (MapRegistry, MapId, MapId, MapId, MapId) {
        let mut maps = MapRegistry::new();
        let depth = maps.create(MapDef::hash("depth", 8, 8, 256));
        let begin = maps.create(MapDef::hash("begin", 8, probes.snap_words() * 8, 1024));
        let done = maps.create(MapDef::hash("done", 8, probes.done_words() * 8, 256));
        let ring = maps.create(MapDef::perf_event_array("ring", 64));
        (maps, depth, begin, done, ring)
    }

    #[test]
    fn layout_math() {
        let p = all_probes();
        assert_eq!(p.snap_words(), 30); // 1 + 21 + 4 + 4
        assert_eq!(p.metric_words(), 15);
        assert_eq!(p.done_words(), 17);
        assert_eq!(p.metric_names().len(), 15);

        let cpu_only = ProbeLayout {
            cpu: true,
            disk: false,
            net: false,
        };
        assert_eq!(cpu_only.snap_words(), 22);
        assert_eq!(cpu_only.metric_words(), 7);

        let none = ProbeLayout {
            cpu: false,
            disk: false,
            net: false,
        };
        assert_eq!(none.snap_words(), 1);
        assert_eq!(none.metric_words(), 0);
    }

    #[test]
    fn generated_programs_pass_the_verifier_all_probe_combos() {
        for unroll_loops in [false, true] {
            let opts = CodegenOptions { unroll_loops };
            for cpu in [false, true] {
                for disk in [false, true] {
                    for net in [false, true] {
                        let p = ProbeLayout { cpu, disk, net };
                        let (maps, depth, begin, done, ring) = setup(&p);
                        for (name, prog) in [
                            ("begin", gen_begin_with(&p, depth, begin, opts)),
                            ("end", gen_end_with(&p, depth, begin, done, opts)),
                            ("features", gen_features_with(&p, done, ring, opts)),
                        ] {
                            verify(&prog, &maps, CTX_BYTES).unwrap_or_else(|e| {
                                panic!(
                                    "{name} (cpu={cpu},disk={disk},net={net},\
                                     unroll={unroll_loops}) rejected: {e}\n{}",
                                    tscout_bpf::insn::disassemble(&prog)
                                )
                            });
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_loops_shrink_every_program() {
        let p = all_probes();
        let (_, depth, begin, done, ring) = setup(&p);
        let unroll = CodegenOptions { unroll_loops: true };
        let looped = CodegenOptions::default();
        for (name, small, big) in [
            (
                "begin",
                gen_begin_with(&p, depth, begin, looped).len(),
                gen_begin_with(&p, depth, begin, unroll).len(),
            ),
            (
                "end",
                gen_end_with(&p, depth, begin, done, looped).len(),
                gen_end_with(&p, depth, begin, done, unroll).len(),
            ),
            (
                "features",
                gen_features_with(&p, done, ring, looped).len(),
                gen_features_with(&p, done, ring, unroll).len(),
            ),
        ] {
            assert!(
                small < big,
                "{name}: loop form ({small}) not smaller than unrolled ({big})"
            );
        }
    }

    /// Run the full BEGIN/END/FEATURES pipeline in both emission modes
    /// with identical worlds and assert the raw ring-buffer bytes match:
    /// the loop rewrite must not change a single bit of the samples.
    #[test]
    fn loop_and_unrolled_modes_produce_identical_samples() {
        use tscout_bpf::vm::{NullWorld, Vm};
        for p in [
            all_probes(),
            ProbeLayout {
                cpu: true,
                disk: false,
                net: true,
            },
            ProbeLayout {
                cpu: false,
                disk: false,
                net: false,
            },
        ] {
            let mut rings: Vec<Vec<Vec<u8>>> = Vec::new();
            for unroll_loops in [false, true] {
                let opts = CodegenOptions { unroll_loops };
                let (mut maps, depth, begin, done, ring) = setup(&p);
                let b_prog = gen_begin_with(&p, depth, begin, opts);
                let e_prog = gen_end_with(&p, depth, begin, done, opts);
                let f_prog = gen_features_with(&p, done, ring, opts);
                let ctx = encode_ctx(5, 42, 1, 0, &[77, 88, 99]);
                let mut world = NullWorld {
                    time_ns: 100,
                    pid_tgid: 42,
                };
                assert_eq!(Vm::run(&b_prog, &ctx, &mut maps, &mut world).unwrap().0, 0);
                world.time_ns = 600;
                assert_eq!(Vm::run(&e_prog, &ctx, &mut maps, &mut world).unwrap().0, 0);
                assert_eq!(Vm::run(&f_prog, &ctx, &mut maps, &mut world).unwrap().0, 0);
                rings.push(maps.ring_drain(ring, 10));
            }
            assert_eq!(rings[0], rings[1], "samples differ for {p:?}");
            assert_eq!(rings[0].len(), 1);
        }
    }

    #[test]
    fn programs_are_hundreds_of_instructions() {
        // Paper §5.1: "compiled BPF programs only contain 100s of
        // instructions" — sanity-check we are in the same regime.
        let p = all_probes();
        let (_, depth, begin, done, ring) = setup(&p);
        let lens = [
            gen_begin(&p, depth, begin).len(),
            gen_end(&p, depth, begin, done).len(),
            gen_features(&p, done, ring).len(),
        ];
        for l in lens {
            assert!(l > 20 && l < 1000, "unexpected program size {l}");
        }
    }

    #[test]
    fn ctx_encode_layout() {
        let ctx = encode_ctx(7, 3, 2, 0, &[11, 22]);
        assert_eq!(ctx.len(), CTX_BYTES);
        let word = |i: usize| u64::from_le_bytes(ctx[i * 8..(i + 1) * 8].try_into().unwrap());
        assert_eq!(word(0), 7);
        assert_eq!(word(1), 3);
        assert_eq!(word(2), 2);
        assert_eq!(word(3), 0);
        assert_eq!(word(4), 2);
        assert_eq!(word(5), 11);
        assert_eq!(word(6), 22);
        assert_eq!(word(7), 0); // zero padding
    }

    #[test]
    fn ctx_encode_clamps_payload() {
        let big = vec![9u64; 100];
        let ctx = encode_ctx(0, 0, 0, 0, &big);
        let n = u64::from_le_bytes(ctx[32..40].try_into().unwrap());
        assert_eq!(n, MAX_PAYLOAD_WORDS as u64);
    }

    #[test]
    fn end_without_begin_returns_error_code() {
        use tscout_bpf::vm::{NullWorld, Vm};
        let p = all_probes();
        let (mut maps, depth, begin, done, _ring) = setup(&p);
        let prog = gen_end(&p, depth, begin, done);
        let ctx = encode_ctx(1, 42, 0, 0, &[]);
        let mut world = NullWorld::default();
        let (r0, _) = Vm::run(&prog, &ctx, &mut maps, &mut world).unwrap();
        assert_eq!(r0, 1, "END without BEGIN must signal a state-machine error");
    }

    #[test]
    fn begin_end_features_round_trip_through_vm() {
        use crate::data::decode_record;
        use tscout_bpf::vm::{NullWorld, Vm};
        let p = all_probes();
        let (mut maps, depth, begin, done, ring) = setup(&p);
        let b_prog = gen_begin(&p, depth, begin);
        let e_prog = gen_end(&p, depth, begin, done);
        let f_prog = gen_features(&p, done, ring);
        let ctx = encode_ctx(5, 42, 1, 0, &[77, 88]);
        let mut world = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        let (r0, _) = Vm::run(&b_prog, &ctx, &mut maps, &mut world).unwrap();
        assert_eq!(r0, 0);
        world.time_ns = 600;
        let (r0, _) = Vm::run(&e_prog, &ctx, &mut maps, &mut world).unwrap();
        assert_eq!(r0, 0);
        let (r0, _) = Vm::run(&f_prog, &ctx, &mut maps, &mut world).unwrap();
        assert_eq!(r0, 0);

        let recs = maps.ring_drain(ring, 10);
        assert_eq!(recs.len(), 1);
        let rec = decode_record(&recs[0]).unwrap();
        assert_eq!(rec.ou, 5);
        assert_eq!(rec.tid, 42);
        assert_eq!(rec.subsystem, 1);
        assert_eq!(rec.start_ns, 100);
        assert_eq!(rec.elapsed_ns, 500);
        assert_eq!(rec.metrics.len(), 15);
        assert_eq!(rec.payload, vec![77, 88]);
        // Depth returned to zero; maps drained.
        assert_eq!(
            maps.lookup(depth, &42u64.to_le_bytes()).unwrap(),
            &0u64.to_le_bytes()
        );
        assert_eq!(maps.entries(begin), 0);
        assert_eq!(maps.entries(done), 0);
    }

    #[test]
    fn nested_ous_use_depth_keys() {
        use tscout_bpf::vm::{NullWorld, Vm};
        let p = ProbeLayout {
            cpu: false,
            disk: false,
            net: false,
        };
        let (mut maps, depth, begin, done, ring) = setup(&p);
        let b_prog = gen_begin(&p, depth, begin);
        let e_prog = gen_end(&p, depth, begin, done);
        let f_prog = gen_features(&p, done, ring);
        let ctx = encode_ctx(1, 9, 0, 0, &[]);
        let mut world = NullWorld {
            time_ns: 0,
            pid_tgid: 9,
        };

        // B1 (t=0) B2 (t=10) E2 (t=30) F2 E1 (t=100) F1
        Vm::run(&b_prog, &ctx, &mut maps, &mut world).unwrap();
        world.time_ns = 10;
        Vm::run(&b_prog, &ctx, &mut maps, &mut world).unwrap();
        assert_eq!(maps.entries(begin), 2);
        world.time_ns = 30;
        let (r0, _) = Vm::run(&e_prog, &ctx, &mut maps, &mut world).unwrap();
        assert_eq!(r0, 0);
        Vm::run(&f_prog, &ctx, &mut maps, &mut world).unwrap();
        world.time_ns = 100;
        let (r0, _) = Vm::run(&e_prog, &ctx, &mut maps, &mut world).unwrap();
        assert_eq!(r0, 0);
        Vm::run(&f_prog, &ctx, &mut maps, &mut world).unwrap();

        let recs: Vec<_> = maps
            .ring_drain(ring, 10)
            .iter()
            .map(|r| crate::data::decode_record(r).unwrap())
            .collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].elapsed_ns, 20); // inner: 30 - 10
        assert_eq!(recs[1].elapsed_ns, 100); // outer: 100 - 0
    }
}
