//! Model evaluation: the paper's accuracy statistics.
//!
//! "OLTP transactions are short-lived and result in noisy runtime
//! measurements, so we measure the absolute error (|Actual − Predict|)
//! for each query template and then compute the average" (§6). All
//! errors are reported in microseconds, matching the paper's figures.

use std::collections::BTreeMap;

use crate::dataset::OuData;
use crate::{ModelKind, Regressor};

/// One trained model per OU.
#[derive(Debug)]
pub struct OuModelSet {
    models: BTreeMap<String, Box<dyn Regressor>>,
    kind: ModelKind,
    seed: u64,
}

impl OuModelSet {
    /// Train one model per OU dataset.
    pub fn train(kind: ModelKind, seed: u64, data: &[OuData]) -> OuModelSet {
        let mut models = BTreeMap::new();
        for d in data {
            if d.is_empty() {
                continue;
            }
            let (x, y) = d.matrices();
            let mut m = kind.build(seed);
            m.fit(&x, &y);
            models.insert(d.name.clone(), m);
        }
        OuModelSet { models, kind, seed }
    }

    /// Predict elapsed ns for one OU invocation; `None` when no model
    /// exists for that OU (no training data seen).
    pub fn predict_ns(&self, ou: &str, features: &[f64]) -> Option<f64> {
        self.models.get(ou).map(|m| m.predict(features).max(0.0))
    }

    pub fn ou_names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Retrain this set's OU model on augmented data (online refinement).
    pub fn retrain_ou(&mut self, data: &OuData) {
        if data.is_empty() {
            return;
        }
        let (x, y) = data.matrices();
        let mut m = self.kind.build(self.seed);
        m.fit(&x, &y);
        self.models.insert(data.name.clone(), m);
    }
}

/// Average absolute error per query template, in microseconds.
///
/// Groups the test set by template, computes each template's mean
/// absolute prediction error summed over the OUs in the template, and
/// averages across templates. Test points whose OU has no model
/// contribute their full actual time as error (the model predicts 0).
pub fn avg_abs_error_per_template_us(models: &OuModelSet, test: &[OuData]) -> f64 {
    // template -> (sum of |err| in ns, count)
    let mut by_template: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
    for d in test {
        for p in &d.points {
            let predicted = models.predict_ns(&d.name, &p.features).unwrap_or(0.0);
            let err = (p.target_ns - predicted).abs();
            let e = by_template.entry(p.template).or_insert((0.0, 0));
            e.0 += err;
            e.1 += 1;
        }
    }
    if by_template.is_empty() {
        return 0.0;
    }
    let per_template: Vec<f64> = by_template
        .values()
        .map(|(sum, n)| sum / *n as f64)
        .collect();
    per_template.iter().sum::<f64>() / per_template.len() as f64 / 1000.0
}

/// K-fold cross-validated error for a set of OU datasets: trains on each
/// fold's training split and evaluates on its test split, averaging.
pub fn cross_validated_error_us(kind: ModelKind, seed: u64, data: &[OuData], k: usize) -> f64 {
    let mut total = 0.0;
    for fold in 0..k {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for d in data {
            let folds = crate::dataset::kfold(d, k, seed);
            let (tr, te) = &folds[fold];
            train.push(tr.clone());
            test.push(te.clone());
        }
        let models = OuModelSet::train(kind, seed, &train);
        total += avg_abs_error_per_template_us(&models, &test);
    }
    total / k as f64
}

/// Mean absolute percentage error over a test set, in percent.
///
/// The model-lifecycle accuracy gate uses this relative statistic so the
/// decision is scale-free across OUs with very different runtimes.
/// Points with a zero/negative actual time are skipped (a percentage of
/// nothing is undefined); points whose OU has no model count the model's
/// implicit 0 prediction as 100% error.
pub fn mape_pct(models: &OuModelSet, test: &[OuData]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for d in test {
        for p in &d.points {
            if p.target_ns <= 0.0 {
                continue;
            }
            let predicted = models.predict_ns(&d.name, &p.features).unwrap_or(0.0);
            sum += (p.target_ns - predicted).abs() / p.target_ns * 100.0;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Percentage reduction in error from `baseline` to `improved`
/// (the statistic of Figs. 2 and 11). Positive = improvement.
pub fn error_reduction_pct(baseline_us: f64, improved_us: f64) -> f64 {
    if baseline_us <= 0.0 {
        return 0.0;
    }
    (baseline_us - improved_us) / baseline_us * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;

    fn linear_ou(name: &str, n: usize, noise: f64) -> OuData {
        let mut d = OuData::new(name);
        for i in 0..n {
            let f = (i % 64) as f64;
            let jitter = ((i * 37) % 11) as f64 * noise;
            d.points.push(LabeledPoint {
                features: vec![f],
                target_ns: 1000.0 + 500.0 * f + jitter,
                template: (i % 3) as u32,
            });
        }
        d
    }

    #[test]
    fn trained_models_predict_well() {
        let data = vec![linear_ou("scan", 500, 0.0), linear_ou("filter", 300, 0.0)];
        let models = OuModelSet::train(ModelKind::Forest, 1, &data);
        assert_eq!(models.ou_names(), vec!["filter", "scan"]);
        let err = avg_abs_error_per_template_us(&models, &data);
        assert!(err < 1.0, "training error should be tiny: {err} us");
    }

    #[test]
    fn unknown_ou_counts_full_error() {
        let train = vec![linear_ou("scan", 100, 0.0)];
        let models = OuModelSet::train(ModelKind::Ridge, 1, &train);
        let test = vec![linear_ou("mystery", 10, 0.0)];
        let err = avg_abs_error_per_template_us(&models, &test);
        assert!(err > 1.0, "no model → predicts 0 → large error");
    }

    #[test]
    fn per_template_averaging_weights_templates_equally() {
        // Template 0: huge errors, 1 point. Template 1: zero error, 99 pts.
        let mut d = OuData::new("x");
        d.points.push(LabeledPoint {
            features: vec![0.0],
            target_ns: 1_000_000.0,
            template: 0,
        });
        for _ in 0..99 {
            d.points.push(LabeledPoint {
                features: vec![1.0],
                target_ns: 0.0,
                template: 1,
            });
        }
        // Model that always predicts 0: train on empty-ish... use unknown OU.
        let models = OuModelSet::train(ModelKind::Ridge, 1, &[]);
        let err = avg_abs_error_per_template_us(&models, &[d]);
        // Per-template: (1e6 ns, 0 ns) → mean 5e5 ns = 500 µs.
        assert!((err - 500.0).abs() < 1e-6, "{err}");
    }

    #[test]
    fn cross_validation_runs_and_is_reasonable() {
        let data = vec![linear_ou("scan", 400, 1.0)];
        let err = cross_validated_error_us(ModelKind::Forest, 2, &data, 5);
        assert!(err < 2.0, "cv error {err} us");
    }

    #[test]
    fn mape_is_scale_free_and_skips_zero_targets() {
        let train = vec![linear_ou("scan", 200, 0.0)];
        let models = OuModelSet::train(ModelKind::Ridge, 1, &train);
        let err = mape_pct(&models, &train);
        assert!(err < 1.0, "training MAPE should be tiny: {err}%");
        // No model for this OU → predicts 0 → 100% error per point.
        let unknown = vec![linear_ou("mystery", 10, 0.0)];
        let err = mape_pct(&models, &unknown);
        assert!((err - 100.0).abs() < 1e-9, "{err}");
        // Zero-target points are skipped, not divided by.
        let mut zeros = OuData::new("scan");
        zeros.points.push(LabeledPoint {
            features: vec![1.0],
            target_ns: 0.0,
            template: 0,
        });
        assert_eq!(mape_pct(&models, &[zeros]), 0.0);
    }

    #[test]
    fn error_reduction_math() {
        assert!((error_reduction_pct(100.0, 2.0) - 98.0).abs() < 1e-9);
        assert!(error_reduction_pct(100.0, 150.0) < 0.0);
        assert_eq!(error_reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn retrain_ou_replaces_model() {
        let mut models = OuModelSet::train(ModelKind::Ridge, 1, &[linear_ou("scan", 50, 0.0)]);
        let before = models.predict_ns("scan", &[10.0]).unwrap();
        // Retrain with doubled targets.
        let mut d = linear_ou("scan", 50, 0.0);
        for p in &mut d.points {
            p.target_ns *= 2.0;
        }
        models.retrain_ou(&d);
        let after = models.predict_ns("scan", &[10.0]).unwrap();
        assert!(after > 1.5 * before);
    }
}
