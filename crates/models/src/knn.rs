//! k-nearest-neighbor regression.
//!
//! Features are min-max normalized per dimension so distances are
//! comparable across feature scales (tuple counts vs. byte counts).
//! Predictions average the k nearest training targets.

use crate::Regressor;

/// kNN regressor.
#[derive(Debug)]
pub struct Knn {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    lo: Vec<f64>,
    span: Vec<f64>,
}

impl Knn {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Knn {
            k,
            x: Vec::new(),
            y: Vec::new(),
            lo: Vec::new(),
            span: Vec::new(),
        }
    }

    fn normalize(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(i, v)| {
                let lo = self.lo.get(i).copied().unwrap_or(0.0);
                let span = self.span.get(i).copied().unwrap_or(1.0);
                (v - lo) / span
            })
            .collect()
    }
}

impl Regressor for Knn {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        self.x.clear();
        self.y = y.to_vec();
        if x.is_empty() {
            return;
        }
        let d = x[0].len();
        self.lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for row in x {
            for i in 0..d {
                self.lo[i] = self.lo[i].min(row[i]);
                hi[i] = hi[i].max(row[i]);
            }
        }
        self.span = (0..d)
            .map(|i| {
                let s = hi[i] - self.lo[i];
                if s.abs() < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        self.x = x.iter().map(|r| self.normalize(r)).collect();
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.x.is_empty() {
            return 0.0;
        }
        let q = self.normalize(x);
        // Track the k smallest distances with a simple bounded insertion —
        // k is tiny (≤ 10), so this beats a heap in practice.
        let mut best: Vec<(f64, f64)> = Vec::with_capacity(self.k + 1);
        for (row, &target) in self.x.iter().zip(&self.y) {
            let d2: f64 = row.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
            let pos = best.partition_point(|(d, _)| *d <= d2);
            if pos < self.k {
                best.insert(pos, (d2, target));
                best.truncate(self.k);
            }
        }
        best.iter().map(|(_, t)| t).sum::<f64>() / best.len() as f64
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbors_dominate() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| (i * 10) as f64).collect();
        let mut m = Knn::new(3);
        m.fit(&x, &y);
        // Near x=50 the 3 neighbors are 49,50,51 → mean 500.
        assert!((m.predict(&[50.0]) - 500.0).abs() < 1e-9);
        // Extrapolation clamps to the boundary neighborhood.
        assert!((m.predict(&[1000.0]) - 980.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_balances_feature_scales() {
        // Feature 0 in [0,1], feature 1 in [0, 1e6]; target depends only
        // on feature 0. Without normalization, feature 1 would dominate.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i * 977) % 1_000_000) as f64;
            x.push(vec![a, b]);
            y.push(a * 100.0);
        }
        let mut m = Knn::new(5);
        m.fit(&x, &y);
        assert!((m.predict(&[1.0, 500.0]) - 100.0).abs() < 1.0);
        assert!((m.predict(&[0.0, 999_000.0])).abs() < 1.0);
    }

    #[test]
    fn k_larger_than_dataset_is_fine() {
        let mut m = Knn::new(10);
        m.fit(&[vec![1.0], vec![2.0]], &[10.0, 20.0]);
        assert!((m.predict(&[1.5]) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let mut m = Knn::new(3);
        m.fit(&[], &[]);
        assert_eq!(m.predict(&[5.0]), 0.0);
    }
}
