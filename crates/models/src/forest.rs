//! Random-forest regression from scratch.
//!
//! Bagged CART trees: each tree trains on a bootstrap sample, splits
//! greedily on the (feature, threshold) that minimizes weighted child
//! variance, considers a random subset of features per split, and stops
//! at `max_depth` or `min_leaf`. Prediction averages tree outputs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Regressor;

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// The forest.
#[derive(Debug)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    min_leaf: usize,
    seed: u64,
    trees: Vec<Node>,
}

impl RandomForest {
    pub fn new(n_trees: usize, max_depth: usize, min_leaf: usize, seed: u64) -> Self {
        RandomForest {
            n_trees,
            max_depth,
            min_leaf,
            seed,
            trees: Vec::new(),
        }
    }

    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

fn mean(idx: &[usize], y: &[f64]) -> f64 {
    if idx.is_empty() {
        0.0
    } else {
        idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
    }
}

fn sse(idx: &[usize], y: &[f64]) -> f64 {
    let m = mean(idx, y);
    idx.iter().map(|&i| (y[i] - m).powi(2)).sum()
}

fn build(
    idx: &[usize],
    x: &[Vec<f64>],
    y: &[f64],
    depth: usize,
    max_depth: usize,
    min_leaf: usize,
    rng: &mut StdRng,
) -> Node {
    if depth >= max_depth || idx.len() < 2 * min_leaf {
        return Node::Leaf(mean(idx, y));
    }
    let n_features = x[idx[0]].len();
    if n_features == 0 {
        return Node::Leaf(mean(idx, y));
    }
    // Feature subsample: ~sqrt(d), at least 1.
    let m = ((n_features as f64).sqrt().ceil() as usize).clamp(1, n_features);
    let mut candidates: Vec<usize> = (0..n_features).collect();
    for i in 0..m {
        let j = rng.random_range(i..n_features);
        candidates.swap(i, j);
    }
    candidates.truncate(m);

    let parent_sse = sse(idx, y);
    let mut best = best_split(idx, x, y, &candidates, parent_sse, min_leaf);
    if best.is_none() && m < n_features {
        // The sampled features may all be constant on this node (e.g. a
        // clock-speed context feature); falling back to the full feature
        // set prevents the tree from collapsing into a global-mean leaf.
        let all: Vec<usize> = (0..n_features).collect();
        best = best_split(idx, x, y, &all, parent_sse, min_leaf);
    }
    let Some((feature, threshold, _)) = best else {
        return Node::Leaf(mean(idx, y));
    };
    let (mut li, mut ri): (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
    for &i in idx {
        if x[i][feature] <= threshold {
            li.push(i);
        } else {
            ri.push(i);
        }
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(&li, x, y, depth + 1, max_depth, min_leaf, rng)),
        right: Box::new(build(&ri, x, y, depth + 1, max_depth, min_leaf, rng)),
    }
}

/// Best (feature, threshold, gain) over the candidate features, or `None`
/// when no split beats the parent.
fn best_split(
    idx: &[usize],
    x: &[Vec<f64>],
    y: &[f64],
    candidates: &[usize],
    parent_sse: f64,
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let mut best: Option<(usize, f64, f64)> = None;
    for &f in candidates {
        // Candidate thresholds: midpoints of sorted unique values
        // (subsampled for speed on large leaves).
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let stride = (vals.len() / 16).max(1);
        for w in vals.windows(2).step_by(stride) {
            let t = (w[0] + w[1]) / 2.0;
            let (mut ln, mut ls, mut lss, mut rn, mut rs, mut rss) =
                (0usize, 0.0f64, 0.0f64, 0usize, 0.0f64, 0.0f64);
            for &i in idx {
                if x[i][f] <= t {
                    ln += 1;
                    ls += y[i];
                    lss += y[i] * y[i];
                } else {
                    rn += 1;
                    rs += y[i];
                    rss += y[i] * y[i];
                }
            }
            if ln < min_leaf || rn < min_leaf {
                continue;
            }
            let child_sse = (lss - ls * ls / ln as f64) + (rss - rs * rs / rn as f64);
            let gain = parent_sse - child_sse;
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                best = Some((f, t, gain));
            }
        }
    }
    best
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let idx: Vec<usize> = (0..x.len()).map(|_| rng.random_range(0..x.len())).collect();
            self.trees.push(build(
                &idx,
                x,
                y,
                0,
                self.max_depth,
                self.min_leaf,
                &mut rng,
            ));
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "random_forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, f: impl Fn(f64, f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 50) as f64;
            let b = ((i * 7) % 31) as f64;
            x.push(vec![a, b]);
            y.push(f(a, b));
        }
        (x, y)
    }

    #[test]
    fn learns_linear_function() {
        let (x, y) = gen(600, |a, b| 100.0 + 12.0 * a + 3.0 * b);
        let mut rf = RandomForest::new(16, 10, 2, 7);
        rf.fit(&x, &y);
        let mut max_rel = 0.0f64;
        for (xi, yi) in x.iter().zip(&y).step_by(17) {
            let p = rf.predict(xi);
            max_rel = max_rel.max((p - yi).abs() / yi.abs().max(1.0));
        }
        assert!(max_rel < 0.12, "relative error {max_rel}");
    }

    #[test]
    fn learns_nonlinear_interaction() {
        let (x, y) = gen(800, |a, b| a * b + 5.0 * a);
        let mut rf = RandomForest::new(24, 12, 2, 3);
        rf.fit(&x, &y);
        let mean_y = y.iter().sum::<f64>() / y.len() as f64;
        let sse_model: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (rf.predict(xi) - yi).powi(2))
            .sum();
        let sse_mean: f64 = y.iter().map(|yi| (yi - mean_y).powi(2)).sum();
        assert!(
            sse_model < 0.1 * sse_mean,
            "R^2 too low: {}",
            1.0 - sse_model / sse_mean
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let (x, y) = gen(200, |a, b| a + b);
        let mut a = RandomForest::new(8, 8, 2, 42);
        let mut b = RandomForest::new(8, 8, 2, 42);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for xi in x.iter().step_by(13) {
            assert_eq!(a.predict(xi), b.predict(xi));
        }
    }

    #[test]
    fn constant_target_yields_constant_prediction() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 50];
        let mut rf = RandomForest::new(4, 6, 2, 1);
        rf.fit(&x, &y);
        assert!((rf.predict(&[25.0]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let mut rf = RandomForest::new(4, 6, 2, 1);
        rf.fit(&[], &[]);
        assert_eq!(rf.predict(&[1.0]), 0.0);
        assert!(!rf.is_fitted());
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::Regressor;

    /// Regression test for a real bug: when the per-node feature subsample
    /// landed only on constant features (e.g. a hardware-context column),
    /// the whole tree collapsed into a single global-mean leaf, inflating
    /// predictions for small inputs by orders of magnitude.
    #[test]
    fn constant_features_do_not_collapse_trees() {
        // Two informative features + two constant context features,
        // heavily skewed targets (like OU datasets: most points small,
        // a few sweep points huge).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let rows = if i % 8 == 0 { 2048.0 } else { 1.0 };
            x.push(vec![rows, rows * 88.0, 1.0, 2.1]);
            y.push(rows * 13_000.0);
        }
        let mut rf = RandomForest::new(24, 10, 4, 42);
        rf.fit(&x, &y);
        let small = rf.predict(&[1.0, 88.0, 1.0, 2.1]);
        assert!(
            (small - 13_000.0).abs() / 13_000.0 < 0.25,
            "prediction at the small cluster must not drift toward the \
             global mean: got {small}"
        );
    }
}
