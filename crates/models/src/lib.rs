//! # tscout-models — OU behavior models
//!
//! The paper's behavior models (ModelBot2-style, [29]) map an operating
//! unit's *input features* to its *output metrics* — primarily elapsed
//! execution time. This crate provides the model substrate the
//! reproduction's accuracy experiments (Figs. 2, 7, 9–12) run on:
//!
//! * [`forest::RandomForest`] — the default regressor: bagged CART trees
//!   with variance-reduction splits and feature subsampling;
//! * [`linreg::Ridge`] — ridge regression via normal equations;
//! * [`knn::Knn`] — k-nearest-neighbor regression;
//! * [`dataset`] — labeled per-OU datasets with query-template tags,
//!   train/test splits, and k-fold cross-validation;
//! * [`eval`] — the paper's accuracy statistic: **average absolute error
//!   per query template**, plus error-reduction percentages and MAPE;
//! * [`ingest`] — streaming dataset construction from the training-data
//!   archive (`tscout-archive`);
//! * [`registry`] — generation-counted, accuracy-gated model hot-swap.
//!
//! Models are deterministic for a fixed seed.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod dataset;
pub mod eval;
pub mod forest;
pub mod ingest;
pub mod knn;
pub mod linreg;
pub mod registry;

pub use dataset::{kfold, LabeledPoint, OuData};
pub use eval::{avg_abs_error_per_template_us, error_reduction_pct, mape_pct, OuModelSet};
pub use forest::RandomForest;
pub use ingest::{datasets_from_archive, ou_data_from_archive};
pub use knn::Knn;
pub use linreg::Ridge;
pub use registry::{LiveModel, ModelRegistry, SwapDecision};

/// A trained regression model.
pub trait Regressor: std::fmt::Debug + Send + Sync {
    /// Fit on rows of `(features, target)`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);
    /// Predict one target.
    fn predict(&self, x: &[f64]) -> f64;
    /// Model family name (reporting).
    fn name(&self) -> &'static str;
}

/// Model families available to the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    Forest,
    Ridge,
    Knn,
}

impl ModelKind {
    /// Instantiate with default hyperparameters.
    pub fn build(self, seed: u64) -> Box<dyn Regressor> {
        match self {
            ModelKind::Forest => Box::new(RandomForest::new(24, 10, 4, seed)),
            ModelKind::Ridge => Box::new(Ridge::new(1e-3)),
            ModelKind::Knn => Box::new(Knn::new(5)),
        }
    }
}
