//! Ridge regression via the normal equations.
//!
//! Solves `(XᵀX + λI) w = Xᵀy` with Gaussian elimination (partial
//! pivoting) on the small `(d+1)×(d+1)` system — feature counts here are
//! single digits, so dense is exact and cheap. A bias column is appended
//! automatically.

use crate::Regressor;

/// Ridge linear regression.
#[derive(Debug)]
pub struct Ridge {
    lambda: f64,
    /// Learned weights, bias last. Empty until fitted.
    pub weights: Vec<f64>,
}

impl Ridge {
    pub fn new(lambda: f64) -> Self {
        Ridge {
            lambda,
            weights: Vec::new(),
        }
    }
}

/// Solve `A x = b` in place; returns `None` for singular systems.
#[allow(clippy::needless_range_loop)] // index symmetry is clearer here
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

impl Regressor for Ridge {
    #[allow(clippy::needless_range_loop)] // symmetric matrix fill
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        self.weights.clear();
        if x.is_empty() {
            return;
        }
        let d = x[0].len() + 1; // + bias
                                // Build XᵀX + λI and Xᵀy.
        let mut xtx = vec![vec![0.0; d]; d];
        let mut xty = vec![0.0; d];
        for (row, &target) in x.iter().zip(y) {
            let aug = |i: usize| if i + 1 == d { 1.0 } else { row[i] };
            for i in 0..d {
                for j in i..d {
                    xtx[i][j] += aug(i) * aug(j);
                }
                xty[i] += aug(i) * target;
            }
        }
        for i in 0..d {
            for j in 0..i {
                xtx[i][j] = xtx[j][i];
            }
            xtx[i][i] += self.lambda;
        }
        if let Some(w) = solve(xtx, xty) {
            self.weights = w;
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        let d = self.weights.len();
        let mut acc = self.weights[d - 1]; // bias
        for i in 0..d - 1 {
            acc += self.weights[i] * x.get(i).copied().unwrap_or(0.0);
        }
        acc
    }

    fn name(&self) -> &'static str {
        "ridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_model() {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 + 2.0 * r[0] - 5.0 * r[1]).collect();
        let mut m = Ridge::new(1e-9);
        m.fit(&x, &y);
        assert!((m.weights[0] - 2.0).abs() < 1e-6);
        assert!((m.weights[1] + 5.0).abs() < 1e-6);
        assert!((m.weights[2] - 3.0).abs() < 1e-6);
        assert!((m.predict(&[4.0, 7.0]) - (3.0 + 8.0 - 35.0)).abs() < 1e-6);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 10.0 * r[0]).collect();
        let mut tight = Ridge::new(1e-9);
        tight.fit(&x, &y);
        let mut loose = Ridge::new(1e6);
        loose.fit(&x, &y);
        assert!(loose.weights[0].abs() < tight.weights[0].abs());
    }

    #[test]
    fn singular_system_degrades_gracefully() {
        // Duplicate feature columns with zero lambda would be singular;
        // ridge regularization keeps it solvable.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0).collect();
        let mut m = Ridge::new(1e-6);
        m.fit(&x, &y);
        assert!((m.predict(&[5.0, 5.0]) - 10.0).abs() < 0.1);
    }

    #[test]
    fn empty_fit_predicts_zero() {
        let mut m = Ridge::new(1.0);
        m.fit(&[], &[]);
        assert_eq!(m.predict(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn solver_rejects_truly_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }
}
