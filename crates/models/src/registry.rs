//! Model lifecycle: generation-counted, accuracy-gated hot swap.
//!
//! The paper's pipeline ends with behavior models trained offline from
//! collected data; a self-driving DBMS must *refresh* those models as new
//! training data arrives without ever serving a worse model than the one
//! currently live. [`ModelRegistry`] implements that contract:
//!
//! 1. a candidate [`OuModelSet`] is trained from archived data,
//! 2. both the candidate and the live set are evaluated on the same
//!    holdout (MAPE, scale-free across OUs),
//! 3. the candidate is installed — atomically, under a bumped generation
//!    counter — only if it does not regress beyond the configured
//!    tolerance. Rejected candidates leave the live model and its
//!    generation untouched.
//!
//! Readers take cheap [`Arc`] snapshots ([`ModelRegistry::live`]), so a
//! swap never invalidates an in-flight prediction pass.

use std::sync::Arc;

use tscout_telemetry::Telemetry;

use crate::dataset::OuData;
use crate::eval::{mape_pct, OuModelSet};
use crate::ModelKind;

/// The currently-installed model set plus its provenance.
#[derive(Debug, Clone)]
pub struct LiveModel {
    /// Monotonic install counter; bumps only on an accepted swap.
    pub generation: u64,
    /// The trained per-OU models (shared snapshot).
    pub models: Arc<OuModelSet>,
    /// Holdout MAPE measured when this model was installed, in percent.
    pub holdout_mape_pct: f64,
    /// Number of training points the model was fit on.
    pub trained_points: usize,
}

/// Outcome of one retraining attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapDecision {
    /// Candidate installed; the new generation and its holdout MAPE.
    Accepted {
        generation: u64,
        candidate_mape_pct: f64,
    },
    /// Candidate discarded; live model and generation unchanged.
    Rejected {
        candidate_mape_pct: f64,
        live_mape_pct: f64,
    },
    /// Not enough data to train or evaluate — nothing changed.
    Skipped,
}

/// Generation-counted model registry with an accuracy gate.
#[derive(Debug)]
pub struct ModelRegistry {
    kind: ModelKind,
    seed: u64,
    /// A candidate may be at most this many percentage points worse than
    /// the live model on the shared holdout and still be accepted
    /// (absorbs evaluation noise; 0.0 = strict no-regression).
    pub tolerance_pct: f64,
    live: Option<LiveModel>,
    telemetry: Telemetry,
}

impl ModelRegistry {
    pub fn new(kind: ModelKind, seed: u64, telemetry: Telemetry) -> Self {
        telemetry.gauge_set("model_generation", &[], 0.0);
        ModelRegistry {
            kind,
            seed,
            tolerance_pct: 0.0,
            live: None,
            telemetry,
        }
    }

    /// Snapshot of the live model, if one has been installed.
    pub fn live(&self) -> Option<LiveModel> {
        self.live.clone()
    }

    /// Current generation (0 until the first accepted swap).
    pub fn generation(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.generation)
    }

    /// Predict via the live model; `None` when no model is installed or
    /// the OU has never been seen.
    pub fn predict_ns(&self, ou: &str, features: &[f64]) -> Option<f64> {
        self.live.as_ref()?.models.predict_ns(ou, features)
    }

    /// Train a candidate on `train`, gate it on `holdout`, and hot-swap
    /// if it does not regress beyond `tolerance_pct`.
    ///
    /// The live model is re-evaluated on the *same* holdout so the
    /// comparison tracks the current data distribution, not the one the
    /// live model happened to be installed under.
    pub fn retrain_from(&mut self, train: &[OuData], holdout: &[OuData]) -> SwapDecision {
        let trained_points: usize = train.iter().map(super::dataset::OuData::len).sum();
        let holdout_points: usize = holdout.iter().map(super::dataset::OuData::len).sum();
        if trained_points == 0 || holdout_points == 0 {
            return SwapDecision::Skipped;
        }
        let candidate = OuModelSet::train(self.kind, self.seed, train);
        let candidate_mape = mape_pct(&candidate, holdout);
        let live_mape = self.live.as_ref().map(|l| mape_pct(&l.models, holdout));
        let accept = match live_mape {
            None => true, // first model: nothing to regress against
            Some(live) => candidate_mape <= live + self.tolerance_pct,
        };
        if !accept {
            self.telemetry.counter_inc("model_swap_rejected_total", &[]);
            return SwapDecision::Rejected {
                candidate_mape_pct: candidate_mape,
                live_mape_pct: live_mape.unwrap_or(f64::INFINITY),
            };
        }
        let generation = self.generation() + 1;
        self.live = Some(LiveModel {
            generation,
            models: Arc::new(candidate),
            holdout_mape_pct: candidate_mape,
            trained_points,
        });
        self.telemetry.counter_inc("model_swap_accepted_total", &[]);
        self.telemetry
            .gauge_set("model_generation", &[], generation as f64);
        self.telemetry
            .gauge_set("model_holdout_mape_pct", &[], candidate_mape);
        self.telemetry
            .gauge_set("model_trained_points", &[], trained_points as f64);
        SwapDecision::Accepted {
            generation,
            candidate_mape_pct: candidate_mape,
        }
    }

    /// Convenience: split each OU's data into train/holdout by position
    /// (every `holdout_every`-th point held out, deterministic — no
    /// shuffle, so the holdout leans recent the way arrival order does)
    /// and call [`Self::retrain_from`].
    pub fn retrain_split(&mut self, data: &[OuData], holdout_every: usize) -> SwapDecision {
        let every = holdout_every.max(2);
        let mut train = Vec::with_capacity(data.len());
        let mut holdout = Vec::with_capacity(data.len());
        for d in data {
            let mut tr = OuData::new(&d.name);
            let mut ho = OuData::new(&d.name);
            for (i, p) in d.points.iter().enumerate() {
                if (i + 1) % every == 0 {
                    ho.points.push(p.clone());
                } else {
                    tr.points.push(p.clone());
                }
            }
            train.push(tr);
            holdout.push(ho);
        }
        self.retrain_from(&train, &holdout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledPoint;

    fn linear_ou(name: &str, n: usize, slope: f64) -> OuData {
        let mut d = OuData::new(name);
        for i in 0..n {
            let f = (i % 64) as f64;
            d.points.push(LabeledPoint {
                features: vec![f],
                target_ns: 1000.0 + slope * f,
                template: (i % 3) as u32,
            });
        }
        d
    }

    #[test]
    fn first_retrain_installs_generation_one() {
        let t = Telemetry::new();
        let mut reg = ModelRegistry::new(ModelKind::Ridge, 1, t.clone());
        assert_eq!(reg.generation(), 0);
        assert!(reg.predict_ns("scan", &[1.0]).is_none());
        let d = vec![linear_ou("scan", 200, 500.0)];
        let decision = reg.retrain_split(&d, 5);
        assert!(matches!(
            decision,
            SwapDecision::Accepted { generation: 1, .. }
        ));
        assert_eq!(reg.generation(), 1);
        assert!(reg.predict_ns("scan", &[10.0]).is_some());
        assert_eq!(t.counter_value("model_swap_accepted_total", &[]), 1);
        assert_eq!(t.gauge_value("model_generation", &[]), 1.0);
    }

    #[test]
    fn regressed_candidate_is_rejected_and_generation_unchanged() {
        let t = Telemetry::new();
        let mut reg = ModelRegistry::new(ModelKind::Ridge, 1, t.clone());
        let good = vec![linear_ou("scan", 200, 500.0)];
        reg.retrain_split(&good, 5);
        let live_before = reg.live().unwrap();

        // Candidate trained on garbage labels, gated on a clean holdout.
        let mut garbage = linear_ou("scan", 200, 500.0);
        for p in &mut garbage.points {
            p.target_ns = 1.0;
        }
        let holdout = vec![linear_ou("scan", 60, 500.0)];
        let decision = reg.retrain_from(&[garbage], &holdout);
        assert!(matches!(decision, SwapDecision::Rejected { .. }));
        assert_eq!(reg.generation(), 1);
        assert_eq!(t.counter_value("model_swap_rejected_total", &[]), 1);
        assert_eq!(t.gauge_value("model_generation", &[]), 1.0);
        // Live snapshot is the same installed model.
        assert!(Arc::ptr_eq(
            &reg.live().unwrap().models,
            &live_before.models
        ));

        // A good candidate still gets through afterwards.
        let decision = reg.retrain_from(&good, &holdout);
        assert!(matches!(
            decision,
            SwapDecision::Accepted { generation: 2, .. }
        ));
        assert_eq!(reg.generation(), 2);
    }

    #[test]
    fn empty_data_is_skipped() {
        let mut reg = ModelRegistry::new(ModelKind::Ridge, 1, Telemetry::new());
        assert_eq!(reg.retrain_from(&[], &[]), SwapDecision::Skipped);
        let empty = vec![OuData::new("scan")];
        assert_eq!(reg.retrain_split(&empty, 5), SwapDecision::Skipped);
        assert_eq!(reg.generation(), 0);
    }

    #[test]
    fn tolerance_admits_small_regressions() {
        let t = Telemetry::new();
        let mut reg = ModelRegistry::new(ModelKind::Ridge, 1, t);
        reg.tolerance_pct = 200.0; // absurdly lax gate
        let good = vec![linear_ou("scan", 200, 500.0)];
        reg.retrain_split(&good, 5);
        let mut noisy = linear_ou("scan", 200, 500.0);
        for p in &mut noisy.points {
            p.target_ns *= 1.5; // consistently off, but within tolerance
        }
        let holdout = vec![linear_ou("scan", 60, 500.0)];
        let decision = reg.retrain_from(&[noisy], &holdout);
        assert!(matches!(
            decision,
            SwapDecision::Accepted { generation: 2, .. }
        ));
    }
}
