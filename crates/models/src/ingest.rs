//! Streaming dataset ingestion from the training-data archive.
//!
//! The archive's scans yield samples one block at a time; this module
//! folds them straight into per-OU [`OuData`] without ever holding the
//! raw byte form and the decoded form of the whole archive at once —
//! the memory high-water mark is one decoded block plus the datasets
//! being built. Context features are appended exactly like the driver's
//! `build_datasets` (paper §2.2: the CPU clock in GHz and the number of
//! concurrent workers are the only environment descriptors).

use std::collections::BTreeMap;

use tscout_archive::{Archive, Sample};

use crate::dataset::{LabeledPoint, OuData};

/// Convert one archived sample into a labeled point with the two
/// context features appended.
pub fn labeled_point(s: &Sample, clock_ghz: f64, concurrency: usize) -> LabeledPoint {
    let mut features = s.features.clone();
    features.push(clock_ghz);
    features.push(concurrency as f64);
    LabeledPoint {
        features,
        target_ns: s.elapsed_ns as f64,
        template: s.template,
    }
}

/// Stream every archived sample into per-OU datasets (ordered by OU
/// name, like the driver's `build_datasets`).
pub fn datasets_from_archive(archive: &Archive, clock_ghz: f64, concurrency: usize) -> Vec<OuData> {
    let mut by_ou: BTreeMap<String, OuData> = BTreeMap::new();
    for s in archive.scan_all() {
        let d = by_ou
            .entry(s.ou_name.clone())
            .or_insert_with(|| OuData::new(&s.ou_name));
        d.points.push(labeled_point(&s, clock_ghz, concurrency));
    }
    by_ou.into_values().collect()
}

/// Stream one OU's archived samples into a dataset.
pub fn ou_data_from_archive(
    archive: &Archive,
    ou_name: &str,
    clock_ghz: f64,
    concurrency: usize,
) -> OuData {
    let mut d = OuData::new(ou_name);
    for s in archive.scan_ou(ou_name) {
        d.points.push(labeled_point(&s, clock_ghz, concurrency));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscout_archive::ArchiveOptions;
    use tscout_telemetry::Telemetry;

    fn sample(ou: u16, name: &str, i: u64) -> Sample {
        Sample {
            ou,
            ou_name: name.to_string(),
            subsystem: 0,
            tid: 1,
            template: (i % 3) as u32,
            start_ns: i * 100,
            elapsed_ns: 500 + i,
            metrics: vec![i],
            features: vec![i as f64, 2.0 * i as f64],
            user_metrics: vec![],
        }
    }

    #[test]
    fn archive_streams_into_datasets_with_context_features() {
        let dir = std::env::temp_dir().join(format!("tscout_ingest_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut a = Archive::open(&dir, ArchiveOptions::default(), Telemetry::new()).unwrap();
        for i in 0..60 {
            a.append(sample(
                (i % 2) as u16,
                ["scan", "sort"][(i % 2) as usize],
                i,
            ))
            .unwrap();
        }
        a.seal().unwrap();
        let data = datasets_from_archive(&a, 2.1, 4);
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].name, "scan");
        assert_eq!(data[0].len() + data[1].len(), 60);
        let p = &data[0].points[1]; // sample i=2
        assert_eq!(p.features, vec![2.0, 4.0, 2.1, 4.0]);
        assert_eq!(p.target_ns, 502.0);
        assert_eq!(p.template, 2);
        let scan_only = ou_data_from_archive(&a, "scan", 2.1, 4);
        assert_eq!(scan_only.points, data[0].points);
        std::fs::remove_dir_all(&dir).ok();
    }
}
