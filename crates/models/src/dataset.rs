//! Labeled per-OU datasets.
//!
//! Each training point pairs an OU's input features with its measured
//! elapsed time, tagged with the *query template* that produced it. The
//! paper evaluates accuracy per template ("we measure the absolute error
//! for each query template and then compute the average", §6), holds out
//! templates for the new-queries scenario (§6.6), and uses 5-fold
//! cross-validation throughout.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One labeled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    pub features: Vec<f64>,
    /// Target: elapsed nanoseconds.
    pub target_ns: f64,
    /// Query template that generated the sample (0 = background work).
    pub template: u32,
}

/// All samples for one OU.
#[derive(Debug, Clone, Default)]
pub struct OuData {
    pub name: String,
    pub points: Vec<LabeledPoint>,
}

impl OuData {
    pub fn new(name: &str) -> Self {
        OuData {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Feature/target matrices for fitting.
    pub fn matrices(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            self.points.iter().map(|p| p.features.clone()).collect(),
            self.points.iter().map(|p| p.target_ns).collect(),
        )
    }

    /// Distinct templates present.
    pub fn templates(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self.points.iter().map(|p| p.template).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Split by template membership: `(in_set, out_of_set)`.
    pub fn split_by_templates(&self, holdout: &[u32]) -> (OuData, OuData) {
        let mut kept = OuData::new(&self.name);
        let mut held = OuData::new(&self.name);
        for p in &self.points {
            if holdout.contains(&p.template) {
                held.points.push(p.clone());
            } else {
                kept.points.push(p.clone());
            }
        }
        (kept, held)
    }

    /// Deterministic subsample of at most `n` points.
    pub fn sample(&self, n: usize, seed: u64) -> OuData {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.points.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        OuData {
            name: self.name.clone(),
            points: idx.into_iter().map(|i| self.points[i].clone()).collect(),
        }
    }

    /// Merge another dataset of the same OU into this one.
    pub fn extend_from(&mut self, other: &OuData) {
        debug_assert_eq!(self.name, other.name);
        self.points.extend(other.points.iter().cloned());
    }
}

/// K-fold split: returns `k` (train, test) pairs.
pub fn kfold(data: &OuData, k: usize, seed: u64) -> Vec<(OuData, OuData)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..data.points.len()).collect();
    idx.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let mut train = OuData::new(&data.name);
        let mut test = OuData::new(&data.name);
        for (i, &p) in idx.iter().enumerate() {
            if i % k == f {
                test.points.push(data.points[p].clone());
            } else {
                train.points.push(data.points[p].clone());
            }
        }
        folds.push((train, test));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> OuData {
        let mut d = OuData::new("scan");
        for i in 0..n {
            d.points.push(LabeledPoint {
                features: vec![i as f64],
                target_ns: (i * 10) as f64,
                template: (i % 4) as u32,
            });
        }
        d
    }

    #[test]
    fn kfold_partitions_everything_exactly_once() {
        let d = data(103);
        let folds = kfold(&d, 5, 1);
        assert_eq!(folds.len(), 5);
        let total_test: usize = folds.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total_test, 103);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            assert!(test.len() >= 20);
        }
    }

    #[test]
    fn kfold_is_deterministic() {
        let d = data(50);
        let a = kfold(&d, 5, 9);
        let b = kfold(&d, 5, 9);
        assert_eq!(a[0].1.points, b[0].1.points);
    }

    #[test]
    fn template_split() {
        let d = data(40);
        assert_eq!(d.templates(), vec![0, 1, 2, 3]);
        let (train, held) = d.split_by_templates(&[3]);
        assert_eq!(held.len(), 10);
        assert_eq!(train.len(), 30);
        assert!(held.points.iter().all(|p| p.template == 3));
    }

    #[test]
    fn sample_bounds_and_determinism() {
        let d = data(100);
        let s = d.sample(10, 3);
        assert_eq!(s.len(), 10);
        assert_eq!(s.points, d.sample(10, 3).points);
        assert_eq!(d.sample(1000, 3).len(), 100);
    }

    #[test]
    fn matrices_shape() {
        let d = data(7);
        let (x, y) = d.matrices();
        assert_eq!(x.len(), 7);
        assert_eq!(y.len(), 7);
        assert_eq!(x[3], vec![3.0]);
        assert_eq!(y[3], 30.0);
    }
}
