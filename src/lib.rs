//! # tscout-suite — the TScout reproduction, in one import
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`kernel`] (`tscout-kernel`) — the simulated OS substrate;
//! * [`bpf`] (`tscout-bpf`) — the BPF-style VM, verifier, and maps;
//! * [`tscout`] — the TScout framework itself (the paper's contribution);
//! * [`noisetap`] — the NoisePage-style DBMS substrate;
//! * [`archive`] (`tscout-archive`) — the columnar per-OU training-data
//!   archive (segments, compaction, crash recovery);
//! * [`models`] (`tscout-models`) — OU behavior models plus the
//!   generation-counted model registry;
//! * [`workloads`] (`tscout-workloads`) — YCSB/SmallBank/TATP/TPC-C/
//!   CH-benCHmark, offline runners, and the virtual-time driver;
//! * [`telemetry`] (`tscout-telemetry`) — the self-telemetry layer
//!   (metrics registry, span tracing, snapshot export);
//! * [`actions`] (`tscout-actions`) — the autonomous action engine that
//!   closes the self-driving loop (policies, guardrails, follow-ups);
//! * [`obsd`] (`tscout-obsd`) — the operator plane: an embedded HTTP
//!   daemon serving live OpenMetrics/JSON views of a running pipeline,
//!   plus the `tscoutctl` CLI;
//! * [`rng`] (`tscout-rng`) — the in-workspace deterministic RNG that
//!   backs the `rand` alias.
//!
//! See `examples/quickstart.rs` for the fastest path to collecting
//! training data, and the `tscout-bench` binaries for the paper's
//! figures.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub use noisetap;
pub use tscout;
pub use tscout_actions as actions;
pub use tscout_archive as archive;
pub use tscout_bpf as bpf;
pub use tscout_kernel as kernel;
pub use tscout_models as models;
pub use tscout_obsd as obsd;
pub use tscout_rng as rng;
pub use tscout_telemetry as telemetry;
pub use tscout_workloads as workloads;
