//! Lineage-tracing integration tests: a traced run reconstructs full
//! marker→archive→model journeys, per-stage timestamps are monotone in
//! virtual time, the accounting invariant holds, and — the overriding
//! constraint — tracing never perturbs the collected samples.

use tscout_suite::archive::ArchiveOptions;
use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::models::ModelKind;
use tscout_suite::noisetap::Database;
use tscout_suite::tscout::{CollectionMode, TrainingPoint, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::{run, run_with_lifecycle, ModelLifecycle, RunOptions};
use tscout_suite::workloads::{Workload, Ycsb};

fn fresh(seed: u64) -> Database {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), seed);
    k.noise_frac = 0.0;
    Database::new(k)
}

/// Attach with 100% sampling and a ring large enough that the Processor
/// keeps up — no overwrites, so the sample stream is insensitive to
/// Processor-side scheduling (tracing charges land there).
fn attach_traced(db: &mut Database, trace_every: u64) {
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = 1 << 20;
    cfg.trace_every = trace_every;
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("trace_lineage_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn traced_lifecycle_run_reconstructs_full_lineage() {
    let dir = tmp_dir("full");
    let mut db = fresh(0x11AE);
    let mut w = Ycsb::new(3_000);
    w.setup(&mut db);
    attach_traced(&mut db, 64);
    let mut lc = ModelLifecycle::new(
        &dir,
        ArchiveOptions::default(),
        ModelKind::Ridge,
        5,
        40e6,
        db.kernel.telemetry.clone(),
    )
    .unwrap();
    let stats = run_with_lifecycle(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 200e6,
            seed: 0x11AE,
            ..Default::default()
        },
        &mut lc,
    );
    assert!(stats.retrains >= 1, "lifecycle must retrain at least once");

    let st = db.kernel.telemetry.trace_stats();
    assert!(st.started >= 1, "1/64 sampling must start traces");
    assert!(
        st.closes(),
        "accounting must close: started={} completed={} dropped={} in_flight={}",
        st.started,
        st.completed,
        st.dropped,
        st.in_flight
    );

    // At least one delivered trace must carry the full 8-stage lineage
    // (marker → ring → drain → sink → memtable → seal → dataset →
    // model generation), and every completed trace must be monotone.
    let (full, total) = db.kernel.telemetry.with_registry(|r| {
        let mut full = 0usize;
        let mut total = 0usize;
        for t in r.tracer().completed_iter() {
            total += 1;
            assert!(
                t.timestamps_monotone(),
                "trace {:?} has non-monotone stage timestamps: {:?}",
                t.id,
                t.stages
            );
            let names: Vec<&str> = t.stages.iter().map(|s| s.stage.name()).collect();
            if names
                == [
                    "marker",
                    "ring_buffer",
                    "drain",
                    "sink",
                    "archive_memtable",
                    "segment_seal",
                    "dataset",
                    "model_generation",
                ]
            {
                full += 1;
                assert!(
                    t.model_generation.is_some(),
                    "full lineage must record the model generation"
                );
            }
        }
        (full, total)
    });
    assert!(total >= 1, "must complete at least one trace");
    assert!(
        full >= 1,
        "at least one trace must span marker→model ({total} completed, {full} full)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The paper's bar for self-observation: turning the tracer on must not
/// change a single bit of the training data it observes.
#[test]
fn samples_are_bit_identical_with_tracing_on_and_off() {
    let collect = |trace_every: u64| -> Vec<TrainingPoint> {
        let mut db = fresh(0xB17);
        let mut w = Ycsb::new(3_000);
        w.setup(&mut db);
        attach_traced(&mut db, trace_every);
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 2,
                duration_ns: 120e6,
                seed: 0xB17,
                ..Default::default()
            },
        );
        assert_eq!(stats.samples_dropped, 0, "ring must keep up for this test");
        stats.points
    };
    let off = collect(0);
    let on = collect(64);
    assert!(!off.is_empty());
    assert_eq!(off.len(), on.len(), "tracing changed the sample count");
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a, b, "tracing changed a decoded sample");
        // Belt and braces: the float features must match to the bit.
        for (fa, fb) in a.features.iter().zip(&b.features) {
            assert_eq!(fa.to_bits(), fb.to_bits());
        }
    }
}

/// Losses are traced too: a deliberately tiny ring forces overwrites,
/// and every traced casualty must complete as `lost` with the eviction
/// stamped — accounting still closes exactly.
#[test]
fn lost_samples_complete_as_lost_and_accounting_closes() {
    let mut db = fresh(0x105E);
    let mut w = Ycsb::new(2_000);
    w.setup(&mut db);
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = 64; // force ring pressure
    cfg.trace_every = 8;
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    let stats = run(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 4,
            duration_ns: 60e6,
            seed: 0x105E,
            ..Default::default()
        },
    );
    assert!(stats.samples_dropped > 0, "tiny ring must overwrite");
    let st = db.kernel.telemetry.trace_stats();
    assert!(st.closes(), "accounting must close under ring pressure");
    let lost = db
        .kernel
        .telemetry
        .counter_value("tscout_traces_completed_total", &[("outcome", "lost")]);
    assert!(lost >= 1, "some traced samples must complete as lost");
}
