//! Cross-crate integration tests for the training-data archive and the
//! model lifecycle:
//!
//! 1. a seeded property-style round trip — encode → seal → compact →
//!    scan must return every sample bit-identically, per OU, in append
//!    order, across randomized shapes (vector lengths, float payloads
//!    including NaN, segment rollovers);
//! 2. crash recovery — corrupting the tail segment at every byte offset
//!    must never lose the valid prefix, and recovery is counted;
//! 3. the model hot-swap gate — a regressed candidate is rejected and
//!    the live generation is unchanged; a good one is then accepted.

use tscout_suite::archive::{Archive, ArchiveOptions, Sample};
use tscout_suite::models::dataset::{LabeledPoint, OuData};
use tscout_suite::models::{ModelKind, ModelRegistry, SwapDecision};
use tscout_suite::rng::rngs::StdRng;
use tscout_suite::rng::{RngExt, SeedableRng};
use tscout_suite::telemetry::Telemetry;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tscout_it_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Deterministic pseudo-random sample with awkward shapes: variable
/// vector lengths, full-range values, and occasional NaN features.
fn random_sample(rng: &mut StdRng, ou: u16) -> Sample {
    let n_metrics = rng.random_range(0..6);
    let n_features = rng.random_range(0..5);
    let n_user = rng.random_range(0..3);
    Sample {
        ou,
        ou_name: format!("ou_{ou}"),
        subsystem: (ou % 6) as u8,
        tid: rng.random_range(0..32),
        template: rng.random_range(0..8),
        start_ns: rng.random_range(0..u64::MAX / 2),
        elapsed_ns: rng.random_range(0..10_000_000),
        metrics: (0..n_metrics).map(|_| rng.random()).collect(),
        features: (0..n_features)
            .map(|_| {
                if rng.random_range(0..20) == 0 {
                    f64::NAN
                } else {
                    rng.random::<f64>() * 1e6 - 5e5
                }
            })
            .collect(),
        user_metrics: (0..n_user).map(|_| rng.random()).collect(),
    }
}

#[test]
fn roundtrip_seal_compact_scan_is_bit_identical_per_ou() {
    let dir = temp_dir("roundtrip");
    let opts = ArchiveOptions {
        memtable_flush_samples: 64,
        segment_max_bytes: 16 * 1024, // force many segments
        compact_fanin: 3,
        small_segment_bytes: 64 * 1024,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut expected: std::collections::BTreeMap<u16, Vec<Sample>> = Default::default();
    let mut a = Archive::open(&dir, opts.clone(), Telemetry::new()).unwrap();
    for _ in 0..4_000 {
        let ou = rng.random_range(0..5u16);
        let s = random_sample(&mut rng, ou);
        expected.entry(ou).or_default().push(s.clone());
        a.append(s).unwrap();
    }
    a.seal().unwrap();
    assert!(a.stats().segments > 3, "options must force multi-segment");
    // Compact everything compactable, then verify per-OU order + bits.
    a.compact_now().unwrap();
    for (ou, exp) in &expected {
        let got: Vec<Sample> = a.scan_ou(&format!("ou_{ou}")).collect();
        assert_eq!(got.len(), exp.len(), "ou {ou} sample count");
        for (i, (g, e)) in got.iter().zip(exp).enumerate() {
            assert!(g.bits_eq(e), "ou {ou} sample {i} differs: {g:?} vs {e:?}");
        }
    }
    // A cold reopen sees the identical contents.
    drop(a);
    let a = Archive::open(&dir, opts, Telemetry::new()).unwrap();
    let total: usize = expected.values().map(Vec::len).sum();
    assert_eq!(a.scan_all().count(), total);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_recovers_valid_prefix_at_every_corruption_offset() {
    let dir = temp_dir("torn");
    // Small flush threshold → several blocks in one segment.
    let opts = ArchiveOptions {
        memtable_flush_samples: 25,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut a = Archive::open(&dir, opts.clone(), Telemetry::new()).unwrap();
    for _ in 0..100 {
        a.append(random_sample(&mut rng, 1)).unwrap();
    }
    a.seal().unwrap();
    drop(a);
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .find(|p| p.extension().is_some_and(|x| x == "tsa"))
        .expect("sealed segment on disk");
    let pristine = std::fs::read(&seg).unwrap();

    // Truncate the file at every length from just-past-the-header to
    // full, plus flip a byte at a spread of offsets: reopen must always
    // recover a valid prefix (never error, never return garbage).
    let mut lengths: Vec<usize> = (6..pristine.len()).step_by(97).collect();
    lengths.push(pristine.len() - 1);
    for &len in &lengths {
        std::fs::write(&seg, &pristine[..len]).unwrap();
        let t = Telemetry::new();
        let a = Archive::open(&dir, opts.clone(), t.clone()).unwrap();
        let n = a.scan_all().count();
        assert!(n <= 100, "truncated tail can never add samples");
        assert!(
            t.counter_total("archive_recovered_truncations_total") >= 1,
            "truncation at {len} must be counted"
        );
        drop(a);
        // Recovery rewrites the file; restore the pristine image for the
        // next offset.
        std::fs::write(&seg, &pristine).unwrap();
    }
    for off in (5..pristine.len()).step_by(131) {
        let mut bad = pristine.clone();
        bad[off] ^= 0xFF;
        std::fs::write(&seg, &bad).unwrap();
        let a = Archive::open(&dir, opts.clone(), Telemetry::new()).unwrap();
        let n = a.scan_all().count();
        assert!(n <= 100, "corruption at {off} can never add samples");
        drop(a);
        std::fs::write(&seg, &pristine).unwrap();
    }
    // Pristine file still yields everything.
    let a = Archive::open(&dir, opts, Telemetry::new()).unwrap();
    assert_eq!(a.scan_all().count(), 100);
    std::fs::remove_dir_all(&dir).ok();
}

fn linear_ou(name: &str, n: usize, slope: f64) -> OuData {
    let mut d = OuData::new(name);
    for i in 0..n {
        let f = (i % 64) as f64;
        d.points.push(LabeledPoint {
            features: vec![f],
            target_ns: 1000.0 + slope * f,
            template: (i % 3) as u32,
        });
    }
    d
}

#[test]
fn hot_swap_gate_rejects_regressions_and_keeps_generation() {
    let t = Telemetry::new();
    let mut reg = ModelRegistry::new(ModelKind::Ridge, 1, t.clone());
    let good = vec![linear_ou("scan", 300, 500.0)];
    let holdout = vec![linear_ou("scan", 90, 500.0)];
    assert!(matches!(
        reg.retrain_from(&good, &holdout),
        SwapDecision::Accepted { generation: 1, .. }
    ));

    // A candidate trained on corrupted labels must be rejected: live
    // model, generation, and gauge all unchanged.
    let mut garbage = linear_ou("scan", 300, 500.0);
    for p in &mut garbage.points {
        p.target_ns = 5.0;
    }
    let before = reg.live().unwrap();
    assert!(matches!(
        reg.retrain_from(&[garbage], &holdout),
        SwapDecision::Rejected { .. }
    ));
    assert_eq!(
        reg.generation(),
        1,
        "rejected swap must not bump generation"
    );
    assert_eq!(t.gauge_value("model_generation", &[]), 1.0);
    assert_eq!(t.counter_total("model_swap_rejected_total"), 1);
    let after = reg.live().unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&before.models, &after.models),
        "live model instance must be untouched by a rejected candidate"
    );

    // A healthy candidate is accepted afterwards.
    assert!(matches!(
        reg.retrain_from(&good, &holdout),
        SwapDecision::Accepted { generation: 2, .. }
    ));
    assert_eq!(t.counter_total("model_swap_accepted_total"), 2);
}
