//! Differential soundness for the range-tracking verifier.
//!
//! The generator here is deliberately nastier than `bpf_soundness.rs`:
//! jump offsets may be *negative*, so random programs contain loops,
//! and immediates span the full adversarial range (`i64::MIN`,
//! `u64::MAX` as `-1`, shift counts ≥ 64, …). The contract under test
//! is the kernel's: **every program the verifier accepts must execute
//! without any runtime fault** — no bad memory access, no uninitialized
//! read, and no fuel exhaustion either, because the per-edge trip budget
//! bounds total back-edge traversals well under the VM's fuel.
//!
//! The suite also pins the end-to-end story the loop-emitting codegen
//! relies on: a bounded-loop Collector-style program verifies and runs,
//! and the same program with its exit condition removed is rejected.

use tscout_suite::rng::{RngExt, SeedableRng, StdRng};

use tscout_suite::bpf::asm::ProgramBuilder;
use tscout_suite::bpf::insn::{AluOp, Cond, Helper, Insn, Reg, Size, Src, R0, R1, R2, R3, R4, R6};
use tscout_suite::bpf::maps::MapDef;
use tscout_suite::bpf::vm::{NullWorld, Vm};
use tscout_suite::bpf::{verify, verify_with_stats, MapId, MapRegistry, VerifyError};

fn maps() -> MapRegistry {
    let mut m = MapRegistry::new();
    m.create(MapDef::hash("h", 8, 16, 32));
    m.create(MapDef::stack("s", 8, 8));
    m.create(MapDef::perf_event_array("r", 16));
    m
}

fn arb_reg(rng: &mut StdRng) -> Reg {
    Reg(rng.random_range(0u8..=10))
}

fn arb_imm(rng: &mut StdRng) -> i64 {
    match rng.random_range(0..8) {
        0 => i64::MIN,
        1 => i64::MAX,
        2 => -1,
        3 => rng.random_range(0i64..128), // plausible shift counts / lengths
        _ => rng.random::<u64>() as i64,
    }
}

fn arb_src(rng: &mut StdRng) -> Src {
    if rng.random_bool(0.5) {
        Src::Reg(arb_reg(rng))
    } else {
        Src::Imm(arb_imm(rng))
    }
}

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Mod,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Arsh,
    AluOp::Mov,
    AluOp::Neg,
];

const SIZES: [Size; 4] = [Size::B1, Size::B2, Size::B4, Size::B8];

const CONDS: [Cond; 11] = [
    Cond::Eq,
    Cond::Ne,
    Cond::Lt,
    Cond::Le,
    Cond::Gt,
    Cond::Ge,
    Cond::SLt,
    Cond::SLe,
    Cond::SGt,
    Cond::SGe,
    Cond::Set,
];

const HELPERS: [Helper; 11] = [
    Helper::MapLookup,
    Helper::MapUpdate,
    Helper::MapDelete,
    Helper::MapPush,
    Helper::MapPop,
    Helper::PerfEventReadBuf,
    Helper::ReadTaskIo,
    Helper::ReadTcpSock,
    Helper::PerfEventOutput,
    Helper::KtimeGetNs,
    Helper::GetCurrentPidTgid,
];

fn arb_insn(rng: &mut StdRng) -> Insn {
    // Bias toward small `mov dst, imm` so registers get initialized and
    // a useful fraction of programs survives verification.
    if rng.random_bool(0.25) {
        return Insn::Alu {
            op: AluOp::Mov,
            dst: arb_reg(rng),
            src: Src::Imm(rng.random_range(-600i64..600)),
        };
    }
    match rng.random_range(0..7) {
        0 => Insn::Alu {
            op: ALU_OPS[rng.random_range(0..ALU_OPS.len())],
            dst: arb_reg(rng),
            src: arb_src(rng),
        },
        1 => Insn::Load {
            size: SIZES[rng.random_range(0..SIZES.len())],
            dst: arb_reg(rng),
            base: arb_reg(rng),
            off: rng.random_range(-520i32..64),
        },
        2 => Insn::Store {
            size: SIZES[rng.random_range(0..SIZES.len())],
            base: arb_reg(rng),
            off: rng.random_range(-520i32..64),
            src: arb_src(rng),
        },
        // Backward offsets are the point of this suite: random loops.
        3 => Insn::Jump {
            cond: if rng.random_bool(0.7) {
                Some((
                    CONDS[rng.random_range(0..CONDS.len())],
                    arb_reg(rng),
                    arb_src(rng),
                ))
            } else {
                None
            },
            off: rng.random_range(-8i32..8),
        },
        4 => Insn::Call {
            helper: HELPERS[rng.random_range(0..HELPERS.len())],
        },
        5 => Insn::LoadMap {
            dst: Reg(1),
            map: MapId(rng.random_range(0u32..4)),
        },
        _ => Insn::Exit,
    }
}

/// Accepted ⟹ runs clean, loops included. Also records the
/// accept/reject split so a generator or verifier regression that makes
/// the property vacuous (or the verifier vacuously permissive) shows up
/// as an assertion, not silence.
#[test]
fn accepted_loopy_programs_never_fault() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_5EED);
    let total = 4096usize;
    let mut accepted = 0usize;
    for _ in 0..total {
        let len = rng.random_range(1usize..32);
        let mut prog: Vec<Insn> = (0..len).map(|_| arb_insn(&mut rng)).collect();
        prog.push(Insn::Exit);
        let ctx: Vec<u8> = (0..rng.random_range(0usize..64))
            .map(|_| rng.random_range(0u8..=255))
            .collect();
        let mut m = maps();
        if verify(&prog, &m, 64).is_ok() {
            accepted += 1;
            let mut world = NullWorld::default();
            if let Err(e) = Vm::run(&prog, &ctx, &mut m, &mut world) {
                panic!(
                    "verifier accepted a faulting program: {e}\n{}",
                    tscout_suite::bpf::insn::disassemble(&prog)
                );
            }
        }
    }
    let rejected = total - accepted;
    println!("accept/reject: {accepted}/{rejected} of {total}");
    assert!(
        accepted > 40,
        "only {accepted}/{total} programs verified — property is near-vacuous"
    );
    assert!(
        rejected > accepted,
        "verifier accepted {accepted}/{total} random programs — suspiciously permissive"
    );
}

/// A Collector-style bounded loop (sum the 8 payload words of the ctx,
/// store the sum on the stack) verifies, runs, and computes the right
/// answer; removing the loop's exit condition turns it into an
/// unbounded loop the verifier must reject.
#[test]
fn bounded_collector_loop_end_to_end_and_unbounded_variant_rejected() {
    let build = |bounded: bool| {
        let mut b = ProgramBuilder::new();
        b.mov_reg(R6, R1); // ctx base survives across the loop
        b.mov_imm(R0, 0); // sum
        b.mov_imm(R2, 0); // counter
        let top = b.label();
        let after = b.label();
        b.bind(top);
        if bounded {
            b.jump_if_imm(Cond::Ge, R2, 8, after);
        }
        b.mov_reg(R3, R2);
        b.alu_imm(AluOp::And, R3, 7); // mask keeps the access in bounds even
        b.alu_imm(AluOp::Lsh, R3, 3); // without the guard: byte offset 8·(i & 7)
        b.mov_reg(R4, R6);
        b.alu_reg(AluOp::Add, R4, R3); // ctx + 8·i
        b.load(Size::B8, R3, R4, 0);
        b.alu_reg(AluOp::Add, R0, R3);
        b.alu_imm(AluOp::Add, R2, 1);
        b.jump(top);
        b.bind(after);
        b.store_reg(Size::B8, tscout_suite::bpf::insn::R10, -8, R0);
        b.exit();
        b.resolve().unwrap()
    };

    let m = maps();
    let prog = build(true);
    let stats = verify_with_stats(&prog, &m, 64).expect("bounded loop must verify");
    assert!(
        stats.insns_visited > stats.insns,
        "loop exploration must revisit the body"
    );

    // Eight little-endian words 1..=8 sum to 36.
    let ctx: Vec<u8> = (1u64..=8).flat_map(u64::to_le_bytes).collect();
    let mut maps_run = maps();
    let mut world = NullWorld::default();
    let (r0, exec) = Vm::run(&prog, &ctx, &mut maps_run, &mut world).unwrap();
    assert_eq!(r0, 36, "sum of 1..=8");
    assert!(
        exec.insns > prog.len() as u64,
        "the loop must actually loop"
    );

    let unbounded = build(false);
    match verify(&unbounded, &m, 64) {
        Err(VerifyError::BackEdge { .. }) | Err(VerifyError::TooComplex) => {}
        other => panic!("unbounded loop must be rejected, got {other:?}"),
    }
}
