//! Query-level observability integration tests: `EXPLAIN ANALYZE`
//! executes for real and annotates the plan tree with monotone actuals,
//! predicted columns track model hot swaps, plain `EXPLAIN` still never
//! executes, `ts_stat_statements` reconciles with the telemetry
//! accounting through plain SQL, and — the overriding constraint —
//! statement statistics never perturb the collected training samples.

use std::sync::Arc;

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::models::{LabeledPoint, LiveModel, ModelKind, OuData, OuModelSet};
use tscout_suite::noisetap::{Database, Value};
use tscout_suite::tscout::{CollectionMode, TrainingPoint, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::{run, RunOptions};
use tscout_suite::workloads::{Workload, Ycsb};

fn fresh(seed: u64) -> Database {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), seed);
    k.noise_frac = 0.0;
    Database::new(k)
}

fn attach(db: &mut Database) {
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = 1 << 20;
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
}

/// A small bank schema with enough rows that every operator does real
/// work under `EXPLAIN ANALYZE`.
fn bank(db: &mut Database) -> tscout_suite::noisetap::SessionId {
    let sid = db.create_session();
    db.execute(
        sid,
        "CREATE TABLE acct (id INT PRIMARY KEY, branch INT, bal FLOAT)",
        &[],
    )
    .unwrap();
    db.execute(sid, "CREATE INDEX acct_branch ON acct (branch)", &[])
        .unwrap();
    db.execute(
        sid,
        "CREATE TABLE tx (tid INT PRIMARY KEY, acct INT, amt FLOAT)",
        &[],
    )
    .unwrap();
    for i in 0..200 {
        db.execute(
            sid,
            "INSERT INTO acct VALUES ($1, $2, $3)",
            &[Value::Int(i), Value::Int(i % 10), Value::Float(100.0)],
        )
        .unwrap();
    }
    for i in 0..400 {
        db.execute(
            sid,
            "INSERT INTO tx VALUES ($1, $2, $3)",
            &[Value::Int(i), Value::Int(i % 200), Value::Float(i as f64)],
        )
        .unwrap();
    }
    sid
}

fn explain_lines(
    db: &mut Database,
    sid: tscout_suite::noisetap::SessionId,
    sql: &str,
) -> Vec<String> {
    db.execute(sid, sql, &[])
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect()
}

/// Parse `actual=<ns>ns` out of an annotated operator line.
fn actual_ns(line: &str) -> Option<f64> {
    line.split("actual=")
        .nth(1)?
        .split("ns")
        .next()?
        .parse()
        .ok()
}

/// Every annotated operator executes *within* its root, so the first
/// (pre-order root) node's inclusive time bounds every descendant's.
#[test]
fn explain_analyze_actuals_are_monotone_with_nesting() {
    let mut db = fresh(0xEA01);
    let sid = bank(&mut db);
    for sql in [
        "EXPLAIN ANALYZE SELECT a.id, t.amt FROM acct a JOIN tx t ON a.id = t.acct \
         WHERE a.branch = 3",
        "EXPLAIN ANALYZE SELECT branch, count(*), sum(bal) FROM acct GROUP BY branch",
        "EXPLAIN ANALYZE SELECT bal FROM acct WHERE branch = 2 ORDER BY bal DESC LIMIT 5",
        "EXPLAIN ANALYZE UPDATE acct SET bal = bal + 1.0 WHERE branch = 7",
    ] {
        let out = explain_lines(&mut db, sid, sql);
        let ops: Vec<(String, f64)> = out
            .iter()
            .filter(|l| !l.starts_with("Execution:"))
            .filter_map(|l| actual_ns(l).map(|ns| (l.clone(), ns)))
            .collect();
        assert!(ops.len() >= 2, "want a nested annotated tree: {out:?}");
        let (root_line, root_ns) = &ops[0];
        assert!(*root_ns > 0.0, "root must accumulate time: {root_line}");
        for (line, ns) in &ops[1..] {
            assert!(
                root_ns >= ns,
                "descendant outlives its root ({ns} > {root_ns}):\n{line}\nin {out:?}"
            );
        }
        let footer = out.last().unwrap();
        let stmt_ns = actual_ns(footer).unwrap();
        assert!(
            stmt_ns >= *root_ns,
            "statement time must bound the root node: {footer} vs {root_line}"
        );
    }
    // The UPDATE above executed for real.
    let out = db
        .execute(sid, "SELECT bal FROM acct WHERE id = 7", &[])
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Float(101.0));
}

/// Ridge fit on a constant target predicts ~that constant everywhere:
/// two scales make two distinguishable generations without the full
/// training pipeline.
fn synth_live(generation: u64, target_ns: f64) -> LiveModel {
    let mk = |name: &str, nf: usize| {
        let mut d = OuData::new(name);
        for i in 0..64usize {
            let mut features: Vec<f64> = (0..nf).map(|k| ((i + k) % 9) as f64).collect();
            features.push(2.5); // clock_ghz column
            features.push(1.0); // concurrency column
            d.points.push(LabeledPoint {
                features,
                target_ns,
                template: 0,
            });
        }
        d
    };
    let data = vec![
        mk("idx_lookup", 3),
        mk("idx_range_scan", 2),
        mk("seq_scan", 2),
        mk("filter", 1),
        mk("hash_join_build", 2),
        mk("hash_join_probe", 2),
        mk("agg_build", 2),
        mk("sort", 2),
        mk("output", 2),
    ];
    LiveModel {
        generation,
        trained_points: data.iter().map(tscout_suite::models::OuData::len).sum(),
        models: Arc::new(OuModelSet::train(ModelKind::Ridge, 1, &data)),
        holdout_mape_pct: 0.0,
    }
}

#[test]
fn predicted_columns_track_model_hot_swap() {
    let mut db = fresh(0xEA02);
    let sid = bank(&mut db);
    let sql = "EXPLAIN ANALYZE SELECT bal FROM acct WHERE branch = 3";

    let bare = explain_lines(&mut db, sid, sql);
    assert!(
        bare.last().unwrap().contains("(no model installed)"),
        "{bare:?}"
    );

    db.install_live_model(Some(synth_live(1, 1_000.0)), 4.0);
    let gen1 = explain_lines(&mut db, sid, sql);
    assert!(
        gen1.last().unwrap().contains("(model generation 1)"),
        "{gen1:?}"
    );
    let p1 = gen1
        .last()
        .unwrap()
        .split("predicted=")
        .nth(1)
        .and_then(|s| s.split("ns").next())
        .and_then(|s| s.parse::<f64>().ok())
        .expect("generation 1 must predict");
    assert!(
        gen1.iter().any(|l| l.contains("err=")),
        "per-node error columns must render: {gen1:?}"
    );

    // Hot swap to a 50x-scale model: a new generation, moved predictions.
    db.install_live_model(Some(synth_live(2, 50_000.0)), 4.0);
    let gen2 = explain_lines(&mut db, sid, sql);
    assert!(
        gen2.last().unwrap().contains("(model generation 2)"),
        "{gen2:?}"
    );
    let p2 = gen2
        .last()
        .unwrap()
        .split("predicted=")
        .nth(1)
        .and_then(|s| s.split("ns").next())
        .and_then(|s| s.parse::<f64>().ok())
        .expect("generation 2 must predict");
    assert!(
        p2 > p1 * 5.0,
        "swap must change predicted cost: gen1={p1}ns gen2={p2}ns"
    );
}

#[test]
fn plain_explain_still_does_not_execute() {
    let mut db = fresh(0xEA03);
    let sid = bank(&mut db);
    let out = explain_lines(&mut db, sid, "EXPLAIN DELETE FROM acct WHERE branch = 3");
    assert!(
        out.iter().all(|l| !l.contains("actual=")),
        "plain EXPLAIN must not carry actuals: {out:?}"
    );
    let n = db.execute(sid, "SELECT count(*) FROM acct", &[]).unwrap();
    assert_eq!(n.rows[0][0], Value::Int(200), "EXPLAIN must not delete");

    // EXPLAIN ANALYZE of the same statement does execute.
    db.execute(
        sid,
        "EXPLAIN ANALYZE DELETE FROM acct WHERE branch = 3",
        &[],
    )
    .unwrap();
    let n = db.execute(sid, "SELECT count(*) FROM acct", &[]).unwrap();
    assert_eq!(n.rows[0][0], Value::Int(180));
}

/// The paper's bar for self-observation, applied to the statement-stats
/// plane: recording per-statement actuals must not change a single bit
/// of the training data collected alongside.
#[test]
fn samples_are_bit_identical_with_stmt_stats_on_and_off() {
    let collect = |stats_on: bool| -> Vec<TrainingPoint> {
        let mut db = fresh(0x57A7);
        db.stmt_stats_enabled = stats_on;
        let mut w = Ycsb::new(3_000);
        w.setup(&mut db);
        attach(&mut db);
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 2,
                duration_ns: 120e6,
                seed: 0x57A7,
                ..Default::default()
            },
        );
        assert_eq!(stats.samples_dropped, 0, "ring must keep up for this test");
        if stats_on {
            assert!(
                db.kernel.telemetry.stmt_recorded() > 0,
                "the on-arm must actually record statements"
            );
        }
        stats.points
    };
    let off = collect(false);
    let on = collect(true);
    assert!(!off.is_empty());
    assert_eq!(
        off.len(),
        on.len(),
        "statement stats changed the sample count"
    );
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a, b, "statement stats changed a decoded sample");
        for (fa, fb) in a.features.iter().zip(&b.features) {
            assert_eq!(fa.to_bits(), fb.to_bits());
        }
    }
}

/// `ts_stat_statements` is plain SQL over the live registry, and its
/// aggregates reconcile exactly with the telemetry counters.
#[test]
fn ts_stat_statements_reconciles_through_sql() {
    let mut db = fresh(0x57A8);
    let mut w = Ycsb::new(2_000);
    w.setup(&mut db);
    attach(&mut db);
    run(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 80e6,
            seed: 0x57A8,
            ..Default::default()
        },
    );
    let recorded = db.kernel.telemetry.stmt_recorded();
    assert!(recorded > 0, "driven run must record statements");

    let sid = db.create_session();
    let out = db
        .execute(
            sid,
            "SELECT fingerprint, calls, rows, total_ns, min_ns, max_ns, mean_ns, \
             ou_ns_total, mape_pct FROM ts_stat_statements ORDER BY total_ns DESC",
            &[],
        )
        .unwrap();
    assert!(!out.rows.is_empty(), "registry must surface through SQL");
    let mut calls_sum = 0u64;
    let mut prev_total = f64::INFINITY;
    for r in &out.rows {
        let fp = r[0].as_text().unwrap();
        let calls = r[1].as_int().unwrap() as u64;
        let total = r[3].as_float().unwrap();
        let min = r[4].as_float().unwrap();
        let max = r[5].as_float().unwrap();
        let mean = r[6].as_float().unwrap();
        let ou_total = r[7].as_float().unwrap();
        let mape = r[8].as_float().unwrap();
        assert!(calls >= 1, "{fp}: empty entry");
        assert!(
            total <= prev_total,
            "ORDER BY total_ns DESC violated at {fp}"
        );
        prev_total = total;
        let eps = 1e-6 * total.max(1.0);
        assert!(
            min <= mean + eps && mean <= max + eps,
            "{fp}: min/mean/max disordered"
        );
        assert!(
            calls as f64 * min <= total + eps && total <= calls as f64 * max + eps,
            "{fp}: total outside calls*[min,max]"
        );
        assert!(
            ou_total <= total + eps,
            "{fp}: OU self time {ou_total} exceeds inclusive {total}"
        );
        assert!(mape >= 0.0, "{fp}: negative MAPE");
        calls_sum += calls;
    }
    // Nothing was evicted in a small run, so per-fingerprint calls must
    // add up to exactly the recorded-statement counter.
    assert_eq!(
        db.kernel
            .telemetry
            .counter_value("db_stmt_evicted_total", &[]),
        0
    );
    assert_eq!(calls_sum, recorded, "calls must reconcile with accounting");
}
