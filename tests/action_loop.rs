//! The closed self-driving loop, end to end: the action engine watching
//! a live collection run must
//!
//! 1. react to a genuine drift-CRITICAL transition by triggering a
//!    retrain whose accepted swap rebaselines the drift references and
//!    brings data health back to OK — while an identical run without
//!    the engine stays CRITICAL;
//! 2. dump a flight-recorder bundle naming the action id when an
//!    action's follow-up regresses;
//! 3. reconcile the `ts_actions` SQL view with the in-memory log;
//! 4. lower a real collector's sampling rate on an overhead breach and
//!    restore it after recovery, with hysteresis blocking the
//!    immediate reversal;
//! 5. in dry-run mode, plan actions but actuate nothing — and leave
//!    the collected training samples bit-identical with a run that has
//!    no engine at all (the planner's cost lands on the Processor's
//!    clock, never a session's).

use tscout_suite::actions::{
    ActionCommand, ActionConfig, ActionEngine, DbmsActuator, PlannerInputs, SubsystemRate,
};
use tscout_suite::archive::ArchiveOptions;
use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::models::ModelKind;
use tscout_suite::noisetap::engine::StatementId;
use tscout_suite::noisetap::{Database, Value};
use tscout_suite::rng::RngExt;
use tscout_suite::tscout::{CollectionMode, TScout, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::{
    run_with_lifecycle, ModelLifecycle, RunOptions, TxnCtx, Workload,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tscout_act_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Range scans whose width jumps 200x after `shift_after` transactions
/// (the `ablation_drift` workload): the scan OU's latency distribution
/// shifts mid-run and the drift detector goes CRITICAL.
struct ShiftScan {
    rows: i64,
    narrow: i64,
    wide: i64,
    shift_after: u64,
    done: u64,
    scan: Option<StatementId>,
}

impl ShiftScan {
    fn new(shift_after: u64) -> ShiftScan {
        ShiftScan {
            rows: 4_000,
            narrow: 8,
            wide: 1_600,
            shift_after,
            done: 0,
            scan: None,
        }
    }
}

impl Workload for ShiftScan {
    fn name(&self) -> &'static str {
        "shift_scan"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE shift_t (k INT PRIMARY KEY, v FLOAT)",
            &[],
        )
        .unwrap();
        let ins = db.prepare("INSERT INTO shift_t VALUES ($1, $2)").unwrap();
        for k in 0..self.rows {
            db.execute_prepared(sid, ins, &[Value::Int(k), Value::Float(k as f64)])
                .unwrap();
        }
        self.scan = Some(
            db.prepare("SELECT sum(v) FROM shift_t WHERE k >= $1 AND k <= $2")
                .unwrap(),
        );
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let width = if self.done < self.shift_after {
            self.narrow
        } else {
            self.wide
        };
        self.done += 1;
        let lo = ctx.rng.random_range(0..(self.rows - width));
        let stmt = self.scan.expect("setup() not called");
        ctx.begin();
        let ok = ctx
            .request(stmt, &[Value::Int(lo), Value::Int(lo + width)])
            .is_ok();
        if ok {
            ctx.commit().is_ok()
        } else {
            ctx.rollback();
            false
        }
    }
}

fn new_db(seed: u64) -> Database {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), seed);
    k.noise_frac = 0.0;
    k.set_profile_period_ns(tscout_suite::telemetry::DEFAULT_PROFILE_PERIOD_NS);
    let mut db = Database::new(k);
    db.stmt_stats_enabled = false;
    db
}

fn attach_collect(db: &mut Database) {
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
}

/// Run the drift workload with a model lifecycle; `engine` decides the
/// arm (None = control, Some = engine-on or dry-run). `rate` is the
/// per-subsystem sampling rate: 100 saturates the ring (fine for the
/// drift arms), while the bit-identity arms use a lower rate so the
/// run is drop-free — ring overwrite depends on the Processor's clock,
/// which the planner legitimately shifts. Returns the database and
/// every training point the run collected.
fn drift_arm(
    tag: &str,
    rate: u8,
    engine: Option<ActionConfig>,
    flightrec: Option<&std::path::Path>,
) -> (Database, Vec<tscout_suite::tscout::TrainingPoint>) {
    let dir = temp_dir(tag);
    let mut db = new_db(0xAC7);
    let mut w = ShiftScan::new(1_200);
    w.setup(&mut db);
    attach_collect(&mut db);
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, rate);
    }
    if let Some(frdir) = flightrec {
        db.kernel
            .telemetry
            .arm_flight_recorder(frdir.to_path_buf(), "action_loop");
    }
    let mut lc = ModelLifecycle::new(
        &dir.join("archive"),
        ArchiveOptions::default(),
        ModelKind::Ridge,
        7,
        60e6,
        db.kernel.telemetry.clone(),
    )
    .unwrap();
    if let Some(cfg) = engine {
        lc = lc.with_actions(ActionEngine::new(cfg, db.kernel.telemetry.clone()));
    }
    let stats = run_with_lifecycle(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 400e6,
            seed: 0xAC7,
            ..Default::default()
        },
        &mut lc,
    );
    assert!(stats.committed > 500, "committed {}", stats.committed);
    std::fs::remove_dir_all(&dir).ok();
    (db, stats.points)
}

#[test]
fn drift_critical_triggers_retrain_and_health_recovers() {
    // Control: same workload, same lifecycle, no engine. The drift
    // alert fires and nothing ever clears it.
    let (control, _) = drift_arm("control", 100, None, None);
    let t = &control.kernel.telemetry;
    assert!(
        t.gauge_value("ts_health_state", &[("subsystem", "data")]) >= 2.0,
        "control arm must end CRITICAL"
    );
    assert_eq!(t.counter_value("ts_drift_rebaselines_total", &[]), 0);

    // Engine on: a short observation window so the retrain's follow-up
    // closes before health has stepped back down — the action records a
    // regression (and dumps a flight bundle) even though the system
    // recovers by the end of the run.
    let frdir = temp_dir("flightrec");
    std::fs::create_dir_all(&frdir).unwrap();
    let cfg = ActionConfig {
        observation_window_ns: 2e6,
        ..Default::default()
    };
    let (db, _) = drift_arm("engine", 100, Some(cfg), Some(&frdir));
    let t = &db.kernel.telemetry;
    assert!(
        t.counter_value(
            "tscout_action_planned_total",
            &[("kind", "trigger_retrain")]
        ) >= 1,
        "engine never planned a retrain"
    );
    assert!(
        t.counter_value(
            "tscout_action_actuated_total",
            &[("kind", "trigger_retrain")]
        ) >= 1,
        "engine never actuated the retrain"
    );
    assert!(
        t.counter_value("ts_drift_rebaselines_total", &[]) >= 1,
        "accepted swap must rebaseline the drift references"
    );
    assert!(
        t.gauge_value("ts_health_state", &[("subsystem", "data")]) < 2.0,
        "engine arm must leave CRITICAL by end of run"
    );
    // The regressed follow-up dumped a flight bundle naming the action.
    assert!(
        t.counter_value(
            "tscout_action_regressed_total",
            &[("kind", "trigger_retrain")]
        ) >= 1,
        "short-window retrain follow-up should regress"
    );
    let bundles: Vec<std::path::PathBuf> = std::fs::read_dir(&frdir)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flightrec_action_loop"))
        })
        .collect();
    assert!(!bundles.is_empty(), "no flight bundle written");
    let action_bundle = bundles.iter().find(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_default();
        text.contains("\"triggering_action\"") && text.contains("\"kind\": \"trigger_retrain\"")
    });
    assert!(
        action_bundle.is_some(),
        "no flight bundle names the regressed retrain action"
    );

    // ts_actions through SQL reconciles with the in-memory log, row for
    // row: same ids, kinds, states.
    let log = t.actions_snapshot();
    assert!(!log.is_empty());
    let mut db = db;
    let sid = db.create_session();
    let rows = db
        .execute(
            sid,
            "SELECT id, kind, state FROM ts_actions ORDER BY id",
            &[],
        )
        .unwrap()
        .rows;
    assert_eq!(rows.len(), log.len());
    for (row, rec) in rows.iter().zip(&log) {
        assert_eq!(row[0], Value::Int(rec.id as i64));
        assert_eq!(row[1], Value::Text(rec.kind.clone()));
        assert_eq!(row[2], Value::Text(rec.state.name().to_string()));
    }
    // Every closed action's efficacy landed in the archive's own OU
    // family (scanned back in the engine arm's archive before teardown
    // is covered by the ablation binary; here the counters agree).
    let observed: u64 = ["trigger_retrain"]
        .iter()
        .map(|k| {
            db.kernel
                .telemetry
                .counter_value("tscout_action_observed_total", &[("kind", k)])
        })
        .sum();
    assert!(observed >= 1);
    std::fs::remove_dir_all(&frdir).ok();
}

/// Actuates against a real collector: the engine's rate changes land in
/// the live sampler.
struct TsActuator<'a> {
    ts: &'a mut TScout,
}

impl DbmsActuator for TsActuator<'_> {
    fn set_sampling_rate(&mut self, subsystem: &str, rate: u8) {
        if let Some(s) = ALL_SUBSYSTEMS.into_iter().find(|s| s.name() == subsystem) {
            self.ts.set_sampling_rate(s, rate);
        }
    }
    fn trigger_retrain(&mut self) {}
    fn schedule_compaction(&mut self) {}
    fn hold_compaction(&mut self, _hold: bool) {}
    fn set_pipeline_mode(&mut self, _fused: bool) {}
}

#[test]
fn overhead_breach_lowers_live_rate_then_restores_with_hysteresis() {
    let mut db = new_db(0x0BE);
    attach_collect(&mut db);
    let telemetry = db.kernel.telemetry.clone();
    let mut engine = ActionEngine::new(ActionConfig::default(), telemetry.clone());
    let exec = tscout_suite::tscout::Subsystem::ExecutionEngine;
    let ts = db.tscout_mut().unwrap();
    let rates = |ts: &TScout| SubsystemRate {
        subsystem: exec.name().to_string(),
        current: ts.sampler.rate(exec),
        recommended: ts.sampler.rate(exec),
        loss_delta: 0,
    };

    // Over budget: the hottest subsystem's rate halves in the sampler.
    telemetry.gauge_set("tscout_overhead_ratio", &[], 0.08);
    let report = engine.tick(
        &PlannerInputs {
            now_ns: 1e6,
            overhead_ratio: Some(0.08),
            rates: vec![rates(ts)],
            ..Default::default()
        },
        &mut TsActuator { ts },
    );
    assert!(report
        .actuated
        .iter()
        .any(|c| matches!(c, ActionCommand::SetSamplingRate { rate: 50, .. })));
    assert_eq!(ts.sampler.rate(exec), 50);

    // Recovered, but inside the hysteresis window: the raise is held.
    telemetry.gauge_set("tscout_overhead_ratio", &[], 0.01);
    engine.tick(
        &PlannerInputs {
            now_ns: 90e6,
            overhead_ratio: Some(0.01),
            rates: vec![rates(ts)],
            ..Default::default()
        },
        &mut TsActuator { ts },
    );
    assert_eq!(ts.sampler.rate(exec), 50, "hysteresis must hold the rate");
    assert!(
        telemetry.counter_value(
            "tscout_action_suppressed_total",
            &[("reason", "hysteresis")]
        ) >= 1
    );

    // Past the window: restored toward the baseline first seen (100).
    engine.tick(
        &PlannerInputs {
            now_ns: 300e6,
            overhead_ratio: Some(0.01),
            rates: vec![rates(ts)],
            ..Default::default()
        },
        &mut TsActuator { ts },
    );
    assert_eq!(ts.sampler.rate(exec), 100);
}

#[test]
fn dry_run_plans_without_actuating_and_samples_match_engine_off() {
    // Arm A: lifecycle, no engine at all.
    let (off, off_points) = drift_arm("bits_off", 40, None, None);
    // Arm B: identical run with a dry-run engine attached.
    let (dry, dry_points) = drift_arm(
        "bits_dry",
        40,
        Some(ActionConfig {
            dry_run: true,
            ..Default::default()
        }),
        None,
    );
    let t = &dry.kernel.telemetry;
    // Drop-free preconditions: the bit-identity claim covers every
    // sample the DBMS emits, so neither arm may lose any to ring
    // overwrite (loss there is processor-clock dependent by design).
    for (arm, tel) in [("off", &off.kernel.telemetry), ("dry", t)] {
        let overwritten: u64 = ALL_SUBSYSTEMS
            .into_iter()
            .map(|s| {
                tel.counter_value(
                    "tscout_samples_lost_total",
                    &[("subsystem", s.name()), ("reason", "ring_overwrite")],
                )
            })
            .sum();
        assert_eq!(
            overwritten, 0,
            "{arm} arm lost samples to ring overwrite; lower the rate"
        );
    }

    // The dry engine planned real actions...
    let log = t.actions_snapshot();
    assert!(!log.is_empty(), "dry-run engine planned nothing");
    assert!(log.iter().all(|r| r.dry_run));
    assert!(log.iter().any(|r| r.kind == "trigger_retrain"));
    // ...actuated none of them...
    for kind in [
        "adjust_sampling_rate",
        "trigger_retrain",
        "schedule_compaction",
        "deprioritize_compaction",
        "toggle_pipeline",
    ] {
        assert_eq!(
            t.counter_value("tscout_action_actuated_total", &[("kind", kind)]),
            0,
            "dry-run actuated {kind}"
        );
    }
    // ...left the sampler untouched...
    let ts = dry.tscout().unwrap();
    for s in ALL_SUBSYSTEMS {
        assert_eq!(ts.sampler.rate(s), 40);
    }
    // ...never pulled a retrain forward, and never rebaselined.
    assert_eq!(t.counter_value("ts_drift_rebaselines_total", &[]), 0);

    // Bit-identity: both runs collected the exact same training
    // samples. Compare through the archive-sample encoding (floats by
    // bit pattern), which is what ends up on disk.
    assert_eq!(off_points.len(), dry_points.len(), "sample counts diverged");
    for (i, (a, b)) in off_points.iter().zip(&dry_points).enumerate() {
        assert!(
            a.to_sample(0).bits_eq(&b.to_sample(0)),
            "sample {i} diverged: {a:?} vs {b:?}"
        );
    }
    let off_t = &off.kernel.telemetry;
    assert_eq!(
        off_t.counter_total("tscout_samples_delivered_total"),
        t.counter_total("tscout_samples_delivered_total"),
        "delivered-sample counts diverged"
    );
}
