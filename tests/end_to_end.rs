//! Cross-crate integration tests: the full collect → train → predict
//! loop, dynamic reconfiguration, engine modes, and determinism.

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::models::eval::avg_abs_error_per_template_us;
use tscout_suite::models::{ModelKind, OuModelSet};
use tscout_suite::noisetap::{Database, EngineMode, Value};
use tscout_suite::tscout::{CollectionMode, ProbeSet, Subsystem, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::{collect_datasets, run, RunOptions};
use tscout_suite::workloads::{SmallBank, Tatp, Tpcc, Workload, Ycsb};

fn fresh(seed: u64) -> Database {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), seed);
    k.noise_frac = 0.0;
    Database::new(k)
}

fn attach100(db: &mut Database) {
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = 1 << 20;
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
}

#[test]
fn collect_train_predict_round_trip() {
    let mut db = fresh(1);
    let mut w = Ycsb::new(5_000);
    w.setup(&mut db);
    attach100(&mut db);
    let opts = RunOptions {
        terminals: 2,
        duration_ns: 40e6,
        ..Default::default()
    };
    let (stats, data) = collect_datasets(&mut db, &mut w, &opts);
    assert!(stats.committed > 100);
    assert!(!data.is_empty());

    // Train on the collected data and check in-distribution predictions.
    let models = OuModelSet::train(ModelKind::Forest, 7, &data);
    let lookup = data
        .iter()
        .find(|d| d.name == "idx_lookup")
        .expect("idx_lookup data");
    let err_us = avg_abs_error_per_template_us(&models, std::slice::from_ref(lookup));
    let mean_us = lookup.points.iter().map(|p| p.target_ns).sum::<f64>()
        / lookup.points.len() as f64
        / 1000.0;
    assert!(
        err_us < 0.25 * mean_us,
        "model error {err_us:.2}us should be far below the mean target {mean_us:.2}us"
    );
}

#[test]
fn every_workload_produces_consistent_collection() {
    let workloads: Vec<(Box<dyn Workload>, u64)> = vec![
        (Box::new(Ycsb::new(2_000)), 11),
        (Box::new(SmallBank::new(1_000)), 12),
        (Box::new(Tatp::new(1_000)), 13),
        (Box::new(Tpcc::new(1)), 14),
    ];
    for (mut w, seed) in workloads {
        let mut db = fresh(seed);
        w.setup(&mut db);
        attach100(&mut db);
        let opts = RunOptions {
            terminals: 2,
            duration_ns: 15e6,
            seed,
            ..Default::default()
        };
        let stats = run(&mut db, w.as_mut(), &opts);
        let ts = db.tscout_mut().unwrap();
        assert_eq!(
            ts.stats.state_machine_errors,
            0,
            "{}: markers must stay ordered",
            w.name()
        );
        assert!(stats.points.len() > 50, "{}: expected samples", w.name());
        // Every point's feature count matches its OU schema.
        for p in &stats.points {
            let def = tscout_suite::noisetap::ALL_ENGINE_OUS
                .iter()
                .find(|o| o.name() == p.ou_name)
                .unwrap_or_else(|| panic!("unknown OU {}", p.ou_name));
            assert_eq!(
                p.features.len(),
                def.n_features(),
                "{}: OU {} feature arity",
                w.name(),
                p.ou_name
            );
        }
    }
}

#[test]
fn runs_are_deterministic_for_fixed_seed() {
    let run_once = || {
        let mut db = fresh(99);
        let mut w = SmallBank::new(500);
        w.setup(&mut db);
        attach100(&mut db);
        let opts = RunOptions {
            terminals: 3,
            duration_ns: 10e6,
            seed: 5,
            ..Default::default()
        };
        let stats = run(&mut db, &mut w, &opts);
        (
            stats.committed,
            stats.aborted,
            stats.points.len(),
            stats.trace.len(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn dynamic_reconfiguration_detach_and_redeploy() {
    let mut db = fresh(3);
    let mut w = Ycsb::new(1_000);
    w.setup(&mut db);
    attach100(&mut db);
    let opts = RunOptions {
        terminals: 1,
        duration_ns: 5e6,
        ..Default::default()
    };
    let stats = run(&mut db, &mut w, &opts);
    assert!(
        stats.points.iter().any(|p| p.metrics.len() == 15),
        "all probes → 15 metrics"
    );

    // §5.4: unload, change the probe selection, redeploy.
    let mut cfg = db.detach_tscout().unwrap();
    cfg.subsystems
        .insert(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    let stats = run(&mut db, &mut w, &opts);
    let ee_point = stats
        .points
        .iter()
        .find(|p| p.subsystem == Subsystem::ExecutionEngine)
        .expect("EE samples after redeploy");
    assert_eq!(ee_point.metrics.len(), 7, "CPU-only probe set → 7 metrics");
}

#[test]
fn fused_and_per_operator_modes_cover_same_ous() {
    let collect = |mode: EngineMode| {
        let mut db = fresh(8);
        db.mode = mode;
        let mut w = Tpcc::new(1);
        w.setup(&mut db);
        attach100(&mut db);
        let opts = RunOptions {
            terminals: 1,
            duration_ns: 20e6,
            ..Default::default()
        };
        let (_, data) = collect_datasets(&mut db, &mut w, &opts);
        data.iter()
            .filter(|d| {
                tscout_suite::noisetap::ALL_ENGINE_OUS
                    .iter()
                    .any(|o| o.name() == d.name && o.subsystem() == Subsystem::ExecutionEngine)
            })
            .map(|d| d.name.clone())
            .collect::<std::collections::BTreeSet<_>>()
    };
    let per_op = collect(EngineMode::PerOperator);
    let fused = collect(EngineMode::Fused);
    // The fused pipeline de-aggregates into the same OU kinds (minus the
    // pipeline wrapper bookkeeping differences).
    for ou in ["idx_lookup", "insert", "update", "output"] {
        assert!(per_op.contains(ou), "per-op missing {ou}: {per_op:?}");
        assert!(fused.contains(ou), "fused missing {ou}: {fused:?}");
    }
}

#[test]
fn user_modes_and_kernel_mode_produce_comparable_metrics() {
    let collect = |mode: CollectionMode| {
        let mut db = fresh(21);
        let mut w = Ycsb::new(1_000);
        w.setup(&mut db);
        let mut cfg = TsConfig::new(mode);
        cfg.enable_all_subsystems();
        cfg.ring_capacity = 1 << 20;
        db.attach_tscout(cfg).unwrap();
        for s in ALL_SUBSYSTEMS {
            db.tscout_mut().unwrap().set_sampling_rate(s, 100);
        }
        let opts = RunOptions {
            terminals: 1,
            duration_ns: 5e6,
            ..Default::default()
        };
        let (_, data) = collect_datasets(&mut db, &mut w, &opts);
        let lookups = data.into_iter().find(|d| d.name == "idx_lookup").unwrap();
        lookups.points.iter().map(|p| p.target_ns).sum::<f64>() / lookups.points.len() as f64
    };
    let kernel = collect(CollectionMode::KernelContinuous);
    let toggle = collect(CollectionMode::UserToggle);
    let cont = collect(CollectionMode::UserContinuous);
    // "The BPF approach generates the same data as user-space syscalls"
    // (§2.3): measured OU times should agree across methods within noise.
    for (name, v) in [("toggle", toggle), ("continuous", cont)] {
        let rel = (v - kernel).abs() / kernel;
        assert!(
            rel < 0.15,
            "{name} mean {v} vs kernel {kernel} ({rel:.2} apart)"
        );
    }
}

#[test]
fn gc_subsystem_produces_training_data() {
    let mut db = fresh(31);
    let sid = db.create_session();
    db.execute(sid, "CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    for i in 0..200 {
        db.execute(sid, "INSERT INTO t VALUES ($1, 0)", &[Value::Int(i)])
            .unwrap();
    }
    attach100(&mut db);
    for i in 0..200 {
        db.execute(
            sid,
            "UPDATE t SET v = v + 1 WHERE id = $1",
            &[Value::Int(i)],
        )
        .unwrap();
    }
    db.execute(sid, "DELETE FROM t WHERE id < 50", &[]).unwrap();
    let pruned = db.run_gc();
    assert!(pruned > 0);
    let pts = db.tscout_mut().unwrap().drain_decoded();
    let gc = pts
        .iter()
        .find(|p| p.subsystem == Subsystem::GarbageCollector)
        .expect("GC sample");
    assert_eq!(gc.features[0] as u64, pruned);
}
