//! Data-quality introspection end-to-end: the `ts_stat_*` virtual
//! tables queried *through SQL* must mirror the live telemetry registry
//! exactly — same rows, same numbers, nothing reformatted or stale —
//! and the drift → health → alert chain must fire on a genuine
//! distribution shift while staying silent on a steady workload.

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::noisetap::{Database, Value};
use tscout_suite::tscout::{CollectionMode, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::{run, RunOptions};
use tscout_suite::workloads::{Workload, Ycsb};

fn db() -> Database {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 0xDA7A);
    k.noise_frac = 0.0;
    Database::new(k)
}

/// Compare every `ts_stat_ou` row returned through SQL against the
/// registry's drift state, column by column. Floats must match exactly:
/// both sides read the same sketches, so any difference means the SQL
/// path reformatted or cached something.
fn assert_sql_mirrors_registry(db: &mut Database) {
    let sid = db.create_session();
    let rows = db
        .execute(sid, "SELECT * FROM ts_stat_ou ORDER BY ou", &[])
        .unwrap()
        .rows;
    let expected: Vec<Vec<Value>> = db.kernel.telemetry.with_registry(|r| {
        let mut exp: Vec<Vec<Value>> = r
            .drift()
            .iter()
            .map(|(ou, d)| {
                vec![
                    Value::Text(ou.clone()),
                    Value::Text(d.subsystem.clone()),
                    Value::Int(d.samples as i64),
                    Value::Float(d.lifetime.mean()),
                    Value::Float(d.lifetime.quantile(0.50)),
                    Value::Float(d.lifetime.quantile(0.99)),
                    Value::Float(d.target.psi()),
                    Value::Float(d.feature.psi()),
                    Value::Float(d.target.ks()),
                    Value::Float(d.feature.ks()),
                    Value::Float(d.drift_score()),
                    Value::Float(d.residual_mape_pct()),
                    Value::Text(r.health().state_for_target(ou).name().to_string()),
                ]
            })
            .collect();
        exp.sort_by(|a, b| a[0].cmp(&b[0]));
        exp
    });
    assert!(!expected.is_empty(), "registry tracked no OUs");
    assert_eq!(rows.len(), expected.len(), "SQL row count != registry OUs");
    for (row, exp) in rows.iter().zip(&expected) {
        assert_eq!(row, exp, "SQL row diverged from registry for {:?}", exp[0]);
    }
    // The aggregate path must see the same cardinality.
    let n = db
        .execute(sid, "SELECT count(*) FROM ts_stat_ou", &[])
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(n as usize, expected.len());
}

#[test]
fn synthetic_feed_rows_match_registry_exactly() {
    let mut db = db();
    let t = db.kernel.telemetry.clone();
    // Three OUs across two subsystems, distinct distributions, residuals
    // on two of them; enough samples to freeze references and score.
    for i in 0..400u64 {
        let j = (i * 7_919) % 401; // stride permutation, not a ramp
        t.observe_ou_sample("seq_scan", "execution_engine", 900.0 + j as f64, 2.0);
        t.observe_ou_sample(
            "idx_scan",
            "execution_engine",
            4_000.0 + (j * 3) as f64,
            5.0,
        );
        t.observe_ou_sample("wal_flush", "wal", 22_000.0 + (j * 11) as f64, 1.0);
        if i % 4 == 0 {
            t.observe_residual("seq_scan", 950.0, 900.0 + j as f64);
            t.observe_residual("wal_flush", 23_000.0, 22_000.0 + (j * 11) as f64);
        }
        if i % 64 == 63 {
            t.observability_tick(i as f64 * 1e6);
        }
    }
    assert_sql_mirrors_registry(&mut db);

    // The subsystem and model tables mirror the registry too.
    let sid = db.create_session();
    let subs = db
        .execute(
            sid,
            "SELECT subsystem, state, alerts_fired FROM ts_stat_subsystem ORDER BY subsystem",
            &[],
        )
        .unwrap()
        .rows;
    let expected_subs = db
        .kernel
        .telemetry
        .with_registry(|r| r.health().subsystem_states().len());
    assert_eq!(subs.len(), expected_subs);
    let gen = db
        .execute(sid, "SELECT generation FROM ts_stat_model", &[])
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(
        gen,
        db.kernel.telemetry.gauge_value("model_generation", &[]) as i64
    );
}

#[test]
fn live_workload_rows_flow_through_sql() {
    let mut db = db();
    let mut w = Ycsb::new(1_000);
    w.setup(&mut db);
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    run(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 40e6,
            seed: 0xDA7A,
            ..Default::default()
        },
    );
    // A real collection run populated the detector; SQL must agree with
    // it exactly, OU for OU.
    assert_sql_mirrors_registry(&mut db);
}

/// Scaled-down version of the `ablation_drift` experiment: identical
/// steady phases, then one arm's target latency jumps 50x. The shifted
/// arm must leave OK and fire `ou_drift` alerts; the control arm must
/// stay silent — both facts read back through SQL.
#[test]
fn injected_shift_degrades_health_while_control_stays_silent() {
    let feed = |shift_at: u64| -> Database {
        let db = db();
        let t = db.kernel.telemetry.clone();
        for i in 0..640u64 {
            let jitter = ((i * 7_919) % 101) as f64;
            let base = if i < shift_at { 1_000.0 } else { 50_000.0 };
            t.observe_ou_sample("agg_build", "execution_engine", base + jitter, 3.0);
            if i % 64 == 63 {
                t.observability_tick(i as f64 * 1e6);
            }
        }
        db
    };

    let mut control = feed(u64::MAX);
    let sid = control.create_session();
    let silent = control
        .execute(sid, "SELECT count(*) FROM ts_alerts", &[])
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    assert_eq!(silent, 0, "control arm fired alerts");
    assert_eq!(
        control.kernel.telemetry.counter_total("alerts_fired_total"),
        0
    );
    let health = control
        .execute(
            sid,
            "SELECT health FROM ts_stat_ou WHERE ou = 'agg_build'",
            &[],
        )
        .unwrap()
        .rows[0][0]
        .clone();
    assert_eq!(health, Value::Text("OK".into()));

    let mut shifted = feed(320);
    let sid = shifted.create_session();
    let drift_alerts = shifted
        .execute(
            sid,
            "SELECT count(*) FROM ts_alerts WHERE rule = 'ou_drift'",
            &[],
        )
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap();
    assert!(drift_alerts >= 1, "shift did not fire ou_drift alerts");
    assert!(shifted.kernel.telemetry.counter_total("alerts_fired_total") >= 1);
    let row = &shifted
        .execute(
            sid,
            "SELECT health, drift_score FROM ts_stat_ou WHERE ou = 'agg_build'",
            &[],
        )
        .unwrap()
        .rows[0];
    assert_ne!(row[0], Value::Text("OK".into()), "shifted OU still OK");
    assert!(
        row[1].as_float().unwrap() > 0.5,
        "shifted drift score too small: {:?}",
        row[1]
    );
}
