//! Profiler and time-series invariants over a fig5-style run: every
//! virtual-clock profiling interrupt lands in exactly one folded stack,
//! attribution sees both the DBMS and TScout sides of the house, and the
//! windowed time-series agrees with the final counter values after a
//! full drain.

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::noisetap::Database;
use tscout_suite::tscout::{CollectionMode, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::{run, RunOptions};
use tscout_suite::workloads::{Workload, Ycsb};

/// YCSB under kernel-continuous collection at 100% sampling with the
/// profiler armed at a fine period, fully drained at the end (the driver
/// drains the ring and takes a final time-series window).
fn profiled_run() -> Database {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 0xF16);
    k.noise_frac = 0.0;
    k.set_profile_period_ns(10_000.0);
    let mut db = Database::new(k);
    let mut w = Ycsb::new(2_000);
    w.setup(&mut db);
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    let opts = RunOptions {
        terminals: 2,
        duration_ns: 20e6,
        seed: 5,
        ..Default::default()
    };
    run(&mut db, &mut w, &opts);
    db
}

#[test]
fn folded_samples_sum_exactly_to_interrupts_fired() {
    let db = profiled_run();
    let p = &db.kernel.profiler;
    let fired = p.interrupts_fired();
    assert!(fired > 0, "the profiler must have sampled the run");
    let folded_total: u64 = p.folded().iter().map(|(_, e)| e.samples).sum();
    assert_eq!(
        fired, folded_total,
        "every interrupt lands in exactly one folded stack"
    );
}

#[test]
fn attribution_sees_both_dbms_and_tscout_stacks() {
    let db = profiled_run();
    let folded = db.kernel.profiler.folded();
    assert!(
        folded.iter().any(|(s, _)| s.starts_with("dbms")),
        "expected dbms-rooted stacks, got {:?}",
        folded.iter().map(|(s, _)| s).collect::<Vec<_>>()
    );
    assert!(
        folded.iter().any(|(s, _)| s.starts_with("tscout")),
        "expected tscout-rooted stacks, got {:?}",
        folded.iter().map(|(s, _)| s).collect::<Vec<_>>()
    );
    // Operator-level attribution under the dbms root.
    assert!(
        folded.iter().any(|(s, _)| s.contains(";ou:")),
        "expected per-OU frames in the dbms stacks"
    );

    let attr = db.kernel.profiler.attribution();
    assert_eq!(attr.total_interrupts, db.kernel.profiler.interrupts_fired());
    let ratio = attr
        .tscout_dbms_ratio()
        .expect("both sides sampled, ratio must exist");
    assert!(
        ratio.is_finite() && ratio > 0.0,
        "tscout/dbms overhead ratio must be finite and positive: {ratio}"
    );
}

#[test]
fn timeseries_agrees_with_final_counters_after_drain() {
    let db = profiled_run();
    let t = db.kernel.telemetry.clone();
    assert!(
        t.timeseries_len() >= 2,
        "the driver scrapes a window per pump plus a final one"
    );

    // Final counter value, summed across subsystem label sets.
    let delivered_now: u64 = ALL_SUBSYSTEMS
        .iter()
        .map(|s| t.counter_value("tscout_samples_delivered_total", &[("subsystem", s.name())]))
        .sum();
    assert!(delivered_now > 0, "100% sampling must deliver samples");

    // The last window was scraped after the full drain, so its cumulative
    // total must equal the live counter.
    let (last_total, first_total, rate) = t.with_registry(|r| {
        let ts = r.timeseries();
        let last = ts.len() - 1;
        (
            ts.total_in_window("tscout_samples_delivered_total", last),
            ts.total_in_window("tscout_samples_delivered_total", 0),
            ts.rate_per_sec("tscout_samples_delivered_total"),
        )
    });
    assert_eq!(
        last_total, delivered_now,
        "final window must capture the fully drained counter"
    );

    // rate() is (last - first) / elapsed; cross-check it against the
    // window totals it is defined over.
    let (t0, t1) = t.with_registry(|r| {
        let ts = r.timeseries();
        (
            ts.window(0).unwrap().end_ns,
            ts.window(ts.len() - 1).unwrap().end_ns,
        )
    });
    let expect = (last_total - first_total) as f64 / ((t1 - t0) / 1e9);
    assert!(
        (rate - expect).abs() <= 1e-6 * expect.max(1.0),
        "rate_per_sec {rate} must match (last-first)/elapsed {expect}"
    );
    assert!(rate.is_finite() && rate > 0.0);
}
