//! Randomized tests for cross-cutting invariants: record wire format,
//! sampling exactness, MVCC snapshot isolation, and the marker state
//! machine's resilience to arbitrary marker orderings.
//!
//! These were originally `proptest` properties; they are now driven by
//! the in-workspace deterministic RNG so the suite builds with no
//! crates.io access. Each test runs a fixed number of seeded cases, so
//! failures reproduce exactly.

use tscout_suite::rng::{RngExt, SeedableRng, StdRng};

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::tscout::{
    decode_record, encode_record, CollectionMode, ProbeSet, RawRecord, Sampler, Subsystem, TScout,
    TsConfig,
};

/// Wire format: encode/decode is the identity on valid records.
#[test]
fn record_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5EC0_4D01);
    for _ in 0..256 {
        let rec = RawRecord {
            ou: rng.random_range(0u64..1000),
            tid: rng.random_range(0u64..256),
            subsystem: rng.random_range(0u64..6),
            flags: rng.random_range(0u64..4),
            start_ns: rng.random_range(0u64..=u32::MAX as u64),
            elapsed_ns: rng.random_range(0u64..=u32::MAX as u64),
            metrics: (0..rng.random_range(0usize..16))
                .map(|_| rng.random::<u64>())
                .collect(),
            payload: (0..rng.random_range(0usize..32))
                .map(|_| rng.random::<u64>())
                .collect(),
        };
        let decoded = decode_record(&encode_record(&rec)).expect("round trip");
        assert_eq!(decoded, rec);
    }
}

/// Decoding never panics on arbitrary bytes.
#[test]
fn decode_is_total() {
    let mut rng = StdRng::seed_from_u64(0x00DE_C0DE);
    for _ in 0..256 {
        let len = rng.random_range(0usize..700);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
        let _ = decode_record(&bytes);
    }
}

/// Sampling: over any whole number of 100-event cycles, each thread
/// observes exactly `rate` hits per cycle.
#[test]
fn sampler_exactness() {
    let mut rng = StdRng::seed_from_u64(0x5A4D);
    for case in 0..256 {
        // Sweep all rates deterministically, randomize the rest.
        let rate = (case % 101) as u8;
        let threads = rng.random_range(1usize..6);
        let cycles = rng.random_range(1usize..4);
        let mut s = Sampler::new(42);
        s.set_rate(Subsystem::ExecutionEngine, rate);
        for t in 0..threads {
            let hits = (0..100 * cycles)
                .filter(|_| s.decide(t, Subsystem::ExecutionEngine))
                .count();
            assert_eq!(hits, rate as usize * cycles, "rate={rate} thread={t}");
        }
    }
}

/// MVCC: a reader's snapshot never changes mid-transaction, no matter
/// what other transactions commit around it.
#[test]
fn snapshot_isolation_holds() {
    use tscout_suite::noisetap::{Database, Value};
    let mut rng = StdRng::seed_from_u64(0x15_0C4A);
    for _ in 0..24 {
        let updates: Vec<i64> = (0..rng.random_range(1usize..12))
            .map(|_| rng.random_range(1i64..100))
            .collect();
        let mut db = Database::new(Kernel::with_seed(HardwareProfile::server_2x20(), 7));
        let writer = db.create_session();
        let reader = db.create_session();
        db.execute(writer, "CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        db.execute(writer, "INSERT INTO t VALUES (1, 0)", &[])
            .unwrap();

        db.begin(reader);
        let before = db
            .execute(reader, "SELECT v FROM t WHERE id = 1", &[])
            .unwrap()
            .rows[0][0]
            .clone();
        for v in &updates {
            db.execute(
                writer,
                "UPDATE t SET v = $1 WHERE id = 1",
                &[Value::Int(*v)],
            )
            .unwrap();
            let seen = db
                .execute(reader, "SELECT v FROM t WHERE id = 1", &[])
                .unwrap()
                .rows[0][0]
                .clone();
            assert_eq!(&seen, &before, "reader's snapshot drifted");
        }
        db.commit(reader).unwrap();
        let after = db
            .execute(reader, "SELECT v FROM t WHERE id = 1", &[])
            .unwrap()
            .rows[0][0]
            .clone();
        assert_eq!(after, Value::Int(*updates.last().unwrap()));
    }
}

/// Marker state machine: arbitrary marker orderings never panic, never
/// corrupt future collection, and never emit a sample from an unmatched
/// triple.
#[test]
fn marker_chaos_is_contained() {
    let mut rng = StdRng::seed_from_u64(0x000C_4A05);
    for _ in 0..256 {
        let ops: Vec<u8> = (0..rng.random_range(0usize..60))
            .map(|_| rng.random_range(0u8..6))
            .collect();
        let mut kernel = Kernel::with_seed(HardwareProfile::server_2x20(), 3);
        kernel.noise_frac = 0.0;
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
        let mut ts = TScout::deploy(&mut kernel, cfg).unwrap();
        let a = ts.register_ou("chaos_a", Subsystem::ExecutionEngine, 1);
        let b = ts.register_ou("chaos_b", Subsystem::ExecutionEngine, 1);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
        let task = kernel.create_task();
        ts.register_thread(&mut kernel, task);

        for op in &ops {
            match op {
                0 => ts.ou_begin(&mut kernel, task, a),
                1 => ts.ou_end(&mut kernel, task, a),
                2 => ts.ou_features(&mut kernel, task, a, &[1], &[]),
                3 => ts.ou_begin(&mut kernel, task, b),
                4 => ts.ou_end(&mut kernel, task, b),
                _ => ts.ou_features(&mut kernel, task, b, &[2], &[]),
            }
        }
        // After any chaos, a clean triple must still produce exactly one
        // new, well-formed sample.
        let chaos_samples = ts.drain_decoded().len();
        let _ = chaos_samples;
        ts.ou_begin(&mut kernel, task, a);
        kernel.charge_cpu(task, 10_000.0, 64);
        ts.ou_end(&mut kernel, task, a);
        ts.ou_features(&mut kernel, task, a, &[9], &[]);
        let fresh = ts.drain_decoded();
        assert_eq!(
            fresh.len(),
            1,
            "recovery triple must emit exactly one sample"
        );
        assert_eq!(fresh[0].features.as_slice(), &[9.0][..]);
        assert!(fresh[0].elapsed_ns > 0);
    }
}
