//! Property tests for cross-cutting invariants: record wire format,
//! sampling exactness, MVCC snapshot isolation, and the marker state
//! machine's resilience to arbitrary marker orderings.

use proptest::prelude::*;

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::tscout::{
    decode_record, encode_record, CollectionMode, ProbeSet, RawRecord, Sampler, Subsystem,
    TScout, TsConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wire format: encode/decode is the identity on valid records.
    #[test]
    fn record_round_trip(
        ou in 0u64..1000,
        tid in 0u64..256,
        subsystem in 0u64..6,
        flags in 0u64..4,
        start in any::<u32>(),
        elapsed in any::<u32>(),
        metrics in proptest::collection::vec(any::<u64>(), 0..16),
        payload in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let rec = RawRecord {
            ou, tid, subsystem, flags,
            start_ns: start as u64,
            elapsed_ns: elapsed as u64,
            metrics, payload,
        };
        let decoded = decode_record(&encode_record(&rec)).expect("round trip");
        prop_assert_eq!(decoded, rec);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..700)) {
        let _ = decode_record(&bytes);
    }

    /// Sampling: over any whole number of 100-event cycles, each thread
    /// observes exactly `rate` hits per cycle.
    #[test]
    fn sampler_exactness(rate in 0u8..=100, threads in 1usize..6, cycles in 1usize..4) {
        let mut s = Sampler::new(42);
        s.set_rate(Subsystem::ExecutionEngine, rate);
        for t in 0..threads {
            let hits = (0..100 * cycles)
                .filter(|_| s.decide(t, Subsystem::ExecutionEngine))
                .count();
            prop_assert_eq!(hits, rate as usize * cycles);
        }
    }

    /// MVCC: a reader's snapshot never changes mid-transaction, no matter
    /// what other transactions commit around it.
    #[test]
    fn snapshot_isolation_holds(updates in proptest::collection::vec(1i64..100, 1..12)) {
        use tscout_suite::noisetap::{Database, Value};
        let mut db = Database::new(Kernel::with_seed(HardwareProfile::server_2x20(), 7));
        let writer = db.create_session();
        let reader = db.create_session();
        db.execute(writer, "CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[]).unwrap();
        db.execute(writer, "INSERT INTO t VALUES (1, 0)", &[]).unwrap();

        db.begin(reader);
        let before = db
            .execute(reader, "SELECT v FROM t WHERE id = 1", &[])
            .unwrap()
            .rows[0][0]
            .clone();
        for v in &updates {
            db.execute(writer, "UPDATE t SET v = $1 WHERE id = 1", &[Value::Int(*v)]).unwrap();
            let seen = db
                .execute(reader, "SELECT v FROM t WHERE id = 1", &[])
                .unwrap()
                .rows[0][0]
                .clone();
            prop_assert_eq!(&seen, &before, "reader's snapshot drifted");
        }
        db.commit(reader).unwrap();
        let after = db
            .execute(reader, "SELECT v FROM t WHERE id = 1", &[])
            .unwrap()
            .rows[0][0]
            .clone();
        prop_assert_eq!(after, Value::Int(*updates.last().unwrap()));
    }

    /// Marker state machine: arbitrary marker orderings never panic,
    /// never corrupt future collection, and never emit a sample from an
    /// unmatched triple.
    #[test]
    fn marker_chaos_is_contained(ops in proptest::collection::vec(0u8..6, 0..60)) {
        let mut kernel = Kernel::with_seed(HardwareProfile::server_2x20(), 3);
        kernel.noise_frac = 0.0;
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
        let mut ts = TScout::deploy(&mut kernel, cfg).unwrap();
        let a = ts.register_ou("chaos_a", Subsystem::ExecutionEngine, 1);
        let b = ts.register_ou("chaos_b", Subsystem::ExecutionEngine, 1);
        ts.set_sampling_rate(Subsystem::ExecutionEngine, 100);
        let task = kernel.create_task();
        ts.register_thread(&mut kernel, task);

        for op in &ops {
            match op {
                0 => ts.ou_begin(&mut kernel, task, a),
                1 => ts.ou_end(&mut kernel, task, a),
                2 => ts.ou_features(&mut kernel, task, a, &[1], &[]),
                3 => ts.ou_begin(&mut kernel, task, b),
                4 => ts.ou_end(&mut kernel, task, b),
                _ => ts.ou_features(&mut kernel, task, b, &[2], &[]),
            }
        }
        // After any chaos, a clean triple must still produce exactly one
        // new, well-formed sample.
        let chaos_samples = ts.drain_decoded().len();
        let _ = chaos_samples;
        ts.ou_begin(&mut kernel, task, a);
        kernel.charge_cpu(task, 10_000.0, 64);
        ts.ou_end(&mut kernel, task, a);
        ts.ou_features(&mut kernel, task, a, &[9], &[]);
        let fresh = ts.drain_decoded();
        prop_assert_eq!(fresh.len(), 1, "recovery triple must emit exactly one sample");
        prop_assert_eq!(fresh[0].features.as_slice(), &[9.0][..]);
        prop_assert!(fresh[0].elapsed_ns > 0);
    }
}
