//! Operator-plane integration tests: the embedded tscout-obsd daemon
//! must be a pure observer of the collection pipeline.
//!
//! 1. **Bit-identity** — a collected YCSB run with the daemon serving
//!    and a client hammering every endpoint produces a training-data
//!    archive byte-identical to a server-off run, and the pipeline
//!    accounting invariant (`begun = delivered + lost`) still closes.
//! 2. **Driver wiring** — `RunOptions::obsd` starts the daemon on an
//!    ephemeral port, writes the bound address to the configured file,
//!    and serves live requests for the duration of the run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tscout_suite::archive::ArchiveOptions;
use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::models::ModelKind;
use tscout_suite::noisetap::Database;
use tscout_suite::obsd::{client, ObsdConfig, ObsdServer};
use tscout_suite::tscout::{CollectionMode, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::{run_with_lifecycle, ModelLifecycle, RunOptions, Ycsb};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tscout_obsd_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A loaded YCSB database with full collection attached, plus the
/// workload instance holding its prepared statements.
fn collected_db(seed: u64) -> (Database, Ycsb) {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), seed);
    k.noise_frac = 0.0;
    let mut db = Database::new(k);
    let mut w = Ycsb::new(600);
    use tscout_suite::workloads::driver::Workload;
    w.setup(&mut db);
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    (db, w)
}

/// One collected YCSB run archiving into `dir`; if `server` is true the
/// daemon serves the run's telemetry while a client thread hammers
/// `/metrics`, the table API, and the SQL endpoint until the run ends.
/// Returns the number of successful hammer requests.
fn collected_run(dir: &std::path::Path, seed: u64, server: bool) -> (Database, u64) {
    let (mut db, mut w) = collected_db(seed);
    let mut lc = ModelLifecycle::new(
        &dir.join("archive"),
        ArchiveOptions::default(),
        ModelKind::Ridge,
        7,
        120e6,
        db.kernel.telemetry.clone(),
    )
    .unwrap();
    let opts = RunOptions {
        terminals: 2,
        duration_ns: 400e6,
        seed,
        ..Default::default()
    };
    if !server {
        run_with_lifecycle(&mut db, &mut w, &opts, &mut lc);
        return (db, 0);
    }
    let srv = ObsdServer::start(ObsdConfig::default(), db.kernel.telemetry.clone()).unwrap();
    let addr = srv.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let hammer = {
        let (stop, ok, addr) = (Arc::clone(&stop), Arc::clone(&ok), addr.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for probe in [
                    client::get(&addr, "/metrics"),
                    client::get(&addr, "/api/v1/ou"),
                    client::get(&addr, "/healthz"),
                    client::post(&addr, "/api/v1/sql", "SELECT * FROM ts_stat_pipeline"),
                ] {
                    if matches!(probe, Ok((200, _))) {
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        })
    };
    run_with_lifecycle(&mut db, &mut w, &opts, &mut lc);
    stop.store(true, Ordering::SeqCst);
    hammer.join().unwrap();
    srv.shutdown();
    (db, ok.load(Ordering::SeqCst))
}

/// Every file in the archive directory, relative path → bytes.
fn archive_bytes(dir: &std::path::Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &std::path::Path, dir: &std::path::Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for e in std::fs::read_dir(dir).unwrap().flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(root, &p, out);
            } else {
                let rel = p.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&p).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn hammered_run_archives_bit_identical_samples() {
    let off_dir = temp_dir("off");
    let on_dir = temp_dir("on");
    let (db_off, _) = collected_run(&off_dir, 0x0B5D, false);
    let (db_on, served) = collected_run(&on_dir, 0x0B5D, true);
    assert!(
        served > 0,
        "the hammer must have landed requests during the run"
    );

    // The archives are byte-identical, file for file.
    let off = archive_bytes(&off_dir.join("archive"));
    let on = archive_bytes(&on_dir.join("archive"));
    assert!(!off.is_empty(), "server-off run must archive samples");
    let off_names: Vec<&String> = off.keys().collect();
    let on_names: Vec<&String> = on.keys().collect();
    assert_eq!(off_names, on_names, "archive file sets differ");
    for (name, bytes) in &off {
        assert_eq!(
            Some(bytes),
            on.get(name),
            "archive file {name} differs with the server on"
        );
    }

    // The registries agree exactly on the pipeline counters too.
    for db in [&db_off, &db_on] {
        let t = &db.kernel.telemetry;
        let begun = t.counter_total("tscout_samples_begun_total");
        let delivered = t.counter_total("tscout_samples_delivered_total");
        let lost = t.counter_total("tscout_samples_lost_total");
        assert!(begun > 0, "run must collect samples");
        assert_eq!(
            begun,
            delivered + lost,
            "accounting must close: begun = delivered + lost"
        );
    }
    let t_off = &db_off.kernel.telemetry;
    let t_on = &db_on.kernel.telemetry;
    for c in [
        "tscout_samples_begun_total",
        "tscout_samples_delivered_total",
        "tscout_samples_lost_total",
    ] {
        assert_eq!(
            t_off.counter_total(c),
            t_on.counter_total(c),
            "{c} differs with the server on"
        );
    }
    std::fs::remove_dir_all(&off_dir).ok();
    std::fs::remove_dir_all(&on_dir).ok();
}

#[test]
fn run_options_start_the_daemon_and_write_the_addr_file() {
    let dir = temp_dir("wiring");
    std::fs::create_dir_all(&dir).unwrap();
    let addr_file = dir.join("obsd.addr");
    let (mut db, mut w) = collected_db(0x0B5E);
    let mut lc = ModelLifecycle::new(
        &dir.join("archive"),
        ArchiveOptions::default(),
        ModelKind::Ridge,
        7,
        f64::MAX,
        db.kernel.telemetry.clone(),
    )
    .unwrap();
    let opts = RunOptions {
        terminals: 2,
        duration_ns: 300e6,
        seed: 0x0B5E,
        obsd: Some(ObsdConfig {
            addr_file: Some(addr_file.clone()),
            ..Default::default()
        }),
        ..Default::default()
    };
    // Poll the addr file from a second thread and hit the daemon while
    // the run is still going; the server stops when the run returns.
    let served = Arc::new(AtomicU64::new(0));
    let probe = {
        let (served, addr_file) = (Arc::clone(&served), addr_file.clone());
        std::thread::spawn(move || {
            for _ in 0..400 {
                if let Ok(addr) = std::fs::read_to_string(&addr_file) {
                    if let Ok((200, body)) = client::get(addr.trim(), "/healthz") {
                        assert!(body.contains("\"status\""), "{body}");
                        served.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };
    run_with_lifecycle(&mut db, &mut w, &opts, &mut lc);
    probe.join().unwrap();
    let addr = std::fs::read_to_string(&addr_file).expect("addr file written");
    let parsed: std::net::SocketAddr = addr.trim().parse().expect("addr file holds host:port");
    assert_ne!(parsed.port(), 0, "bound port is concrete, not ephemeral-0");
    assert_eq!(
        served.load(Ordering::SeqCst),
        1,
        "daemon must have served a live request during the run"
    );
    // The daemon stops with the run: the port no longer accepts.
    assert!(client::get(addr.trim(), "/healthz").is_err());
    std::fs::remove_dir_all(&dir).ok();
}
