//! End-to-end lost-sample accounting (paper §5.3): under forced ring
//! pressure, every sample that began collection must be accounted for —
//! delivered to the Processor or counted lost with a reason. No sample
//! vanishes, per subsystem and per OU.

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::noisetap::Database;
use tscout_suite::tscout::{CollectionMode, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::{run, RunOptions};
use tscout_suite::workloads::{Workload, Ycsb};

/// Run YCSB against a deliberately tiny ring at 100% sampling so the
/// collector overwrites records, then drain everything that survived.
fn pressured_run(ring_capacity: usize) -> Database {
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 0x7E1E);
    k.noise_frac = 0.0;
    let mut db = Database::new(k);
    let mut w = Ycsb::new(2_000);
    w.setup(&mut db);
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = ring_capacity;
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    let opts = RunOptions {
        terminals: 4,
        duration_ns: 20e6,
        seed: 9,
        ..Default::default()
    };
    run(&mut db, &mut w, &opts);
    // Final drain: after this nothing is in flight or in the ring, so the
    // accounting identity must hold exactly.
    let _ = db.tscout_mut().unwrap().drain_decoded();
    db
}

#[test]
fn every_begun_sample_is_delivered_or_lost_per_subsystem() {
    let db = pressured_run(8);
    let t = db.kernel.telemetry.clone();
    let ts = db.tscout().unwrap();
    assert_eq!(ts.ring_len(), 0, "final drain must empty the ring");

    let mut any_lost = 0u64;
    for s in ALL_SUBSYSTEMS {
        let label = [("subsystem", s.name())];
        let begun = t.counter_value("tscout_samples_begun_total", &label);
        let delivered = t.counter_value("tscout_samples_delivered_total", &label);
        // Lost is labeled {subsystem, reason}; sum across reasons.
        let lost: u64 = t.with_registry(|r| {
            r.counters_named("tscout_samples_lost_total")
                .iter()
                .filter(|(k, _)| {
                    k.labels
                        .iter()
                        .any(|(n, v)| n == "subsystem" && v == s.name())
                })
                .map(|(_, v)| *v)
                .sum()
        });
        assert_eq!(
            begun,
            delivered + lost,
            "{}: begun {} != delivered {} + lost {}",
            s.name(),
            begun,
            delivered,
            lost
        );
        any_lost += lost;
    }
    assert!(
        any_lost > 0,
        "an 8-slot ring at 100% sampling must overwrite"
    );

    // The aggregate view agrees with the per-subsystem identity.
    let totals = ts.loss_totals();
    assert_eq!(totals.begun, totals.delivered + totals.lost);
    assert_eq!(totals.lost, any_lost);
}

#[test]
fn per_ou_accounting_matches_subsystem_totals() {
    let db = pressured_run(8);
    let t = db.kernel.telemetry.clone();

    let sum_named = |name: &str| -> u64 { t.counter_total(name) };
    // Every per-subsystem counter has a per-OU shadow; grand totals match.
    assert_eq!(
        sum_named("tscout_samples_begun_total"),
        sum_named("tscout_ou_samples_begun_total")
    );
    assert_eq!(
        sum_named("tscout_samples_delivered_total"),
        sum_named("tscout_ou_samples_delivered_total")
    );
    assert_eq!(
        sum_named("tscout_samples_lost_total"),
        sum_named("tscout_ou_samples_lost_total")
    );

    // And the per-OU identity holds for each OU individually.
    let ous: std::collections::BTreeSet<String> = t.with_registry(|r| {
        r.counters_named("tscout_ou_samples_begun_total")
            .iter()
            .flat_map(|(k, _)| k.labels.iter().map(|(_, v)| v.clone()))
            .collect()
    });
    assert!(!ous.is_empty());
    for ou in &ous {
        let label = [("ou", ou.as_str())];
        let begun = t.counter_value("tscout_ou_samples_begun_total", &label);
        let delivered = t.counter_value("tscout_ou_samples_delivered_total", &label);
        let lost: u64 = t.with_registry(|r| {
            r.counters_named("tscout_ou_samples_lost_total")
                .iter()
                .filter(|(k, _)| k.labels.iter().any(|(n, v)| n == "ou" && v == ou))
                .map(|(_, v)| *v)
                .sum()
        });
        assert_eq!(
            begun,
            delivered + lost,
            "OU {ou}: {begun} != {delivered} + {lost}"
        );
    }
}

#[test]
fn generous_ring_loses_nothing() {
    let db = pressured_run(1 << 20);
    let ts = db.tscout().unwrap();
    let totals = ts.loss_totals();
    assert!(totals.begun > 0);
    assert_eq!(totals.lost, 0, "a huge ring must not overwrite");
    assert_eq!(totals.begun, totals.delivered);
}
