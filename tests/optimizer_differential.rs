//! Differential correctness for the load-time optimizer.
//!
//! The optimizer's contract is absolute: for any verified program, the
//! optimized form must (a) re-verify and (b) be observationally
//! equivalent — same `R0`, same map contents, same ring records, byte
//! for byte. This suite enforces the contract two ways:
//!
//! * **adversarially**: thousands of seeded random programs with loops
//!   (the `verifier_differential` generator), each executed optimized
//!   and unoptimized against fresh identical map registries, comparing
//!   every observable output;
//! * **end-to-end**: the real codegen Collector triple (BEGIN / END /
//!   FEATURES) across probe layouts, comparing the published sample
//!   bytes and asserting the paper-motivated win — each program
//!   *executes* at least 15% fewer instructions after optimization.

use tscout_suite::rng::{RngExt, SeedableRng, StdRng};

use tscout_suite::bpf::insn::{AluOp, Cond, Helper, Insn, Reg, Size, Src};
use tscout_suite::bpf::maps::MapDef;
use tscout_suite::bpf::opt::{optimize, OptOptions};
use tscout_suite::bpf::vm::{NullWorld, Vm};
use tscout_suite::bpf::{verify, MapId, MapRegistry};
use tscout_suite::tscout::codegen::{
    encode_ctx, gen_begin, gen_end, gen_features, ProbeLayout, CTX_BYTES,
};

fn maps() -> MapRegistry {
    let mut m = MapRegistry::new();
    m.create(MapDef::hash("h", 8, 16, 32));
    m.create(MapDef::stack("s", 8, 8));
    m.create(MapDef::perf_event_array("r", 16));
    m
}

// ---------------------------------------------------------------------
// Random-program generator (the verifier_differential recipe, biased
// a little harder toward counted loops so the unroller gets exercise).
// ---------------------------------------------------------------------

fn arb_reg(rng: &mut StdRng) -> Reg {
    Reg(rng.random_range(0u8..=10))
}

fn arb_imm(rng: &mut StdRng) -> i64 {
    match rng.random_range(0..8) {
        0 => i64::MIN,
        1 => i64::MAX,
        2 => -1,
        3 => rng.random_range(0i64..128),
        _ => rng.random::<u64>() as i64,
    }
}

fn arb_src(rng: &mut StdRng) -> Src {
    if rng.random_bool(0.5) {
        Src::Reg(arb_reg(rng))
    } else {
        Src::Imm(arb_imm(rng))
    }
}

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Mod,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Arsh,
    AluOp::Mov,
    AluOp::Neg,
];

const SIZES: [Size; 4] = [Size::B1, Size::B2, Size::B4, Size::B8];

const CONDS: [Cond; 11] = [
    Cond::Eq,
    Cond::Ne,
    Cond::Lt,
    Cond::Le,
    Cond::Gt,
    Cond::Ge,
    Cond::SLt,
    Cond::SLe,
    Cond::SGt,
    Cond::SGe,
    Cond::Set,
];

const HELPERS: [Helper; 11] = [
    Helper::MapLookup,
    Helper::MapUpdate,
    Helper::MapDelete,
    Helper::MapPush,
    Helper::MapPop,
    Helper::PerfEventReadBuf,
    Helper::ReadTaskIo,
    Helper::ReadTcpSock,
    Helper::PerfEventOutput,
    Helper::KtimeGetNs,
    Helper::GetCurrentPidTgid,
];

fn arb_insn(rng: &mut StdRng) -> Insn {
    if rng.random_bool(0.25) {
        return Insn::Alu {
            op: AluOp::Mov,
            dst: arb_reg(rng),
            src: Src::Imm(rng.random_range(-600i64..600)),
        };
    }
    match rng.random_range(0..7) {
        0 => Insn::Alu {
            op: ALU_OPS[rng.random_range(0..ALU_OPS.len())],
            dst: arb_reg(rng),
            src: arb_src(rng),
        },
        1 => Insn::Load {
            size: SIZES[rng.random_range(0..SIZES.len())],
            dst: arb_reg(rng),
            base: arb_reg(rng),
            off: rng.random_range(-520i32..64),
        },
        2 => Insn::Store {
            size: SIZES[rng.random_range(0..SIZES.len())],
            base: arb_reg(rng),
            off: rng.random_range(-520i32..64),
            src: arb_src(rng),
        },
        3 => Insn::Jump {
            cond: if rng.random_bool(0.7) {
                Some((
                    CONDS[rng.random_range(0..CONDS.len())],
                    arb_reg(rng),
                    arb_src(rng),
                ))
            } else {
                None
            },
            off: rng.random_range(-8i32..8),
        },
        4 => Insn::Call {
            helper: HELPERS[rng.random_range(0..HELPERS.len())],
        },
        5 => Insn::LoadMap {
            dst: Reg(1),
            map: MapId(rng.random_range(0u32..4)),
        },
        _ => Insn::Exit,
    }
}

/// A canonical counted loop over random straight-line body material —
/// guaranteed back edges so the unroller runs on every seed.
fn arb_counted_loop(rng: &mut StdRng) -> Vec<Insn> {
    let ctr = Reg(rng.random_range(6u8..=9));
    let acc = Reg(rng.random_range(6u8..=9));
    let bound = rng.random_range(1i64..12);
    let step = rng.random_range(1i64..3);
    let mut prog = vec![
        Insn::Alu {
            op: AluOp::Mov,
            dst: acc,
            src: Src::Imm(rng.random_range(0i64..100)),
        },
        Insn::Alu {
            op: AluOp::Mov,
            dst: ctr,
            src: Src::Imm(0),
        },
    ];
    let body_len = rng.random_range(1usize..4);
    prog.push(Insn::Jump {
        cond: Some((Cond::Ge, ctr, Src::Imm(bound))),
        off: (body_len + 2) as i32,
    });
    for _ in 0..body_len {
        let op = [AluOp::Add, AluOp::Xor, AluOp::Mul][rng.random_range(0..3)];
        prog.push(Insn::Alu {
            op,
            dst: acc,
            src: if acc == ctr || rng.random_bool(0.5) {
                Src::Imm(rng.random_range(1i64..50))
            } else {
                Src::Reg(ctr)
            },
        });
    }
    prog.push(Insn::Alu {
        op: AluOp::Add,
        dst: ctr,
        src: Src::Imm(step),
    });
    prog.push(Insn::Jump {
        cond: None,
        off: -(body_len as i32 + 3),
    });
    prog.push(Insn::Alu {
        op: AluOp::Mov,
        dst: Reg(0),
        src: Src::Reg(acc),
    });
    prog.push(Insn::Exit);
    prog
}

/// For every verified random program, the optimized form re-verifies
/// and every observable output matches, while never executing more
/// instructions than the original.
#[test]
fn optimized_random_programs_are_observationally_identical() {
    let mut rng = StdRng::seed_from_u64(0x0917_CAFE);
    let total = 4096usize;
    let mut accepted = 0usize;
    let mut improved = 0usize;
    for i in 0..total {
        // 1 in 4 programs is a guaranteed counted loop; the rest are
        // adversarial soup (mostly exercising "optimizer must not
        // break weird-but-verified programs").
        let prog: Vec<Insn> = if i % 4 == 0 {
            arb_counted_loop(&mut rng)
        } else {
            let len = rng.random_range(1usize..32);
            let mut p: Vec<Insn> = (0..len).map(|_| arb_insn(&mut rng)).collect();
            p.push(Insn::Exit);
            p
        };
        let ctx: Vec<u8> = (0..64).map(|_| rng.random_range(0u8..=255)).collect();
        let m0 = maps();
        if verify(&prog, &m0, 64).is_err() {
            continue;
        }
        accepted += 1;
        let opt = optimize(&prog, &m0, 64, &OptOptions::default()).unwrap_or_else(|e| {
            panic!(
                "optimizer failed on a verified program: {e}\n{}",
                tscout_suite::bpf::insn::disassemble(&prog)
            )
        });

        let mut ma = maps();
        let mut mb = maps();
        let mut wa = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        let mut wb = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        let ra = Vm::run(&prog, &ctx, &mut ma, &mut wa).expect("unoptimized runs");
        let rb = Vm::run(&opt.insns, &ctx, &mut mb, &mut wb).expect("optimized runs");
        assert_eq!(
            ra.0,
            rb.0,
            "r0 differs\n{}",
            diff_context(&prog, &opt.insns)
        );
        for id in 0..ma.len() as u32 {
            assert_eq!(
                ma.dump(MapId(id)),
                mb.dump(MapId(id)),
                "map {id} differs\n{}",
                diff_context(&prog, &opt.insns)
            );
        }
        assert!(
            rb.1.insns <= ra.1.insns,
            "optimizer pessimized execution ({} -> {})\n{}",
            ra.1.insns,
            rb.1.insns,
            diff_context(&prog, &opt.insns)
        );
        if rb.1.insns < ra.1.insns {
            improved += 1;
        }
    }
    println!("accepted {accepted}/{total}, improved {improved}");
    assert!(accepted > 400, "property near-vacuous: {accepted} accepted");
    assert!(
        improved > accepted / 4,
        "optimizer barely fires: {improved}/{accepted} improved"
    );
}

fn diff_context(orig: &[Insn], opt: &[Insn]) -> String {
    format!(
        "--- original ---\n{}--- optimized ---\n{}",
        tscout_suite::bpf::insn::disassemble(orig),
        tscout_suite::bpf::insn::disassemble(opt)
    )
}

// ---------------------------------------------------------------------
// Collector-triple differential: the programs that actually ship.
// ---------------------------------------------------------------------

struct Triple {
    maps: MapRegistry,
    ring: MapId,
    begin: Vec<Insn>,
    end: Vec<Insn>,
    features: Vec<Insn>,
}

fn collector_triple(p: &ProbeLayout) -> Triple {
    let mut maps = MapRegistry::new();
    let depth = maps.create(MapDef::hash("depth", 8, 8, 256));
    let begin_map = maps.create(MapDef::hash("begin", 8, p.snap_words() * 8, 1024));
    let done = maps.create(MapDef::hash("done", 8, p.done_words() * 8, 256));
    let ring = maps.create(MapDef::perf_event_array("ring", 64));
    Triple {
        begin: gen_begin(p, depth, begin_map),
        end: gen_end(p, depth, begin_map, done),
        features: gen_features(p, done, ring),
        maps,
        ring,
    }
}

/// Drive one begin/end/features cycle, returning the drained sample
/// records plus per-program executed-instruction counts.
fn drive(triple: &mut Triple, progs: [&[Insn]; 3]) -> (Vec<Vec<u8>>, [u64; 3]) {
    let ctx = encode_ctx(5, 42, 1, 0, &[77, 88, 99]);
    let mut world = NullWorld {
        time_ns: 100,
        pid_tgid: 42,
    };
    let mut executed = [0u64; 3];
    let (r0, s) = Vm::run(progs[0], &ctx, &mut triple.maps, &mut world).expect("begin runs");
    assert_eq!(r0, 0);
    executed[0] = s.insns;
    world.time_ns = 600;
    let (r0, s) = Vm::run(progs[1], &ctx, &mut triple.maps, &mut world).expect("end runs");
    assert_eq!(r0, 0);
    executed[1] = s.insns;
    let (r0, s) = Vm::run(progs[2], &ctx, &mut triple.maps, &mut world).expect("features runs");
    assert_eq!(r0, 0);
    executed[2] = s.insns;
    (triple.maps.ring_drain(triple.ring, 16), executed)
}

#[test]
fn collector_programs_emit_bit_identical_samples_with_fewer_executed_insns() {
    let layouts = [
        ProbeLayout {
            cpu: true,
            disk: true,
            net: true,
        },
        ProbeLayout {
            cpu: true,
            disk: false,
            net: true,
        },
        ProbeLayout {
            cpu: false,
            disk: false,
            net: false,
        },
    ];
    for p in layouts {
        let mut plain = collector_triple(&p);
        let opts = OptOptions::default();
        let ob = optimize(&plain.begin, &plain.maps, CTX_BYTES, &opts).expect("begin optimizes");
        let oe = optimize(&plain.end, &plain.maps, CTX_BYTES, &opts).expect("end optimizes");
        let of =
            optimize(&plain.features, &plain.maps, CTX_BYTES, &opts).expect("features optimizes");

        let (samples_plain, exec_plain) = {
            let progs = [
                plain.begin.clone(),
                plain.end.clone(),
                plain.features.clone(),
            ];
            drive(&mut plain, [&progs[0], &progs[1], &progs[2]])
        };
        let mut optimized = collector_triple(&p);
        let (samples_opt, exec_opt) = drive(&mut optimized, [&ob.insns, &oe.insns, &of.insns]);

        assert_eq!(
            samples_plain, samples_opt,
            "sample bytes differ for layout {p:?}"
        );
        assert_eq!(samples_plain.len(), 1, "one sample per cycle");

        // Map state after the cycle matches too (depth/begin/done maps).
        for id in 0..plain.maps.len() as u32 {
            assert_eq!(
                plain.maps.dump(MapId(id)),
                optimized.maps.dump(MapId(id)),
                "map {id} differs for layout {p:?}"
            );
        }

        for (name, (before, after)) in ["begin", "end", "features"]
            .iter()
            .zip(exec_plain.iter().zip(exec_opt.iter()))
        {
            let reduction = 100.0 * (*before as f64 - *after as f64) / *before as f64;
            println!("{p:?} {name}: executed {before} -> {after} ({reduction:.1}% fewer)");
            assert!(after <= before, "{name} for {p:?} pessimized");
            // The paper-motivated bar applies to programs that snapshot
            // something; the no-probe layout is a ~30-insn bookkeeping
            // stub with no loops or redundant checks to shave.
            if p.cpu || p.disk || p.net {
                assert!(
                    reduction >= 15.0,
                    "{name} for {p:?} shrank only {reduction:.1}% ({before} -> {after} executed)"
                );
            }
        }
    }
}

/// The optimizer-on loader path and the optimizer-off loader path
/// produce the same observable state for the collector triple — the
/// wiring (not just the passes) preserves samples.
#[test]
fn loader_level_toggle_is_observationally_neutral() {
    use tscout_suite::bpf::Loader;
    let p = ProbeLayout {
        cpu: true,
        disk: true,
        net: true,
    };
    let mut rings = Vec::new();
    for optimize_on in [false, true] {
        let mut loader = Loader::new();
        loader.set_optimize(optimize_on);
        let depth = loader.maps.create(MapDef::hash("depth", 8, 8, 256));
        let begin_map = loader
            .maps
            .create(MapDef::hash("begin", 8, p.snap_words() * 8, 1024));
        let done = loader
            .maps
            .create(MapDef::hash("done", 8, p.done_words() * 8, 256));
        let ring = loader.maps.create(MapDef::perf_event_array("ring", 64));
        let b = loader
            .load("begin", gen_begin(&p, depth, begin_map), CTX_BYTES)
            .expect("begin loads");
        let e = loader
            .load("end", gen_end(&p, depth, begin_map, done), CTX_BYTES)
            .expect("end loads");
        let f = loader
            .load("features", gen_features(&p, done, ring), CTX_BYTES)
            .expect("features loads");
        if optimize_on {
            assert_eq!(loader.opt_fallbacks(), 0, "no fallbacks on real programs");
            assert!(loader.opt_totals().removed_total() > 0);
        }
        let ctx = encode_ctx(5, 42, 1, 0, &[77, 88, 99]);
        let mut world = NullWorld {
            time_ns: 100,
            pid_tgid: 42,
        };
        assert_eq!(loader.run(b, &ctx, &mut world).unwrap().0, 0);
        world.time_ns = 600;
        assert_eq!(loader.run(e, &ctx, &mut world).unwrap().0, 0);
        assert_eq!(loader.run(f, &ctx, &mut world).unwrap().0, 0);
        rings.push(loader.maps.ring_drain(ring, 16));
    }
    assert_eq!(rings[0], rings[1], "loader toggle changed sample bytes");
}
