//! Randomized tests for the BPF substrate: the verifier's guarantees
//! must hold at runtime.
//!
//! The central property mirrors the kernel's contract: **any program the
//! verifier accepts executes without a memory fault**, for arbitrary
//! context bytes. Conversely the verifier must never panic on garbage
//! programs. Random programs are generated over the full instruction
//! set, biased toward plausible shapes so a useful fraction verifies.
//!
//! Originally `proptest` properties; now driven by the in-workspace
//! deterministic RNG (fixed seeds, fixed case counts) so the suite
//! builds offline and failures reproduce exactly.

use tscout_suite::rng::{RngExt, SeedableRng, StdRng};

use tscout_suite::bpf::insn::{AluOp, Cond, Helper, Insn, Reg, Size, Src};
use tscout_suite::bpf::maps::MapDef;
use tscout_suite::bpf::vm::{NullWorld, Vm, VmError};
use tscout_suite::bpf::{verify, MapId, MapRegistry};

fn maps() -> MapRegistry {
    let mut m = MapRegistry::new();
    m.create(MapDef::hash("h", 8, 16, 32));
    m.create(MapDef::stack("s", 8, 8));
    m.create(MapDef::perf_event_array("r", 16));
    m
}

fn arb_reg(rng: &mut StdRng) -> Reg {
    Reg(rng.random_range(0u8..=10))
}

fn arb_src(rng: &mut StdRng) -> Src {
    if rng.random_bool(0.5) {
        Src::Reg(arb_reg(rng))
    } else {
        Src::Imm(rng.random_range(-600i64..600))
    }
}

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Mod,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Lsh,
    AluOp::Rsh,
    AluOp::Arsh,
    AluOp::Mov,
    AluOp::Neg,
];

const SIZES: [Size; 4] = [Size::B1, Size::B2, Size::B4, Size::B8];

const CONDS: [Cond; 5] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::SGt];

const HELPERS: [Helper; 11] = [
    Helper::MapLookup,
    Helper::MapUpdate,
    Helper::MapDelete,
    Helper::MapPush,
    Helper::MapPop,
    Helper::PerfEventReadBuf,
    Helper::ReadTaskIo,
    Helper::ReadTcpSock,
    Helper::PerfEventOutput,
    Helper::KtimeGetNs,
    Helper::GetCurrentPidTgid,
];

fn arb_insn(rng: &mut StdRng) -> Insn {
    // Extra weight on `mov dst, imm`: it initializes registers, which is
    // what most random programs need to get past the verifier, keeping
    // the verified-programs property from going vacuous.
    if rng.random_bool(0.25) {
        return Insn::Alu {
            op: AluOp::Mov,
            dst: arb_reg(rng),
            src: Src::Imm(rng.random_range(-600i64..600)),
        };
    }
    match rng.random_range(0..7) {
        0 => Insn::Alu {
            op: ALU_OPS[rng.random_range(0..ALU_OPS.len())],
            dst: arb_reg(rng),
            src: arb_src(rng),
        },
        1 => Insn::Load {
            size: SIZES[rng.random_range(0..SIZES.len())],
            dst: arb_reg(rng),
            base: arb_reg(rng),
            off: rng.random_range(-520i32..64),
        },
        2 => Insn::Store {
            size: SIZES[rng.random_range(0..SIZES.len())],
            base: arb_reg(rng),
            off: rng.random_range(-520i32..64),
            src: arb_src(rng),
        },
        // Forward offsets only: this suite exercises the loop-free
        // fragment; random *loops* live in `verifier_differential.rs`.
        3 => Insn::Jump {
            cond: if rng.random_bool(0.5) {
                Some((
                    CONDS[rng.random_range(0..CONDS.len())],
                    arb_reg(rng),
                    arb_src(rng),
                ))
            } else {
                None
            },
            off: rng.random_range(0i32..6),
        },
        4 => Insn::Call {
            helper: HELPERS[rng.random_range(0..HELPERS.len())],
        },
        5 => Insn::LoadMap {
            dst: Reg(1),
            map: MapId(rng.random_range(0u32..4)),
        },
        _ => Insn::Exit,
    }
}

fn arb_body(rng: &mut StdRng, max_len: usize) -> Vec<Insn> {
    let len = rng.random_range(1..max_len);
    (0..len).map(|_| arb_insn(rng)).collect()
}

/// The kernel contract: verified ⟹ no runtime fault, for any ctx.
#[test]
fn verified_programs_never_fault() {
    let mut rng = StdRng::seed_from_u64(0xB9F_50D);
    let mut verified = 0usize;
    for _ in 0..2048 {
        let mut prog = arb_body(&mut rng, 40);
        prog.push(Insn::Exit); // give random programs a chance to terminate
        let ctx: Vec<u8> = (0..rng.random_range(0usize..64))
            .map(|_| rng.random_range(0u8..=255))
            .collect();
        let mut m = maps();
        if verify(&prog, &m, 64).is_ok() {
            verified += 1;
            let mut world = NullWorld::default();
            match Vm::run(&prog, &ctx, &mut m, &mut world) {
                Ok(_) => {}
                Err(e) => {
                    // This generator emits forward jumps only, so fuel
                    // exhaustion is impossible here; any fault is a
                    // verifier soundness bug.
                    panic!(
                        "verifier accepted a faulting program: {e}\n{}",
                        tscout_suite::bpf::insn::disassemble(&prog)
                    );
                }
            }
        }
    }
    // The generator is biased toward plausible shapes; if nothing ever
    // verifies the property above is vacuous.
    assert!(
        verified > 20,
        "only {verified}/2048 programs verified — generator broken?"
    );
}

/// The verifier itself must be total: never panic, always an answer.
#[test]
fn verifier_is_total() {
    let mut rng = StdRng::seed_from_u64(0x0007_07A1);
    for _ in 0..512 {
        let len = rng.random_range(0usize..60);
        let prog: Vec<Insn> = (0..len).map(|_| arb_insn(&mut rng)).collect();
        let ctx_size = rng.random_range(0usize..128);
        let m = maps();
        let _ = verify(&prog, &m, ctx_size);
    }
}

/// Division and modulo never trap at runtime (eBPF semantics), even in
/// unverified programs, as long as addresses are valid.
#[test]
fn div_mod_never_trap() {
    use tscout_suite::bpf::asm::ProgramBuilder;
    use tscout_suite::bpf::insn::{R0, R6};
    let mut rng = StdRng::seed_from_u64(0x0D17);
    for case in 0..256 {
        let a = rng.random::<u64>() as i64;
        // Make sure zero divisors are well covered.
        let b = if case % 4 == 0 {
            0
        } else {
            rng.random::<u64>() as i64
        };
        let mut bld = ProgramBuilder::new();
        bld.mov_imm(R0, a);
        bld.mov_imm(R6, b);
        bld.alu_reg(AluOp::Div, R0, R6);
        bld.alu_reg(AluOp::Mod, R0, R6);
        bld.exit();
        let prog = bld.resolve().unwrap();
        let mut m = maps();
        let mut world = NullWorld::default();
        assert!(
            Vm::run(&prog, &[], &mut m, &mut world).is_ok(),
            "a={a} b={b}"
        );
    }
}

/// Stack round trip: arbitrary u64s written at arbitrary aligned offsets
/// read back exactly.
#[test]
fn stack_round_trip() {
    use tscout_suite::bpf::asm::ProgramBuilder;
    use tscout_suite::bpf::insn::{R0, R10, R6};
    let mut rng = StdRng::seed_from_u64(0x0005_7AC4);
    for _ in 0..256 {
        let v = rng.random::<u64>();
        let slot = rng.random_range(1usize..64);
        let off = -(8 * slot as i32);
        let mut bld = ProgramBuilder::new();
        bld.mov_imm(R6, v as i64);
        bld.store_reg(Size::B8, R10, off, R6);
        bld.load(Size::B8, R0, R10, off);
        bld.exit();
        let prog = bld.resolve().unwrap();
        let mut m = maps();
        verify(&prog, &m, 0).unwrap();
        let mut world = NullWorld::default();
        let (r0, _) = Vm::run(&prog, &[], &mut m, &mut world).unwrap();
        assert_eq!(r0, v);
    }
}

/// VmError is only used via its Display in the panic path above; keep a
/// compile-time reference so the import carries its weight.
#[allow(dead_code)]
fn _uses(e: VmError) -> String {
    e.to_string()
}
