//! Property tests for the BPF substrate: the verifier's guarantees must
//! hold at runtime.
//!
//! The central property mirrors the kernel's contract: **any program the
//! verifier accepts executes without a memory fault**, for arbitrary
//! context bytes. Conversely the verifier must never panic on garbage
//! programs. Random programs are generated over the full instruction
//! set, biased toward plausible shapes so a useful fraction verifies.

use proptest::prelude::*;

use tscout_suite::bpf::insn::{AluOp, Cond, Helper, Insn, Reg, Size, Src};
use tscout_suite::bpf::maps::MapDef;
use tscout_suite::bpf::vm::{NullWorld, Vm, VmError};
use tscout_suite::bpf::{verify, MapRegistry};

fn maps() -> MapRegistry {
    let mut m = MapRegistry::new();
    m.create(MapDef::hash("h", 8, 16, 32));
    m.create(MapDef::stack("s", 8, 8));
    m.create(MapDef::perf_event_array("r", 16));
    m
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..=10).prop_map(Reg)
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        arb_reg().prop_map(Src::Reg),
        (-600i64..600).prop_map(Src::Imm),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Mod),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Lsh),
        Just(AluOp::Rsh),
        Just(AluOp::Arsh),
        Just(AluOp::Mov),
        Just(AluOp::Neg),
    ]
}

fn arb_size() -> impl Strategy<Value = Size> {
    prop_oneof![Just(Size::B1), Just(Size::B2), Just(Size::B4), Just(Size::B8)]
}

fn arb_helper() -> impl Strategy<Value = Helper> {
    prop_oneof![
        Just(Helper::MapLookup),
        Just(Helper::MapUpdate),
        Just(Helper::MapDelete),
        Just(Helper::MapPush),
        Just(Helper::MapPop),
        Just(Helper::PerfEventReadBuf),
        Just(Helper::ReadTaskIo),
        Just(Helper::ReadTcpSock),
        Just(Helper::PerfEventOutput),
        Just(Helper::KtimeGetNs),
        Just(Helper::GetCurrentPidTgid),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_src())
            .prop_map(|(op, dst, src)| Insn::Alu { op, dst, src }),
        (arb_size(), arb_reg(), arb_reg(), -520i32..64)
            .prop_map(|(size, dst, base, off)| Insn::Load { size, dst, base, off }),
        (arb_size(), arb_reg(), -520i32..64, arb_src())
            .prop_map(|(size, base, off, src)| Insn::Store { size, base, off, src }),
        (proptest::option::of((
            prop_oneof![
                Just(Cond::Eq),
                Just(Cond::Ne),
                Just(Cond::Lt),
                Just(Cond::Ge),
                Just(Cond::SGt)
            ],
            arb_reg(),
            arb_src()
        )), 0i32..6)
            .prop_map(|(cond, off)| Insn::Jump { cond, off }),
        arb_helper().prop_map(|helper| Insn::Call { helper }),
        (0u32..4).prop_map(|m| Insn::LoadMap {
            dst: Reg(1),
            map: tscout_suite::bpf::MapId(m)
        }),
        Just(Insn::Exit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The kernel contract: verified ⟹ no runtime fault, for any ctx.
    #[test]
    fn verified_programs_never_fault(
        body in proptest::collection::vec(arb_insn(), 1..40),
        ctx in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut prog = body;
        prog.push(Insn::Exit); // give random programs a chance to terminate
        let mut m = maps();
        if verify(&prog, &m, 64).is_ok() {
            let mut world = NullWorld::default();
            match Vm::run(&prog, &ctx, &mut m, &mut world) {
                Ok(_) => {}
                Err(e) => {
                    // Fuel exhaustion is impossible without back edges;
                    // any fault is a verifier soundness bug.
                    panic!(
                        "verifier accepted a faulting program: {e}\n{}",
                        tscout_suite::bpf::insn::disassemble(&prog)
                    );
                }
            }
        }
    }

    /// The verifier itself must be total: never panic, always an answer.
    #[test]
    fn verifier_is_total(
        prog in proptest::collection::vec(arb_insn(), 0..60),
        ctx_size in 0usize..128,
    ) {
        let m = maps();
        let _ = verify(&prog, &m, ctx_size);
    }

    /// Division and modulo never trap at runtime (eBPF semantics), even
    /// in unverified programs, as long as addresses are valid.
    #[test]
    fn div_mod_never_trap(a in any::<i64>(), b in any::<i64>()) {
        use tscout_suite::bpf::asm::ProgramBuilder;
        use tscout_suite::bpf::insn::{R0, R6};
        let mut bld = ProgramBuilder::new();
        bld.mov_imm(R0, a);
        bld.mov_imm(R6, b);
        bld.alu_reg(AluOp::Div, R0, R6);
        bld.alu_reg(AluOp::Mod, R0, R6);
        bld.exit();
        let prog = bld.resolve().unwrap();
        let mut m = maps();
        let mut world = NullWorld::default();
        prop_assert!(Vm::run(&prog, &[], &mut m, &mut world).is_ok());
    }

    /// Stack round trip: arbitrary u64s written at arbitrary aligned
    /// offsets read back exactly.
    #[test]
    fn stack_round_trip(v in any::<u64>(), slot in 1usize..64) {
        use tscout_suite::bpf::asm::ProgramBuilder;
        use tscout_suite::bpf::insn::{R0, R6, R10};
        let off = -(8 * slot as i32);
        let mut bld = ProgramBuilder::new();
        bld.mov_imm(R6, v as i64);
        bld.store_reg(Size::B8, R10, off, R6);
        bld.load(Size::B8, R0, R10, off);
        bld.exit();
        let prog = bld.resolve().unwrap();
        let mut m = maps();
        verify(&prog, &m, 0).unwrap();
        let mut world = NullWorld::default();
        let (r0, _) = Vm::run(&prog, &[], &mut m, &mut world).unwrap();
        prop_assert_eq!(r0, v);
    }
}

/// VmError is only used via its Display in the panic path above; keep a
/// compile-time reference so the import carries its weight.
#[allow(dead_code)]
fn _uses(e: VmError) -> String {
    e.to_string()
}
