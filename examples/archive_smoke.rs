//! Archive smoke test: write a few thousand samples, drop the archive,
//! reopen it from disk, and scan everything back — the write→reopen→scan
//! cycle CI exercises (`ci.sh`).
//!
//! Run with: `cargo run --release --example archive_smoke`
//! The store lands under `$TS_RESULTS/archive_smoke/` (default
//! `results/archive_smoke/`).

use tscout_archive::{Archive, ArchiveOptions, Sample};
use tscout_telemetry::Telemetry;

fn sample(i: u64) -> Sample {
    Sample {
        ou: (i % 4) as u16,
        ou_name: format!("smoke_ou_{}", i % 4),
        subsystem: 0,
        tid: (i % 8) as u32,
        template: (i % 3) as u32,
        start_ns: 1_000_000 + i * 500,
        elapsed_ns: 2_000 + (i * 13) % 700,
        metrics: vec![i, 64],
        features: vec![(i % 32) as f64],
        user_metrics: vec![],
    }
}

fn main() {
    let results = std::env::var("TS_RESULTS").unwrap_or_else(|_| "results".into());
    let dir = std::path::Path::new(&results).join("archive_smoke");
    std::fs::remove_dir_all(&dir).ok();
    const N: u64 = 5_000;

    let telemetry = Telemetry::new();
    {
        let small = ArchiveOptions {
            segment_max_bytes: 64 * 1024, // force several segments
            ..Default::default()
        };
        let mut a = Archive::open(&dir, small, telemetry.clone()).expect("open for write");
        for i in 0..N {
            a.append(sample(i)).expect("append");
        }
        a.seal().expect("seal");
        a.maybe_compact().expect("compact");
        let st = a.stats();
        println!(
            "wrote {N} samples: {} segments, {} blocks, {} bytes on disk",
            st.segments, st.blocks, st.bytes
        );
    }

    // Cold reopen + full scan: every sample must come back bit-identical
    // in per-OU append order.
    let a = Archive::open(&dir, ArchiveOptions::default(), telemetry.clone()).expect("reopen");
    let mut seen = 0u64;
    let mut per_ou_last: std::collections::HashMap<u16, u64> = Default::default();
    for s in a.scan_all() {
        let expect = {
            // Reconstruct which global index this per-OU position maps to.
            let k = per_ou_last.entry(s.ou).or_insert(s.ou as u64);
            let e = sample(*k);
            *k += 4;
            e
        };
        assert!(s.bits_eq(&expect), "mismatch at ou {} sample {:?}", s.ou, s);
        seen += 1;
    }
    assert_eq!(seen, N, "scan returned {seen} of {N} samples");
    println!(
        "reopened and scanned {seen} samples OK (recovered truncations: {})",
        telemetry.counter_total("archive_recovered_truncations_total")
    );
}
