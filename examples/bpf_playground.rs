//! The BPF substrate, hands on: assemble a program, watch the verifier
//! accept (or reject) it, run it in the VM, and disassemble one of
//! TScout's generated Collector programs.
//!
//! ```sh
//! cargo run --release --example bpf_playground
//! ```

use tscout_suite::bpf::asm::ProgramBuilder;
use tscout_suite::bpf::insn::{self, AluOp, Cond, Helper, Size};
use tscout_suite::bpf::maps::MapDef;
use tscout_suite::bpf::vm::{NullWorld, Vm};
use tscout_suite::bpf::{verify, MapRegistry};
use tscout_suite::tscout::codegen::{gen_features, ProbeLayout, CTX_BYTES};

use insn::{R0, R1, R10, R2, R3, R6};

fn main() {
    let mut maps = MapRegistry::new();
    let counters = maps.create(MapDef::hash("counters", 8, 8, 64));

    // A program that bumps counters[ctx.key] and returns the new value.
    let mut b = ProgramBuilder::new();
    let fresh = b.label();
    let done = b.label();
    b.load(Size::B8, R6, R1, 0); // key from ctx word 0
    b.store_reg(Size::B8, R10, -8, R6);
    b.load_map(R1, counters);
    b.mov_reg(R2, R10);
    b.alu_imm(AluOp::Add, R2, -8);
    b.call(Helper::MapLookup);
    b.jump_if_imm(Cond::Eq, R0, 0, fresh);
    // Existing entry: increment in place through the value pointer.
    b.load(Size::B8, R3, R0, 0);
    b.alu_imm(AluOp::Add, R3, 1);
    b.store_reg(Size::B8, R0, 0, R3);
    b.mov_reg(R0, R3);
    b.jump(done);
    // Missing: insert 1.
    b.bind(fresh);
    b.store_imm(Size::B8, R10, -16, 1);
    b.load_map(R1, counters);
    b.mov_reg(R2, R10);
    b.alu_imm(AluOp::Add, R2, -8);
    b.mov_reg(R3, R10);
    b.alu_imm(AluOp::Add, R3, -16);
    b.mov_imm(insn::R4, 0);
    b.call(Helper::MapUpdate);
    b.mov_imm(R0, 1);
    b.bind(done);
    b.exit();
    let prog = b.resolve().unwrap();

    println!("== hand-written counter program ==");
    print!("{}", insn::disassemble(&prog));
    verify(&prog, &maps, 8).expect("verifier should accept this");
    println!("verifier: ACCEPTED");
    let mut world = NullWorld::default();
    for round in 1..=3u64 {
        let ctx = 42u64.to_le_bytes();
        let (r0, stats) = Vm::run(&prog, &ctx, &mut maps, &mut world).unwrap();
        println!(
            "run {round}: counters[42] = {r0} ({} insns executed)",
            stats.insns
        );
        assert_eq!(r0, round);
    }

    // Now break it: dereference the lookup result without a null check.
    println!("\n== the same program without the null check ==");
    let mut b = ProgramBuilder::new();
    b.load(Size::B8, R6, R1, 0);
    b.store_reg(Size::B8, R10, -8, R6);
    b.load_map(R1, counters);
    b.mov_reg(R2, R10);
    b.alu_imm(AluOp::Add, R2, -8);
    b.call(Helper::MapLookup);
    b.load(Size::B8, R0, R0, 0); // boom: possibly-NULL deref
    b.exit();
    let bad = b.resolve().unwrap();
    let err = verify(&bad, &maps, 8).unwrap_err();
    println!("verifier: REJECTED — {err}");

    // Finally, disassemble a TScout-generated Collector program.
    println!("\n== TScout's generated FEATURES program (CPU probe only) ==");
    let probes = ProbeLayout {
        cpu: true,
        disk: false,
        net: false,
    };
    let done_map = maps.create(MapDef::hash("done", 8, probes.done_words() * 8, 256));
    let ring = maps.create(MapDef::perf_event_array("ring", 1024));
    let feat = gen_features(&probes, done_map, ring);
    println!(
        "{} instructions; verifier: {:?}",
        feat.len(),
        verify(&feat, &maps, CTX_BYTES)
    );
    for line in insn::disassemble(&feat).lines().take(12) {
        println!("{line}");
    }
    println!("   ... ({} more)", feat.len().saturating_sub(12));
}
