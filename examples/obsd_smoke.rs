//! Operator-plane smoke: the CI gate for tscout-obsd (`ci.sh`).
//!
//! 1. Runs a collected YCSB workload with `RunOptions::obsd` enabled on
//!    an ephemeral port; a client thread discovers the port through the
//!    addr file and hammers the daemon *while the run is collecting*.
//! 2. After the run, serves the final (quiescent) registry again and
//!    checks exact agreement between the three read paths: OpenMetrics
//!    exposition, the JSON table API, and the read-only SQL endpoint.
//!
//! Run with: `cargo run --release --example obsd_smoke`
//! Artifacts land under `$TS_RESULTS/` (default `results/`):
//! `obsd_smoke.addr` (the live run's bound address) and
//! `obsd_smoke.json` (request counts + agreement numbers).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tscout_suite::archive::ArchiveOptions;
use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::models::ModelKind;
use tscout_suite::noisetap::Database;
use tscout_suite::obsd::json::Json;
use tscout_suite::obsd::{client, ObsdConfig, ObsdServer};
use tscout_suite::tscout::{CollectionMode, TsConfig, ALL_SUBSYSTEMS};
use tscout_suite::workloads::driver::Workload;
use tscout_suite::workloads::{run_with_lifecycle, ModelLifecycle, RunOptions, Ycsb};

/// Sum every sample line of one counter family in an OpenMetrics
/// exposition (counters render one line per label set).
fn exposition_counter_sum(text: &str, family: &str) -> u64 {
    text.lines()
        .filter(|l| l.starts_with(&format!("{family}{{")) || l.starts_with(&format!("{family} ")))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

fn main() {
    let results = std::env::var("TS_RESULTS").unwrap_or_else(|_| "results".into());
    let results = std::path::PathBuf::from(results);
    std::fs::create_dir_all(&results).expect("cannot create results dir");
    let addr_file = results.join("obsd_smoke.addr");
    std::fs::remove_file(&addr_file).ok();
    let archive_dir = results.join("obsd_smoke_archive");
    std::fs::remove_dir_all(&archive_dir).ok();

    // -- collected workload with the daemon wired through RunOptions --
    let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 0x0B5D);
    k.noise_frac = 0.0;
    let mut db = Database::new(k);
    let mut w = Ycsb::new(600);
    w.setup(&mut db);
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    db.attach_tscout(cfg).unwrap();
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    let mut lc = ModelLifecycle::new(
        &archive_dir,
        ArchiveOptions::default(),
        ModelKind::Ridge,
        7,
        120e6,
        db.kernel.telemetry.clone(),
    )
    .expect("cannot open smoke archive");

    let stop = Arc::new(AtomicBool::new(false));
    let live = Arc::new(AtomicU64::new(0));
    let hammer = {
        let (stop, live, addr_file) = (Arc::clone(&stop), Arc::clone(&live), addr_file.clone());
        std::thread::spawn(move || {
            let mut addr = None;
            while !stop.load(Ordering::SeqCst) {
                let Some(a) = addr.clone().or_else(|| {
                    std::fs::read_to_string(&addr_file)
                        .ok()
                        .map(|s| s.trim().to_string())
                }) else {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    continue;
                };
                addr = Some(a.clone());
                for probe in [
                    client::get(&a, "/metrics"),
                    client::get(&a, "/api/v1/alerts"),
                    client::post(&a, "/api/v1/sql", "SELECT count(*) FROM ts_stat_ou"),
                ] {
                    if matches!(probe, Ok((200, _))) {
                        live.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        })
    };
    let stats = run_with_lifecycle(
        &mut db,
        &mut w,
        &RunOptions {
            terminals: 2,
            duration_ns: 300e6,
            seed: 0x0B5D,
            obsd: Some(ObsdConfig {
                addr_file: Some(addr_file.clone()),
                ..Default::default()
            }),
            ..Default::default()
        },
        &mut lc,
    );
    stop.store(true, Ordering::SeqCst);
    hammer.join().unwrap();
    let live_requests = live.load(Ordering::SeqCst);
    assert!(stats.committed > 100, "committed {}", stats.committed);
    assert!(
        live_requests > 0,
        "no request reached the daemon while the run was collecting"
    );

    // -- post-run: the three read paths must agree exactly --
    let srv = ObsdServer::start(ObsdConfig::default(), db.kernel.telemetry.clone())
        .expect("cannot start post-run server");
    let addr = srv.addr().to_string();

    let (status, exposition) = client::get(&addr, "/metrics").expect("scrape");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE tscout_samples_delivered_total counter",
        "# HELP tscout_samples_delivered_total",
        "le=\"+Inf\"",
        "# TYPE tscout_obsd_requests_total counter",
    ] {
        assert!(exposition.contains(needle), "exposition missing {needle}");
    }
    let delivered_registry = db
        .kernel
        .telemetry
        .counter_total("tscout_samples_delivered_total");
    let delivered_exposition =
        exposition_counter_sum(&exposition, "tscout_samples_delivered_total");
    assert_eq!(
        delivered_registry, delivered_exposition,
        "exposition disagrees with the registry"
    );

    let (status, body) = client::get(&addr, "/api/v1/alerts").expect("alerts");
    assert_eq!(status, 200);
    let alerts = Json::parse(&body).expect("alerts JSON");
    assert!(alerts.get("columns").is_some(), "{body}");

    // SQL/registry agreement: the read-only endpoint must see exactly
    // the rows the registry's virtual tables hold.
    let expected_samples: i64 =
        tscout_suite::noisetap::stat::virtual_rows("ts_stat_ou", &db.kernel.telemetry)
            .iter()
            .map(|row| match row[2] {
                tscout_suite::noisetap::Value::Int(n) => n,
                _ => 0,
            })
            .sum();
    let (status, body) =
        client::post(&addr, "/api/v1/sql", "SELECT sum(samples) FROM ts_stat_ou").expect("sql");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("sql JSON");
    let sql_samples = doc.get("rows").unwrap().as_arr().unwrap()[0]
        .as_arr()
        .unwrap()[0]
        .as_f64()
        .unwrap();
    assert!(
        (sql_samples - expected_samples as f64).abs() < 0.5,
        "SQL sum(samples)={sql_samples} disagrees with registry rows={expected_samples}"
    );

    // DML bounces with a structured error.
    let (status, body) = client::post(&addr, "/api/v1/sql", "DELETE FROM ts_stat_ou").unwrap();
    assert_eq!(status, 400, "{body}");
    srv.shutdown();

    std::fs::write(
        results.join("obsd_smoke.json"),
        format!(
            "{{\n  \"live_requests\": {live_requests},\n  \"committed\": {},\n  \"delivered_samples\": {delivered_registry},\n  \"sql_sum_samples\": {sql_samples}\n}}\n",
            stats.committed
        ),
    )
    .expect("cannot write obsd_smoke.json");
    std::fs::remove_dir_all(&archive_dir).ok();
    println!(
        "obsd smoke OK: {live_requests} live requests during the run; \
         exposition = SQL = registry = {delivered_registry} delivered samples"
    );
}
