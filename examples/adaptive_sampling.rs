//! Adjustable per-subsystem sampling at runtime (paper §5.3/§6.3) and
//! the Processor's feedback loop.
//!
//! TScout is not "all or nothing": each subsystem has its own sampling
//! rate, adjustable without redeploying. This example dials rates up and
//! down while a workload runs, and shows the Processor recommending a
//! lower rate when the ring buffer starts overwriting.
//!
//! ```sh
//! cargo run --release --example adaptive_sampling
//! ```

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::noisetap::Database;
use tscout_suite::tscout::{CollectionMode, Processor, Sink, Subsystem, TsConfig};
use tscout_suite::workloads::driver::{run, RunOptions, Workload};
use tscout_suite::workloads::Ycsb;

fn phase(db: &mut Database, w: &mut Ycsb, seed: u64) -> f64 {
    let stats = run(
        db,
        w,
        &RunOptions {
            terminals: 4,
            duration_ns: 100e6,
            seed,
            ..Default::default()
        },
    );
    stats.ktps()
}

fn main() {
    let mut db = Database::new(Kernel::new(HardwareProfile::server_2x20()));
    let mut w = Ycsb::new(20_000);
    w.setup(&mut db);
    let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = 2048; // small on purpose, to trigger feedback
    db.attach_tscout(cfg).unwrap();

    println!("phase 1: collection off");
    let t1 = phase(&mut db, &mut w, 1);

    println!("phase 2: all subsystems at 10%");
    for s in tscout_suite::tscout::ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 10);
    }
    let t2 = phase(&mut db, &mut w, 2);

    println!("phase 3: execution engine & networking back to 0% (WAL stays at 10%)");
    db.tscout_mut()
        .unwrap()
        .set_sampling_rate(Subsystem::ExecutionEngine, 0);
    db.tscout_mut()
        .unwrap()
        .set_sampling_rate(Subsystem::Networking, 0);
    let t3 = phase(&mut db, &mut w, 3);

    println!("\nthroughput: off {t1:.1} ktps | all@10% {t2:.1} ktps | wal-only {t3:.1} ktps");
    println!(
        "dip when sampling on: {:.1}%  | recovery when EE+net disabled: {:.1}%",
        (1.0 - t2 / t1) * 100.0,
        (t3 / t1) * 100.0
    );

    // Feedback: crank the rate until the ring overwrites, then ask the
    // Processor what rate it can actually sustain.
    println!("\nphase 4: 100% sampling on a tiny ring — the Processor pushes back");
    for s in tscout_suite::tscout::ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    let dropped_before = db.tscout_mut().unwrap().ring_dropped();
    let _ = phase(&mut db, &mut w, 4);
    let (kernel, ts) = db.collection_parts();
    let ts = ts.unwrap();
    let mut processor = Processor::new(kernel, Sink::Discard);
    let recommended = processor.recommended_rate(ts, 100);
    println!(
        "ring overwrote {} samples; recommended sampling rate: {}%",
        ts.ring_dropped() - dropped_before,
        recommended
    );
    let losses = ts.loss_totals();
    println!(
        "exact accounting: begun {} = delivered {} + lost {} + in-ring {}",
        losses.begun,
        losses.delivered,
        losses.lost,
        ts.ring_len()
    );
    assert!(recommended < 100);
}
