//! Quickstart: deploy TScout on the NoiseTap DBMS, run some SQL, and
//! inspect the training data it collects.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tscout_suite::kernel::{HardwareProfile, Kernel};
use tscout_suite::noisetap::{Database, Value};
use tscout_suite::tscout::{CollectionMode, Subsystem, TsConfig, ALL_SUBSYSTEMS};

fn main() {
    // 1. A DBMS on simulated server hardware.
    let mut db = Database::new(Kernel::new(HardwareProfile::server_2x20()));
    let sid = db.create_session();
    db.execute(
        sid,
        "CREATE TABLE orders (id INT PRIMARY KEY, customer INT, total FLOAT)",
        &[],
    )
    .unwrap();
    db.execute(
        sid,
        "CREATE INDEX orders_customer ON orders (customer)",
        &[],
    )
    .unwrap();
    for i in 0..5_000 {
        db.execute(
            sid,
            "INSERT INTO orders VALUES ($1, $2, $3)",
            &[
                Value::Int(i),
                Value::Int(i % 100),
                Value::Float((i % 977) as f64),
            ],
        )
        .unwrap();
    }

    // 2. Setup Phase: deploy TScout. This code-generates the Collector
    //    BPF programs, runs them through the verifier, and attaches them
    //    to the marker tracepoints — exactly the paper's Fig. 3 flow.
    let mut config = TsConfig::new(CollectionMode::KernelContinuous);
    config.enable_all_subsystems();
    db.attach_tscout(config).expect("deploy failed");
    for s in ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }

    // 3. Runtime Phase: execute queries as client requests.
    let point = db
        .prepare("SELECT total FROM orders WHERE id = $1")
        .unwrap();
    let by_customer = db
        .prepare("SELECT count(*), sum(total) FROM orders WHERE customer = $1")
        .unwrap();
    let pay = db
        .prepare("UPDATE orders SET total = total + $2 WHERE id = $1")
        .unwrap();
    for i in 0..200 {
        db.client_request(sid, point, &[Value::Int(i * 13 % 5000)])
            .unwrap();
        db.client_request(sid, by_customer, &[Value::Int(i % 100)])
            .unwrap();
        db.client_request(sid, pay, &[Value::Int(i), Value::Float(1.0)])
            .unwrap();
    }
    // Flush the WAL so the log-serializer and disk-writer OUs fire too.
    let horizon = db.now(sid) + 1e9;
    db.pump_wal(horizon);

    // 4. Inspect the training data.
    let ts = db.tscout_mut().unwrap();
    println!(
        "marker events: {}   samples emitted: {}   BPF instructions interpreted: {}",
        ts.stats.marker_events, ts.stats.samples_emitted, ts.stats.bpf_insns
    );
    let points = ts.drain_decoded();
    println!("decoded {} training points; a few examples:", points.len());
    let mut seen = std::collections::BTreeSet::new();
    for p in &points {
        if seen.insert(p.ou_name.clone()) {
            println!(
                "  [{:>16}] subsystem={:<16} elapsed={:>7} ns features={:?} cpu_instructions={}",
                p.ou_name,
                p.subsystem.to_string(),
                p.elapsed_ns,
                p.features,
                p.metrics.get(1).copied().unwrap_or(0),
            );
        }
    }
    let subsystems: std::collections::BTreeSet<_> = points.iter().map(|p| p.subsystem).collect();
    println!("subsystems covered: {subsystems:?}");
    assert!(subsystems.contains(&Subsystem::ExecutionEngine));
    assert!(subsystems.contains(&Subsystem::LogSerializer));
}
