//! Hardware migration (the paper's §6.4 scenario, in miniature):
//!
//! A self-driving DBMS trains behavior models offline on its original
//! machine, then migrates to different hardware. The offline models
//! mispredict — especially for the disk writer, whose device changed —
//! until a short window of online data collected by TScout is folded in.
//!
//! ```sh
//! cargo run --release --example hardware_migration
//! ```

use tscout_suite::kernel::HardwareProfile;
use tscout_suite::models::eval::error_reduction_pct;
use tscout_suite::models::{ModelKind, OuModelSet};
use tscout_suite::tscout::Subsystem;
use tscout_suite::workloads::driver::{collect_datasets, RunOptions, Workload};
use tscout_suite::workloads::{OfflineRunner, Tpcc};

fn collect(
    hw: HardwareProfile,
    seed: u64,
    workload: &mut dyn Workload,
    terminals: usize,
    duration_ns: f64,
) -> Vec<tscout_suite::models::OuData> {
    let mut db =
        tscout_suite::noisetap::Database::new(tscout_suite::kernel::Kernel::with_seed(hw, seed));
    workload.setup(&mut db);
    let mut cfg =
        tscout_suite::tscout::TsConfig::new(tscout_suite::tscout::CollectionMode::KernelContinuous);
    cfg.enable_all_subsystems();
    cfg.ring_capacity = 1 << 20;
    db.attach_tscout(cfg).unwrap();
    for s in tscout_suite::tscout::ALL_SUBSYSTEMS {
        db.tscout_mut().unwrap().set_sampling_rate(s, 100);
    }
    let (_, data) = collect_datasets(
        &mut db,
        workload,
        &RunOptions {
            terminals,
            duration_ns,
            seed,
            ..Default::default()
        },
    );
    data
}

fn subsystem_error(
    train: &[tscout_suite::models::OuData],
    test: &[tscout_suite::models::OuData],
    sub: Subsystem,
) -> f64 {
    let ou_in = |name: &str| {
        tscout_suite::noisetap::ALL_ENGINE_OUS
            .iter()
            .any(|o| o.name() == name && o.subsystem() == sub)
    };
    let tr: Vec<_> = train.iter().filter(|d| ou_in(&d.name)).cloned().collect();
    let te: Vec<_> = test.iter().filter(|d| ou_in(&d.name)).cloned().collect();
    let models = OuModelSet::train(ModelKind::Forest, 1, &tr);
    tscout_suite::models::avg_abs_error_per_template_us(&models, &te)
}

fn main() {
    println!("Training offline models on the 6-core laptop...");
    let offline = collect(
        HardwareProfile::laptop_6core(),
        1,
        &mut OfflineRunner::new(),
        1,
        300e6,
    );

    println!("Migrating to the 2x20-core server; collecting 1 window of online TPC-C...");
    let online = collect(
        HardwareProfile::server_2x20(),
        2,
        &mut Tpcc::new(2),
        1,
        300e6,
    );
    let test = collect(
        HardwareProfile::server_2x20(),
        3,
        &mut Tpcc::new(2),
        1,
        150e6,
    );

    // offline + online merged by OU name.
    let mut merged: std::collections::BTreeMap<String, tscout_suite::models::OuData> =
        Default::default();
    for d in offline.iter().chain(&online) {
        merged
            .entry(d.name.clone())
            .and_modify(|e| e.extend_from(d))
            .or_insert_with(|| d.clone());
    }
    let augmented: Vec<_> = merged.into_values().collect();

    println!(
        "\n{:<18}{:>14}{:>14}{:>12}",
        "subsystem", "offline(us)", "+online(us)", "reduction"
    );
    for sub in [
        Subsystem::ExecutionEngine,
        Subsystem::Networking,
        Subsystem::LogSerializer,
        Subsystem::DiskWriter,
    ] {
        let off = subsystem_error(&offline, &test, sub);
        let on = subsystem_error(&augmented, &test, sub);
        println!(
            "{:<18}{off:>14.2}{on:>14.2}{:>11.1}%",
            sub.to_string(),
            error_reduction_pct(off, on)
        );
    }
    println!("\nAs in the paper's Fig. 7: the device-dependent WAL subsystems benefit most.");
}
