#!/usr/bin/env bash
# Regenerate every figure of the paper's evaluation (plus the ablations).
# Results land in results/*.csv and are echoed to stdout; each binary
# also writes a self-telemetry snapshot to results/telemetry_<fig>.json.
#
#   TS_SCALE=0.3 ./run_all_figures.sh     # quick pass
#   TS_SCALE=1   ./run_all_figures.sh     # default fidelity
set -euo pipefail
cd "$(dirname "$0")"

export TS_SCALE="${TS_SCALE:-1}"
echo "== building (release) =="
cargo build --release -p tscout-bench

BINS=(
  fig1_user_vs_kernel
  fig2_offline_vs_online
  fig5_overhead_throughput
  fig6_overhead_datagen
  fig7_env_change
  fig8_adjustable_sampling
  fig9_convergence_tpcc
  fig10_convergence_chbench
  fig11_convergence_terminals
  fig12_generalization
  ablation_sampling_shuffle
  ablation_fusion
  ablation_ringbuf
  ablation_archive_lifecycle
)

for bin in "${BINS[@]}"; do
  echo
  echo "== $bin (TS_SCALE=$TS_SCALE) =="
  ./target/release/"$bin"
done

echo
echo "All figures regenerated under results/."
echo "Telemetry snapshots:"
ls -1 results/telemetry_*.json 2>/dev/null || echo "  (none written?)"
echo "Training-data archive stats:"
ls -1 results/archive_*.json 2>/dev/null || echo "  (none written?)"
